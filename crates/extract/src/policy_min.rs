//! Policy-size minimization (§3.2.2, bullet 1).
//!
//! "Limit the size of the generated policy": a view is redundant when its
//! content is computable from the remaining views — decided with the same
//! equivalent-rewriting machinery the enforcement checker uses, so dropping
//! it provably changes nothing about what the policy permits.

use qlogic::{equivalent_rewriting, Cq, ViewSet};

/// Drops views expressible from the remaining ones. Quadratic in the number
/// of views, with each step running the rewriting engine; fine at
/// policy scale (tens of views).
pub fn drop_redundant(views: Vec<Cq>) -> Vec<Cq> {
    let mut kept = views;
    loop {
        let mut dropped = false;
        for i in 0..kept.len() {
            let candidate = &kept[i];
            let others: Vec<Cq> = kept
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, v)| {
                    let mut named = v.clone();
                    named.name = Some(format!("P{j}").into());
                    named
                })
                .collect();
            let Ok(viewset) = ViewSet::new(others) else {
                continue;
            };
            if equivalent_rewriting(candidate, &viewset, &[]).is_some() {
                kept.remove(i);
                dropped = true;
                break;
            }
        }
        if !dropped {
            return kept;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::{Atom, Term};

    #[test]
    fn drops_view_expressible_from_another() {
        // Wide view exports everything; the narrow view is a projection+
        // selection of it.
        let wide = Cq::new(
            vec![Term::var("e"), Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let narrow = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let out = drop_redundant(vec![wide.clone(), narrow]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], wide);
    }

    #[test]
    fn keeps_independent_views() {
        let a = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let b = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("S", vec![Term::var("y")])],
            vec![],
        );
        assert_eq!(drop_redundant(vec![a, b]).len(), 2);
    }

    #[test]
    fn keeps_view_with_hidden_columns() {
        // The narrow view hides a column the wide view needs; neither is
        // redundant.
        let titles = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new("Events", vec![Term::var("e"), Term::var("t")])],
            vec![],
        );
        let ids = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new("Events", vec![Term::var("e"), Term::var("t")])],
            vec![],
        );
        assert_eq!(drop_redundant(vec![titles, ids]).len(), 2);
    }
}
