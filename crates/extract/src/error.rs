//! Error types for policy extraction.

use std::fmt;

/// Errors raised by the extraction pipelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// A handler failed to execute (concretely or symbolically).
    Execution(String),
    /// SQL in the application failed to parse.
    Sql(String),
    /// A logic-layer failure.
    Logic(String),
    /// The workload was empty or otherwise unusable.
    BadWorkload(String),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Execution(m) => write!(f, "execution error: {m}"),
            ExtractError::Sql(m) => write!(f, "SQL error: {m}"),
            ExtractError::Logic(m) => write!(f, "logic error: {m}"),
            ExtractError::BadWorkload(m) => write!(f, "bad workload: {m}"),
        }
    }
}

impl std::error::Error for ExtractError {}

impl From<appdsl::DslError> for ExtractError {
    fn from(e: appdsl::DslError) -> ExtractError {
        ExtractError::Execution(e.to_string())
    }
}

impl From<qlogic::LogicError> for ExtractError {
    fn from(e: qlogic::LogicError) -> ExtractError {
        ExtractError::Logic(e.to_string())
    }
}

impl From<sqlir::ParseError> for ExtractError {
    fn from(e: sqlir::ParseError) -> ExtractError {
        ExtractError::Sql(e.to_string())
    }
}
