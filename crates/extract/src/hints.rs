//! Opaque-identifier hints (§3.2.2, bullet 2).
//!
//! An operator can declare that certain columns hold *opaque identifiers* —
//! values like event ids that carry no meaning beyond identity. A policy
//! must never pin such a column to a concrete constant ("a concrete event ID
//! like `EId = 2` should never appear in a policy"), so any constant left in
//! an opaque position after generalization is promoted to a variable, with
//! all occurrences of that constant sharing the variable (preserving joins).

use qlogic::{Atom, Comparison, Cq, RelSchema, Term};

/// Declared opaque columns, bound to the schema that resolves positions.
#[derive(Debug, Clone, Default)]
pub struct Hints {
    /// `(table, column)` pairs whose constants must generalize.
    pub opaque_columns: Vec<(String, String)>,
    schema: Option<RelSchema>,
}

impl Hints {
    /// No hints (the default): constants are kept as observed.
    pub fn none() -> Hints {
        Hints::default()
    }

    /// Attaches the schema used to resolve column positions. Hints have no
    /// effect until a schema is attached.
    pub fn with_schema(mut self, schema: RelSchema) -> Hints {
        self.schema = Some(schema);
        self
    }

    /// Declares a column opaque.
    pub fn opaque(mut self, table: impl Into<String>, column: impl Into<String>) -> Hints {
        self.opaque_columns.push((table.into(), column.into()));
        self
    }

    /// Declares every column whose name ends in `Id`/`_id` opaque — the
    /// convention-based default an operator would start from.
    pub fn id_columns(schema: &RelSchema) -> Hints {
        let mut hints = Hints::none();
        for table in schema.table_names() {
            if let Ok(columns) = schema.columns(table) {
                for c in columns {
                    if c.ends_with("Id") || c.ends_with("_id") || c == "id" {
                        hints.opaque_columns.push((table.to_string(), c.clone()));
                    }
                }
            }
        }
        hints.schema = Some(schema.clone());
        hints
    }

    fn is_opaque(&self, table: &str, idx: usize) -> bool {
        let Some(schema) = &self.schema else {
            return false;
        };
        let Ok(cols) = schema.columns(table) else {
            return false;
        };
        cols.get(idx)
            .map(|c| {
                self.opaque_columns
                    .iter()
                    .any(|(t, col)| t == table && col == c)
            })
            .unwrap_or(false)
    }

    /// Applies the hints to a view: constants in opaque positions become
    /// shared head variables.
    pub fn apply(&self, cq: &Cq) -> Cq {
        let mut targets: Vec<Term> = Vec::new();
        for a in &cq.atoms {
            for (i, t) in a.args.iter().enumerate() {
                if matches!(t, Term::Const(_))
                    && self.is_opaque(a.relation.as_str(), i)
                    && !targets.contains(t)
                {
                    targets.push(*t);
                }
            }
        }
        if targets.is_empty() {
            return cq.clone();
        }
        let mut out = cq.clone();
        for (n, target) in targets.iter().enumerate() {
            let fresh = Term::var(format!("h{n}·opq"));
            out = replace_term(&out, target, &fresh);
            // The generalized identifier is request-selected: expose it.
            if !out.head.contains(&fresh) {
                out.head.push(fresh);
            }
        }
        out
    }
}

/// Replaces every occurrence of `from` with `to` throughout a query.
fn replace_term(cq: &Cq, from: &Term, to: &Term) -> Cq {
    let f = |t: &Term| -> Term {
        if t == from {
            *to
        } else {
            *t
        }
    };
    let mut out = Cq::new(
        cq.head.iter().map(f).collect(),
        cq.atoms
            .iter()
            .map(|a| Atom::new(a.relation, a.args.iter().map(f).collect()))
            .collect(),
        cq.comparisons
            .iter()
            .map(|c| Comparison::new(f(&c.lhs), c.op, f(&c.rhs)))
            .collect(),
    );
    out.name = cq.name;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    #[test]
    fn promotes_opaque_constants_preserving_joins() {
        // V :- Events(2, t, k), Attendance(?MyUId, 2, n): EId is opaque, so
        // both occurrences of 2 become one shared variable.
        let v = Cq::new(
            vec![Term::var("t")],
            vec![
                Atom::new("Events", vec![Term::int(2), Term::var("t"), Term::var("k")]),
                Atom::new(
                    "Attendance",
                    vec![Term::param("MyUId"), Term::int(2), Term::var("n")],
                ),
            ],
            vec![],
        );
        let hints = Hints::none()
            .opaque("Events", "EId")
            .opaque("Attendance", "EId")
            .with_schema(schema());
        let out = hints.apply(&v);
        let ev = &out.atoms[0].args[0];
        let at = &out.atoms[1].args[1];
        assert!(matches!(ev, Term::Var(_)));
        assert_eq!(ev, at, "join preserved");
        assert!(out.head.contains(ev), "generalized id exposed in head");
    }

    #[test]
    fn non_opaque_constants_survive() {
        let v = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::str("work")],
            )],
            vec![],
        );
        let hints = Hints::none().opaque("Events", "EId").with_schema(schema());
        let out = hints.apply(&v);
        assert_eq!(out.atoms[0].args[2], Term::str("work"));
    }

    #[test]
    fn id_columns_convention() {
        let hints = Hints::id_columns(&schema());
        assert!(hints
            .opaque_columns
            .contains(&("Events".into(), "EId".into())));
        assert!(hints
            .opaque_columns
            .contains(&("Attendance".into(), "UId".into())));
        assert!(!hints
            .opaque_columns
            .contains(&("Events".into(), "Title".into())));
    }

    #[test]
    fn no_schema_means_no_effect() {
        let v = Cq::new(
            vec![],
            vec![Atom::new("Events", vec![Term::int(2)])],
            vec![],
        );
        let hints = Hints::none().opaque("Events", "EId");
        assert_eq!(hints.apply(&v), v);
    }
}
