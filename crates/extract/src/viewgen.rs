//! View generation from symbolic paths (§3.2.1 → Example 3.1).
//!
//! Each issued query on a symbolic path becomes a candidate view:
//!
//! * session fields stay as policy parameters (`?MyUId`);
//! * request parameters become variables (generalizing over requests), with
//!   the *same* variable shared by every query on the path — this is what
//!   turns Listing 1's guard into the `Events ⋈ Attendance` join of view V2;
//! * non-emptiness guards on earlier queries conjoin their bodies into the
//!   view (the "maximally restrictive policy that allows this behaviour");
//! * every query's view exposes the query's own projection plus
//!   the request variables that select it — enforcement is query-level, so
//!   the policy must cover what queries *read* (a metadata probe reads a
//!   post's group id even when only its emptiness reaches the user).
//!
//! Guards the logic fragment cannot express (e.g. a guard query with
//! aggregation) are dropped, making the view *more permissive*; such views
//! are flagged for the operator's review, matching the paper's workflow
//! where a human vets the draft policy.

use qlogic::{sql_to_cq, Atom, Comparison, Cq, RelSchema, Term};
use sqlir::{Query, SelectItem, Statement};

use crate::error::ExtractError;
use crate::symex::{Cond, QueryId, SymPath, SymQuery, SymScalar};

/// Options shared by the extraction pipelines.
#[derive(Debug, Clone)]
pub struct ViewGenOptions {
    /// Names that denote session fields (policy parameters), e.g. `MyUId`.
    pub session_params: Vec<String>,
}

impl Default for ViewGenOptions {
    fn default() -> ViewGenOptions {
        ViewGenOptions {
            session_params: vec!["MyUId".to_string()],
        }
    }
}

/// A candidate view with provenance.
#[derive(Debug, Clone)]
pub struct CandidateView {
    /// The view body (unnamed until policy assembly).
    pub cq: Cq,
    /// The handler it came from.
    pub handler: String,
    /// `true` if an inexpressible guard was dropped (operator should review).
    pub over_approximate: bool,
}

/// Output-column names of a `SELECT`, aligned with the head produced by
/// [`qlogic::sql_to_cq`] (wildcards expand in binding order).
pub fn output_names(schema: &RelSchema, q: &Query) -> Result<Vec<String>, ExtractError> {
    let mut names = Vec::new();
    for item in &q.items {
        match item {
            SelectItem::Wildcard => {
                for tref in q.table_refs() {
                    for c in schema
                        .columns(&tref.table)
                        .map_err(|e| ExtractError::Logic(e.to_string()))?
                    {
                        names.push(c.clone());
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let tref = q
                    .table_refs()
                    .find(|r| r.binding() == t)
                    .ok_or_else(|| ExtractError::Sql(format!("unknown binding {t}")))?;
                for c in schema
                    .columns(&tref.table)
                    .map_err(|e| ExtractError::Logic(e.to_string()))?
                {
                    names.push(c.clone());
                }
            }
            SelectItem::Expr { alias: Some(a), .. } => names.push(a.clone()),
            SelectItem::Expr {
                expr: sqlir::Expr::Column(c),
                ..
            } => names.push(c.column.clone()),
            SelectItem::Expr { expr, .. } => names.push(expr.to_string()),
        }
    }
    Ok(names)
}

/// Replaces `Term::Param(name)` occurrences per the mapping.
fn subst_params(cq: &Cq, map: &[(String, Term)]) -> Cq {
    let f = |t: &Term| -> Term {
        if let Term::Param(p) = t {
            if let Some((_, to)) = map.iter().find(|(n, _)| n == p) {
                return *to;
            }
        }
        *t
    };
    let mut out = Cq::new(
        cq.head.iter().map(f).collect(),
        cq.atoms
            .iter()
            .map(|a| Atom::new(a.relation, a.args.iter().map(f).collect()))
            .collect(),
        cq.comparisons
            .iter()
            .map(|c| Comparison::new(f(&c.lhs), c.op, f(&c.rhs)))
            .collect(),
    );
    out.name = cq.name;
    out
}

/// The translated form of one symbolic query.
struct TranslatedQuery {
    cq: Cq,
    /// Output column name → head term (for field-dependency links).
    out_map: Vec<(String, Term)>,
    /// `true` if translation failed (out of fragment / DML).
    failed: bool,
}

/// Generates candidate views from the symbolic paths of one handler.
pub fn views_from_paths(
    schema: &RelSchema,
    handler: &str,
    paths: &[SymPath],
    opts: &ViewGenOptions,
) -> Vec<CandidateView> {
    let mut out: Vec<CandidateView> = Vec::new();
    for path in paths {
        let translated = translate_path(schema, path, opts);
        for (i, q) in path.queries.iter().enumerate() {
            // Every issued SELECT needs a view: enforcement is query-level,
            // so even a query whose result the application discards (an
            // analytics probe) reaches the proxy and must be covered.
            let Some(tq) = translated.get(i) else {
                continue;
            };
            if tq.failed {
                continue; // inexpressible query: no view extractable
            }
            // Conjoin the bodies of (a) non-emptiness guards on earlier
            // queries and (b) queries whose fields feed this one's bindings
            // (transitively) — both constrain what this query can observe.
            let mut atoms = tq.cq.atoms.clone();
            let mut comparisons = tq.cq.comparisons.clone();
            let mut over_approximate = false;
            let mut needed: Vec<QueryId> = Vec::new();
            for cond in &path.conditions {
                if let Cond::NonEmpty(j) = cond {
                    if *j < i && !needed.contains(j) {
                        needed.push(*j);
                    }
                }
            }
            // Field dependencies, transitively closed.
            let mut frontier = vec![i];
            while let Some(cur) = frontier.pop() {
                for (_, v) in &path.queries[cur].bindings {
                    if let SymScalar::Field { query, .. } = v {
                        if !needed.contains(query) && *query < i {
                            needed.push(*query);
                            frontier.push(*query);
                        }
                    }
                }
            }
            for j in needed {
                match translated.get(j) {
                    Some(g) if !g.failed => {
                        for a in &g.cq.atoms {
                            if !atoms.contains(a) {
                                atoms.push(a.clone());
                            }
                        }
                        for c in &g.cq.comparisons {
                            if !comparisons.contains(c) {
                                comparisons.push(*c);
                            }
                        }
                    }
                    _ => over_approximate = true,
                }
            }
            // Head: every observable query exposes its own projection —
            // enforcement is query-level, so the policy must cover what the
            // query *reads*, not merely what the user ultimately sees (a
            // metadata probe reads the post's group id even though only its
            // emptiness reaches the user) — plus the request variables that
            // select it. Constant head terms (SELECT 1 artifacts) drop out.
            let _ = q.emitted;
            let mut head: Vec<Term> = tq
                .cq
                .head
                .iter()
                .filter(|t| !t.is_rigid())
                .cloned()
                .collect();
            for t in request_vars(&atoms) {
                if !head.contains(&t) {
                    head.push(t);
                }
            }
            let cq = Cq::new(head, atoms, comparisons);
            let cq = qlogic::minimize(&cq);
            out.push(CandidateView {
                cq,
                handler: handler.to_string(),
                over_approximate,
            });
        }
    }
    dedup_views(out)
}

fn translate_path(
    schema: &RelSchema,
    path: &SymPath,
    opts: &ViewGenOptions,
) -> Vec<TranslatedQuery> {
    let mut out: Vec<TranslatedQuery> = Vec::new();
    let mut fresh = 0usize;
    for q in &path.queries {
        let tq = translate_query(schema, q, &out, opts, &mut fresh);
        out.push(tq);
    }
    out
}

fn translate_query(
    schema: &RelSchema,
    q: &SymQuery,
    earlier: &[TranslatedQuery],
    opts: &ViewGenOptions,
    fresh: &mut usize,
) -> TranslatedQuery {
    let failed = TranslatedQuery {
        cq: Cq::new(vec![], vec![], vec![]),
        out_map: vec![],
        failed: true,
    };
    let Ok(stmt) = sqlir::parse_statement(&q.sql) else {
        return failed;
    };
    let Statement::Select(query) = &stmt else {
        return failed;
    };
    let Ok(cq) = sql_to_cq(schema, query) else {
        return failed;
    };
    let Ok(names) = output_names(schema, query) else {
        return failed;
    };

    // Rename apart, then resolve parameters.
    let cq = cq.rename_vars(&format!("q{}·", q.id));
    let mut map: Vec<(String, Term)> = Vec::new();
    for (name, sym) in &q.bindings {
        let to = match sym {
            SymScalar::Session(s) => Term::param(s.clone()),
            SymScalar::Param(p) => {
                if opts.session_params.contains(p) {
                    Term::param(p.clone())
                } else {
                    Term::var(format!("req·{p}"))
                }
            }
            SymScalar::Lit(v) => Term::constant(v),
            SymScalar::Field { query, column } => earlier
                .get(*query)
                .and_then(|tq| {
                    tq.out_map
                        .iter()
                        .find(|(n, _)| n == column)
                        .map(|(_, t)| *t)
                })
                .unwrap_or_else(|| {
                    *fresh += 1;
                    Term::var(format!("opq·{fresh}"))
                }),
            SymScalar::Count(_) | SymScalar::Opaque => {
                *fresh += 1;
                Term::var(format!("opq·{fresh}"))
            }
        };
        map.push((name.clone(), to));
    }
    let cq = subst_params(&cq, &map);
    let out_map = names.into_iter().zip(cq.head.iter().cloned()).collect();
    TranslatedQuery {
        cq,
        out_map,
        failed: false,
    }
}

/// The request variables (`req·*`) appearing in a set of atoms.
fn request_vars(atoms: &[Atom]) -> Vec<Term> {
    let mut out = Vec::new();
    for a in atoms {
        for t in &a.args {
            if let Term::Var(v) = t {
                if v.as_str().starts_with("req·") && !out.contains(t) {
                    out.push(*t);
                }
            }
        }
    }
    out
}

/// Deduplicates candidate views by query equivalence, keeping provenance of
/// the first occurrence.
pub fn dedup_views(views: Vec<CandidateView>) -> Vec<CandidateView> {
    let mut out: Vec<CandidateView> = Vec::new();
    for v in views {
        if !out.iter().any(|kept| qlogic::equivalent(&kept.cq, &v.cq)) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symex::{explore, SymLimits};
    use appdsl::parse_handler;

    fn calendar_schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    const LISTING_1: &str = r#"
        handler show_event(event_id) {
            let rows = sql("SELECT 1 FROM Attendance
                            WHERE UId = ?MyUId AND EId = ?event_id");
            if rows.is_empty() {
                abort(404);
            }
            emit sql("SELECT * FROM Events WHERE EId = ?event_id");
        }
    "#;

    /// The ground-truth views of Example 2.1.
    fn v1() -> Cq {
        // V1(e) :- Attendance(?MyUId, e, n)
        Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::param("MyUId"), Term::var("e"), Term::var("n")],
            )],
            vec![],
        )
    }

    fn v2() -> Cq {
        // V2(e, t, k) :- Events(e, t, k), Attendance(?MyUId, e, n).
        //
        // Note: the paper writes V2 as `SELECT *` over the join, which also
        // exposes the Attendance payload (Notes). Listing 1 never shows
        // Notes, so the *maximally restrictive* policy — which is what
        // extraction promises — exposes only the Events columns. We assert
        // the tighter view here; the enforcement tests use the paper's V2
        // verbatim.
        Cq::new(
            vec![Term::var("e"), Term::var("t"), Term::var("k")],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::param("MyUId"), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        )
    }

    #[test]
    fn reproduces_example_3_1() {
        // Extraction from Listing 1 must yield exactly V1 and V2.
        let h = parse_handler(LISTING_1).unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        let views = views_from_paths(
            &calendar_schema(),
            "show_event",
            &paths,
            &ViewGenOptions::default(),
        );
        assert_eq!(
            views.len(),
            2,
            "views: {:?}",
            views.iter().map(|v| v.cq.to_string()).collect::<Vec<_>>()
        );

        let dump = || {
            views
                .iter()
                .map(|v| v.cq.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let got_v1 = views
            .iter()
            .any(|v| crate::score::view_equivalent(&v.cq, &v1()));
        let got_v2 = views
            .iter()
            .any(|v| crate::score::view_equivalent(&v.cq, &v2()));
        assert!(got_v1, "missing V1; got:\n{}", dump());
        assert!(got_v2, "missing V2; got:\n{}", dump());
    }

    #[test]
    fn check_only_query_gets_existence_view() {
        let h = parse_handler(LISTING_1).unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        let views = views_from_paths(
            &calendar_schema(),
            "show_event",
            &paths,
            &ViewGenOptions::default(),
        );
        // V1 (from the check) exposes only the request variable: the probe's
        // own projection is the constant 1, which reveals nothing.
        let v = views.iter().find(|v| v.cq.atoms.len() == 1).unwrap();
        assert_eq!(v.cq.head.len(), 1);
    }

    #[test]
    fn metadata_probe_exposes_its_projection() {
        // A check that *reads* a column (not just SELECT 1) needs that
        // column in its view: the proxy enforces at the query level.
        let h = parse_handler(
            r#"
            handler gate(event_id) {
                let meta = sql("SELECT Kind FROM Events WHERE EId = ?event_id");
                if meta.is_empty() {
                    abort(404);
                }
                emit 1;
            }
            "#,
        )
        .unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        let views = views_from_paths(
            &calendar_schema(),
            "gate",
            &paths,
            &ViewGenOptions::default(),
        );
        let v = &views[0].cq;
        // Head: the Kind projection plus the request variable.
        assert_eq!(v.head.len(), 2, "view: {v}");
    }

    #[test]
    fn literals_stay_concrete() {
        let h = parse_handler(
            r#"
            handler promo() {
                emit sql("SELECT Title FROM Events WHERE Kind = 'public'");
            }
            "#,
        )
        .unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        let views = views_from_paths(
            &calendar_schema(),
            "promo",
            &paths,
            &ViewGenOptions::default(),
        );
        assert_eq!(views.len(), 1);
        assert!(views[0].cq.atoms[0]
            .args
            .iter()
            .any(|t| *t == Term::str("public")));
    }

    #[test]
    fn discarded_query_still_gets_a_view() {
        // The result is ignored, but the query is still issued and the
        // proxy still has to decide it: coverage is required.
        let h = parse_handler(
            r#"
            handler fire_and_forget() {
                let x = sql("SELECT Title FROM Events WHERE EId = 1");
                emit 1;
            }
            "#,
        )
        .unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        let views = views_from_paths(
            &calendar_schema(),
            "fire_and_forget",
            &paths,
            &ViewGenOptions::default(),
        );
        assert_eq!(views.len(), 1);
    }

    #[test]
    fn field_link_joins_bodies() {
        let h = parse_handler(
            r#"
            handler first_event_title() {
                let r = sql("SELECT EId FROM Attendance WHERE UId = ?MyUId");
                let eid = r.EId;
                emit sql("SELECT Title FROM Events WHERE EId = ?eid");
            }
            "#,
        )
        .unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        let views = views_from_paths(
            &calendar_schema(),
            "first_event_title",
            &paths,
            &ViewGenOptions::default(),
        );
        // The emitted view must join Events with Attendance through EId.
        let joined = views
            .iter()
            .find(|v| v.cq.atoms.len() == 2)
            .expect("joined view");
        let ev = joined
            .cq
            .atoms
            .iter()
            .find(|a| a.relation == "Events")
            .unwrap();
        let at = joined
            .cq
            .atoms
            .iter()
            .find(|a| a.relation == "Attendance")
            .unwrap();
        assert_eq!(ev.args[0], at.args[1], "EId unified across the atoms");
        assert_eq!(at.args[0], Term::param("MyUId"));
    }
}
