//! Symbolic execution of handler programs (§3.2.1).
//!
//! The executor runs a handler with *symbolic* request parameters, session
//! fields, and query results. Branches on query emptiness fork the path;
//! each explored path records:
//!
//! * every query issued, with each SQL parameter resolved to a symbolic
//!   scalar (session field, request parameter, literal, or a *field* of an
//!   earlier query's result — the data-dependency edge);
//! * the path condition, as emptiness/non-emptiness literals over issued
//!   queries;
//! * which queries' results were emitted to the user.
//!
//! Loops are unrolled a bounded number of times, following the paper's
//! observation that web-application loop structure is simple; conditions the
//! symbolic domain cannot express (comparisons over unknown scalars) fork
//! both ways with no recorded literal, which makes the resulting views
//! over-approximate those branches — the safe direction for a draft policy a
//! human will review.

use sqlir::Value;

use crate::error::ExtractError;
use appdsl::ast::{DBinOp, DExpr, Handler, Stmt};

/// Identifies a query issued on a path (issue order within the path).
pub type QueryId = usize;

/// A symbolic scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum SymScalar {
    /// A concrete literal from the program text.
    Lit(Value),
    /// A request parameter (symbolic, per-request).
    Param(String),
    /// A session field (symbolic, shared with the policy's namespace).
    Session(String),
    /// Column `column` of the first/current row of query `query`'s result.
    Field {
        /// The producing query.
        query: QueryId,
        /// The column name.
        column: String,
    },
    /// The row count of a query's result (opaque to view generation).
    Count(QueryId),
    /// A value the symbolic domain cannot track.
    Opaque,
}

/// A path-condition literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// Query `0` returned no rows.
    Empty(QueryId),
    /// Query `0` returned at least one row.
    NonEmpty(QueryId),
}

/// A query issued along a path.
#[derive(Debug, Clone, PartialEq)]
pub struct SymQuery {
    /// Issue-order id within the path.
    pub id: QueryId,
    /// SQL text as written (named parameters unresolved).
    pub sql: String,
    /// Resolution of each named SQL parameter.
    pub bindings: Vec<(String, SymScalar)>,
    /// Whether this query's result reaches the user.
    pub emitted: bool,
}

/// One fully-explored execution path.
#[derive(Debug, Clone, PartialEq)]
pub struct SymPath {
    /// Emptiness literals accumulated along the path.
    pub conditions: Vec<Cond>,
    /// Queries issued, in order.
    pub queries: Vec<SymQuery>,
    /// How the path terminated.
    pub outcome: PathOutcome,
}

/// How a symbolic path ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathOutcome {
    /// Normal completion.
    Ok,
    /// `abort(code)`.
    Http(u16),
}

/// Limits for path exploration.
#[derive(Debug, Clone, Copy)]
pub struct SymLimits {
    /// Maximum number of paths explored per handler.
    pub max_paths: usize,
    /// Loop unrolling depth (0 and 1..=unroll iterations are explored).
    pub unroll: usize,
}

impl Default for SymLimits {
    fn default() -> SymLimits {
        SymLimits {
            max_paths: 256,
            unroll: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum SymVal {
    Scalar(SymScalar),
    Rows(QueryId),
    /// A row of query `0` (loop variable).
    Row(QueryId),
}

#[derive(Debug, Clone)]
struct PathState {
    conditions: Vec<Cond>,
    queries: Vec<SymQuery>,
    vars: Vec<(String, SymVal)>,
}

/// Symbolically executes a handler, returning all explored paths.
pub fn explore(handler: &Handler, limits: SymLimits) -> Result<Vec<SymPath>, ExtractError> {
    let mut paths = Vec::new();
    let state = PathState {
        conditions: Vec::new(),
        queries: Vec::new(),
        vars: Vec::new(),
    };
    let mut ex = Explorer {
        limits,
        paths: &mut paths,
        truncated: false,
    };
    ex.block(&handler.body, state, &mut |ex, st| {
        ex.finish(st, PathOutcome::Ok);
    });
    Ok(paths)
}

struct Explorer<'a> {
    limits: SymLimits,
    paths: &'a mut Vec<SymPath>,
    truncated: bool,
}

/// Continuation style: `k` receives the explorer and the state after the
/// block completes normally; terminating statements call `finish` instead.
type Cont<'c> = &'c mut dyn FnMut(&mut Explorer<'_>, PathState);

impl<'a> Explorer<'a> {
    fn finish(&mut self, st: PathState, outcome: PathOutcome) {
        if self.paths.len() >= self.limits.max_paths {
            self.truncated = true;
            return;
        }
        self.paths.push(SymPath {
            conditions: st.conditions,
            queries: st.queries,
            outcome,
        });
    }

    fn over_budget(&self) -> bool {
        self.paths.len() >= self.limits.max_paths
    }

    fn block(&mut self, stmts: &[Stmt], st: PathState, k: Cont<'_>) {
        if self.over_budget() {
            return;
        }
        match stmts.split_first() {
            None => k(self, st),
            Some((first, rest)) => {
                self.stmt(first, st, &mut |ex, st2| ex.block(rest, st2, k));
            }
        }
    }

    fn stmt(&mut self, s: &Stmt, st: PathState, k: Cont<'_>) {
        if self.over_budget() {
            return;
        }
        match s {
            Stmt::Let { var, expr } => {
                let var = var.clone();
                self.eval(expr, st, &mut |ex, mut st2, v| {
                    set_var(&mut st2.vars, &var, v);
                    k(ex, st2);
                });
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.eval_bool(cond, st, &mut |ex, st2, b| {
                    if b {
                        ex.block(then_branch, st2, k);
                    } else {
                        ex.block(else_branch, st2, k);
                    }
                });
            }
            Stmt::ForRow { var, rows, body } => {
                let var = var.clone();
                let unroll = self.limits.unroll;
                self.eval(rows, st, &mut |ex, st2, v| {
                    let SymVal::Rows(qid) = v else {
                        return; // kind error: drop the path silently
                    };
                    // Zero iterations (result may be empty).
                    let mut st_zero = st2.clone();
                    push_cond(&mut st_zero.conditions, Cond::Empty(qid));
                    ex.block(&[], st_zero, k);
                    // 1..=unroll iterations.
                    for iters in 1..=unroll {
                        let mut st_n = st2.clone();
                        push_cond(&mut st_n.conditions, Cond::NonEmpty(qid));
                        set_var(&mut st_n.vars, &var, SymVal::Row(qid));
                        // Unroll the body `iters` times sequentially.
                        let mut repeated: Vec<Stmt> = Vec::new();
                        for _ in 0..iters {
                            repeated.extend(body.iter().cloned());
                        }
                        ex.block(&repeated, st_n, k);
                    }
                });
            }
            Stmt::Emit { expr } => {
                self.eval(expr, st, &mut |ex, mut st2, v| {
                    // Mark the data sources of the emitted value.
                    match &v {
                        SymVal::Rows(q) | SymVal::Row(q) => {
                            if let Some(sq) = st2.queries.iter_mut().find(|sq| sq.id == *q) {
                                sq.emitted = true;
                            }
                        }
                        SymVal::Scalar(SymScalar::Field { query, .. })
                        | SymVal::Scalar(SymScalar::Count(query)) => {
                            if let Some(sq) = st2.queries.iter_mut().find(|sq| sq.id == *query) {
                                sq.emitted = true;
                            }
                        }
                        SymVal::Scalar(_) => {}
                    }
                    k(ex, st2);
                });
            }
            Stmt::Run { sql } => {
                let mut st2 = st;
                // DML issues a statement but produces no observable rows.
                let _ = issue(&mut st2, sql);
                k(self, st2);
            }
            Stmt::Abort { code } => self.finish(st, PathOutcome::Http(*code)),
            Stmt::Return => self.finish(st, PathOutcome::Ok),
        }
    }

    /// Evaluates an expression; `k` receives the value.
    fn eval(
        &mut self,
        e: &DExpr,
        st: PathState,
        k: &mut dyn FnMut(&mut Explorer<'_>, PathState, SymVal),
    ) {
        if self.over_budget() {
            return;
        }
        match e {
            DExpr::Lit(v) => k(self, st, SymVal::Scalar(SymScalar::Lit(v.clone()))),
            DExpr::Param(p) => k(self, st, SymVal::Scalar(SymScalar::Param(p.clone()))),
            DExpr::Session(s) => k(self, st, SymVal::Scalar(SymScalar::Session(s.clone()))),
            DExpr::Var(v) => {
                let val = st
                    .vars
                    .iter()
                    .find(|(n, _)| n == v)
                    .map(|(_, val)| val.clone())
                    .unwrap_or(SymVal::Scalar(SymScalar::Opaque));
                k(self, st, val)
            }
            DExpr::Sql { sql } => {
                let mut st2 = st;
                let qid = issue(&mut st2, sql);
                k(self, st2, SymVal::Rows(qid))
            }
            DExpr::IsEmpty(inner) | DExpr::Count(inner) => {
                let is_count = matches!(e, DExpr::Count(_));
                self.eval(inner, st, &mut |ex, st2, v| match v {
                    SymVal::Rows(q) => {
                        if is_count {
                            k(ex, st2, SymVal::Scalar(SymScalar::Count(q)))
                        } else {
                            // Bubble the rows id up; eval_bool forks on it.
                            k(ex, st2, SymVal::Scalar(SymScalar::Count(q)))
                        }
                    }
                    _ => k(ex, st2, SymVal::Scalar(SymScalar::Opaque)),
                });
            }
            DExpr::Field { base, column } => {
                let column = column.clone();
                self.eval(base, st, &mut |ex, st2, v| match v {
                    SymVal::Rows(q) | SymVal::Row(q) => k(
                        ex,
                        st2,
                        SymVal::Scalar(SymScalar::Field {
                            query: q,
                            column: column.clone(),
                        }),
                    ),
                    _ => k(ex, st2, SymVal::Scalar(SymScalar::Opaque)),
                });
            }
            DExpr::Not(_) | DExpr::Binary { .. } => {
                // Boolean expressions evaluated for value: fork via
                // eval_bool and materialize a literal.
                self.eval_bool(e, st, &mut |ex, st2, b| {
                    k(ex, st2, SymVal::Scalar(SymScalar::Lit(Value::Bool(b))))
                });
            }
        }
    }

    /// Evaluates a condition, forking as needed; `k` is invoked once per
    /// explored branch with the concrete truth value on that branch.
    fn eval_bool(
        &mut self,
        e: &DExpr,
        st: PathState,
        k: &mut dyn FnMut(&mut Explorer<'_>, PathState, bool),
    ) {
        if self.over_budget() {
            return;
        }
        match e {
            DExpr::Lit(Value::Bool(b)) => k(self, st, *b),
            DExpr::Not(inner) => self.eval_bool(inner, st, &mut |ex, st2, b| k(ex, st2, !b)),
            DExpr::Binary {
                op: DBinOp::And,
                lhs,
                rhs,
            } => {
                self.eval_bool(lhs, st, &mut |ex, st2, b| {
                    if b {
                        ex.eval_bool(rhs, st2, k);
                    } else {
                        k(ex, st2, false);
                    }
                });
            }
            DExpr::Binary {
                op: DBinOp::Or,
                lhs,
                rhs,
            } => {
                self.eval_bool(lhs, st, &mut |ex, st2, b| {
                    if b {
                        k(ex, st2, true);
                    } else {
                        ex.eval_bool(rhs, st2, k);
                    }
                });
            }
            DExpr::IsEmpty(inner) => {
                self.eval(inner, st, &mut |ex, st2, v| match v {
                    SymVal::Rows(q) => {
                        // Fork: empty / non-empty.
                        let mut st_t = st2.clone();
                        push_cond(&mut st_t.conditions, Cond::Empty(q));
                        k(ex, st_t, true);
                        if ex.over_budget() {
                            return;
                        }
                        let mut st_f = st2.clone();
                        push_cond(&mut st_f.conditions, Cond::NonEmpty(q));
                        k(ex, st_f, false);
                    }
                    _ => {
                        // Unknown: fork with no recorded literal.
                        k(ex, st2.clone(), true);
                        if !ex.over_budget() {
                            k(ex, st2, false);
                        }
                    }
                });
            }
            _ => {
                // Comparisons over symbolic scalars: fork both ways without
                // a recorded literal (over-approximation).
                k(self, st.clone(), true);
                if !self.over_budget() {
                    k(self, st, false);
                }
            }
        }
    }
}

fn set_var(vars: &mut Vec<(String, SymVal)>, name: &str, v: SymVal) {
    if let Some(slot) = vars.iter_mut().find(|(n, _)| n == name) {
        slot.1 = v;
    } else {
        vars.push((name.to_string(), v));
    }
}

fn push_cond(conds: &mut Vec<Cond>, c: Cond) {
    if !conds.contains(&c) {
        conds.push(c);
    }
}

/// Records a query issue in the state, resolving its named SQL parameters
/// against the symbolic environment.
fn issue(st: &mut PathState, sql: &str) -> QueryId {
    let id = st.queries.len();
    let bindings = match sqlir::parse_statement(sql) {
        Ok(stmt) => {
            let (named, _) = sqlir::collect_params(&stmt);
            named
                .into_iter()
                .map(|name| {
                    let v = resolve_sym(st, &name);
                    (name, v)
                })
                .collect()
        }
        Err(_) => Vec::new(),
    };
    st.queries.push(SymQuery {
        id,
        sql: sql.to_string(),
        bindings,
        emitted: false,
    });
    id
}

/// Mirrors the interpreter's resolution order: let-bound scalars, then
/// request parameters, then session fields. Symbolically we cannot always
/// distinguish request parameters from session fields for bare names, so
/// unresolved names default to request parameters (the generalizing choice).
fn resolve_sym(st: &PathState, name: &str) -> SymScalar {
    if let Some((_, v)) = st.vars.iter().find(|(n, _)| n == name) {
        return match v {
            SymVal::Scalar(s) => s.clone(),
            SymVal::Rows(_) | SymVal::Row(_) => SymScalar::Opaque,
        };
    }
    SymScalar::Param(name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::parse_handler;

    const LISTING_1: &str = r#"
        handler show_event(event_id) {
            let rows = sql("SELECT 1 FROM Attendance
                            WHERE UId = ?MyUId AND EId = ?event_id");
            if rows.is_empty() {
                abort(404);
            }
            emit sql("SELECT * FROM Events WHERE EId = ?event_id");
        }
    "#;

    #[test]
    fn listing_1_explores_two_paths() {
        let h = parse_handler(LISTING_1).unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        assert_eq!(paths.len(), 2);

        // Path A: empty check → 404, only Q1 issued.
        let a = paths
            .iter()
            .find(|p| p.outcome == PathOutcome::Http(404))
            .unwrap();
        assert_eq!(a.queries.len(), 1);
        assert_eq!(a.conditions, vec![Cond::Empty(0)]);

        // Path B: non-empty check → Q2 issued and emitted.
        let b = paths.iter().find(|p| p.outcome == PathOutcome::Ok).unwrap();
        assert_eq!(b.queries.len(), 2);
        assert_eq!(b.conditions, vec![Cond::NonEmpty(0)]);
        assert!(!b.queries[0].emitted);
        assert!(b.queries[1].emitted);
    }

    #[test]
    fn sql_params_resolve_symbolically() {
        let h = parse_handler(LISTING_1).unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        let b = paths.iter().find(|p| p.queries.len() == 2).unwrap();
        let q1 = &b.queries[0];
        // ?MyUId is unresolved in the env → treated as a (session/request)
        // parameter; ?event_id likewise.
        assert!(q1
            .bindings
            .iter()
            .any(|(n, v)| n == "MyUId" && matches!(v, SymScalar::Param(p) if p == "MyUId")));
        assert!(q1
            .bindings
            .iter()
            .any(|(n, v)| n == "event_id" && matches!(v, SymScalar::Param(p) if p == "event_id")));
    }

    #[test]
    fn field_dependency_is_tracked() {
        let h = parse_handler(
            r#"
            handler f() {
                let r = sql("SELECT EId FROM Attendance WHERE UId = ?MyUId");
                let eid = r.EId;
                emit sql("SELECT Title FROM Events WHERE EId = ?eid");
            }
            "#,
        )
        .unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        assert_eq!(paths.len(), 1);
        let q2 = &paths[0].queries[1];
        assert!(matches!(
            q2.bindings[0].1,
            SymScalar::Field { query: 0, ref column } if column == "EId"
        ));
        assert!(q2.emitted);
    }

    #[test]
    fn loop_unrolling_explores_zero_and_one() {
        let h = parse_handler(
            r#"
            handler f() {
                let rs = sql("SELECT EId FROM Attendance WHERE UId = ?MyUId");
                for r in rs {
                    let eid = r.EId;
                    emit sql("SELECT Title FROM Events WHERE EId = ?eid");
                }
            }
            "#,
        )
        .unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        // Zero-iteration path (1 query) and one-iteration path (2 queries).
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.queries.len() == 1));
        let one = paths.iter().find(|p| p.queries.len() == 2).unwrap();
        assert!(one.conditions.contains(&Cond::NonEmpty(0)));
        assert!(matches!(
            one.queries[1].bindings[0].1,
            SymScalar::Field { query: 0, .. }
        ));
    }

    #[test]
    fn opaque_comparisons_fork_both_ways() {
        let h = parse_handler(
            r#"
            handler f(x) {
                if params.x == 1 {
                    emit sql("SELECT Title FROM Events WHERE EId = 1");
                } else {
                    emit sql("SELECT Title FROM Events WHERE EId = 2");
                }
            }
            "#,
        )
        .unwrap();
        let paths = explore(&h, SymLimits::default()).unwrap();
        assert_eq!(paths.len(), 2);
        // Neither path records a condition literal (comparison is opaque).
        assert!(paths.iter().all(|p| p.conditions.is_empty()));
    }

    #[test]
    fn path_budget_is_respected() {
        // 8 sequential binary forks = 256 paths; budget 16 truncates.
        let mut src = String::from("handler f() {\n");
        for i in 0..8 {
            src.push_str(&format!(
                "let r{i} = sql(\"SELECT 1 FROM Events WHERE EId = {i}\");\n\
                 if r{i}.is_empty() {{ emit 1; }} else {{ emit 2; }}\n"
            ));
        }
        src.push('}');
        let h = parse_handler(&src).unwrap();
        let paths = explore(
            &h,
            SymLimits {
                max_paths: 16,
                unroll: 1,
            },
        )
        .unwrap();
        assert!(paths.len() <= 16);
    }
}
