//! Active constraint discovery (§3.2.2, bullet 3).
//!
//! The miner may keep a constant in a view simply because the workload never
//! varied it — e.g. every attended event in the traces happened to have
//! `Kind = 'work'`, so the generalized view still pins `Kind`. The paper's
//! remedy: *re-run the application with the suspect cell mutated to a random
//! value; if the subsequent trace is unaffected, conclude the value does not
//! affect access and omit it from the policy.*
//!
//! [`refine`] implements exactly that loop: for each constant in each mined
//! view, clone the database, scramble the column's matching cells, re-run
//! the workload, and compare behaviour signatures. Constants whose mutation
//! leaves behaviour unchanged are promoted to variables.

use minidb::Database;
use qlogic::{Cq, RelSchema, Term};
use sqlir::Value;

use crate::error::ExtractError;
use crate::mining::{run_signatures, Request, RunSignature};
use appdsl::App;

/// Budget for mutation probes.
#[derive(Debug, Clone, Copy)]
pub struct ActiveOptions {
    /// Maximum mutation probes across all views.
    pub max_probes: usize,
}

impl Default for ActiveOptions {
    fn default() -> ActiveOptions {
        ActiveOptions { max_probes: 64 }
    }
}

/// Constants appearing literally in the application's SQL templates.
///
/// These are developer intent (visible to any black-box observer of the
/// prepared-statement templates) and are never probed: a `WHERE Kind =
/// 'work'` filter belongs in the policy regardless of whether mutating
/// `Kind` cells changes behaviour. Probing targets only *binding-derived*
/// constants — values that flowed in from data or from an un-varied
/// workload, which is exactly where spurious constraints hide.
pub fn template_constants(app: &App) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    let mut collect_from_sql = |sql: &str| {
        if let Ok(stmt) = sqlir::parse_statement(sql) {
            let mut visit = |e: &sqlir::Expr| {
                if let sqlir::Expr::Literal(v) = e {
                    if !v.is_null() && !out.contains(v) {
                        out.push(v.clone());
                    }
                }
            };
            match &stmt {
                sqlir::Statement::Select(q) => sqlir::ast::walk_query(q, &mut visit),
                sqlir::Statement::Insert(i) => {
                    for row in &i.rows {
                        for e in row {
                            e.walk(&mut visit);
                        }
                    }
                }
                sqlir::Statement::Update(u) => {
                    for a in &u.assignments {
                        a.value.walk(&mut visit);
                    }
                    if let Some(w) = &u.where_clause {
                        w.walk(&mut visit);
                    }
                }
                sqlir::Statement::Delete(d) => {
                    if let Some(w) = &d.where_clause {
                        w.walk(&mut visit);
                    }
                }
                sqlir::Statement::CreateTable(_) => {}
            }
        }
    };
    for h in &app.handlers {
        for stmt in &h.body {
            stmt.walk_sql(&mut collect_from_sql);
        }
    }
    out
}

/// Statistics from one refinement pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActiveStats {
    /// Mutation probes executed.
    pub probes: usize,
    /// Constants generalized away.
    pub generalized: usize,
    /// Constants confirmed as access-relevant.
    pub confirmed: usize,
}

/// Refines mined views by mutation probing. Returns the refined views and
/// probe statistics.
pub fn refine(
    views: Vec<Cq>,
    db: &Database,
    app: &App,
    schema: &RelSchema,
    requests: &[Request],
    opts: ActiveOptions,
) -> Result<(Vec<Cq>, ActiveStats), ExtractError> {
    let baseline = run_signatures(db, app, requests)?;
    let protected = template_constants(app);
    let mut stats = ActiveStats::default();
    let mut out = Vec::with_capacity(views.len());
    for view in views {
        out.push(refine_view(
            view, db, app, schema, requests, &baseline, &protected, &mut stats, opts,
        )?);
    }
    Ok((out, stats))
}

#[allow(clippy::too_many_arguments)]
fn refine_view(
    mut view: Cq,
    db: &Database,
    app: &App,
    schema: &RelSchema,
    requests: &[Request],
    baseline: &[RunSignature],
    protected: &[Value],
    stats: &mut ActiveStats,
    opts: ActiveOptions,
) -> Result<Cq, ExtractError> {
    // Probe each constant position. Parameters are skipped (session-linked
    // by construction); template constants are skipped (developer intent).
    loop {
        let mut changed = false;
        let positions = constant_positions(&view);
        for (relation, col_idx, value) in positions {
            if protected.contains(&value) {
                continue;
            }
            if stats.probes >= opts.max_probes {
                return Ok(view);
            }
            let Ok(cols) = schema.columns(&relation) else {
                continue;
            };
            let Some(column) = cols.get(col_idx) else {
                continue;
            };

            stats.probes += 1;
            let mutated = mutate_column(db, &relation, column, &value)?;
            let after = run_signatures(&mutated, app, requests)?;
            if after == baseline {
                // The value is behaviourally irrelevant: generalize it. The
                // fresh variable is request-selected, so expose it in the
                // head (mirroring what the hints do).
                let fresh = Term::var(format!("act·{}", stats.generalized));
                view = replace_const(&view, &value, &fresh);
                if !view.head.contains(&fresh) {
                    view.head.push(fresh);
                }
                view = qlogic::minimize(&view);
                stats.generalized += 1;
                changed = true;
                break; // re-enumerate positions on the updated view
            } else {
                stats.confirmed += 1;
            }
        }
        if !changed {
            return Ok(view);
        }
    }
}

/// Constant positions in a view's atoms: `(relation, column index, value)`.
fn constant_positions(view: &Cq) -> Vec<(String, usize, Value)> {
    let mut out = Vec::new();
    for a in &view.atoms {
        for (i, t) in a.args.iter().enumerate() {
            if let Term::Const(v) = t {
                let entry = (a.relation.to_string(), i, v.to_value());
                if !out.contains(&entry) {
                    out.push(entry);
                }
            }
        }
    }
    out
}

/// Clones the database with every cell of `table.column` equal to `value`
/// scrambled to a fresh value of the same type.
fn mutate_column(
    db: &Database,
    table: &str,
    column: &str,
    value: &Value,
) -> Result<Database, ExtractError> {
    let mut out = db.clone();
    let t = out
        .table_mut_unchecked(table)
        .map_err(|e| ExtractError::Execution(e.to_string()))?;
    let Some(idx) = t.schema.column_index(column) else {
        return Ok(out);
    };
    let fresh = scrambled(value);
    let mut rows = t.rows_slice().to_vec();
    for row in &mut rows {
        if &row[idx] == value {
            row[idx] = fresh.clone();
        }
    }
    t.set_rows(rows);
    Ok(out)
}

/// A fresh value of the same type, chosen outside plausible live ranges.
fn scrambled(v: &Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i.wrapping_mul(7919).wrapping_add(1_000_003)),
        Value::Str(s) => Value::Str(format!("scrambled·{s}·{}", s.len())),
        Value::Bool(b) => Value::Bool(!b),
        Value::Null => Value::Null,
    }
}

/// Replaces every occurrence of a constant with a term.
fn replace_const(cq: &Cq, from: &Value, to: &Term) -> Cq {
    let from = qlogic::CVal::from_value(from);
    let f = |t: &Term| -> Term {
        match t {
            Term::Const(c) if *c == from => *to,
            other => *other,
        }
    };
    let mut out = Cq::new(
        cq.head.iter().map(f).collect(),
        cq.atoms
            .iter()
            .map(|a| qlogic::Atom::new(a.relation, a.args.iter().map(f).collect()))
            .collect(),
        cq.comparisons
            .iter()
            .map(|c| qlogic::Comparison::new(f(&c.lhs), c.op, f(&c.rhs)))
            .collect(),
    );
    out.name = cq.name;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mining::{collect_traces, mine_policy, MineOptions};
    use appdsl::parse_app;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Docs", ["DId", "GId", "Title"]);
        s.add_table("Groups", ["GId", "Name"]);
        s.add_table("Membership", ["UId", "GId"]);
        s
    }

    /// Both documents live in group 7 — the invariance that traps the miner.
    fn docs_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Docs (DId INT PRIMARY KEY, GId INT, Title TEXT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Groups (GId INT PRIMARY KEY, Name TEXT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Membership (UId INT, GId INT)")
            .unwrap();
        db.execute_sql("INSERT INTO Groups (GId, Name) VALUES (7, 'eng'), (8, 'ops')")
            .unwrap();
        db.execute_sql(
            "INSERT INTO Docs (DId, GId, Title) VALUES (51, 7, 'road map'), (52, 7, 'retro')",
        )
        .unwrap();
        db.execute_sql("INSERT INTO Membership (UId, GId) VALUES (101, 7)")
            .unwrap();
        db
    }

    fn requests(handler: &str) -> Vec<Request> {
        vec![
            Request {
                handler: handler.into(),
                session: vec![("MyUId".into(), Value::Int(101))],
                params: vec![("doc_id".into(), Value::Int(51))],
            },
            Request {
                handler: handler.into(),
                session: vec![("MyUId".into(), Value::Int(101))],
                params: vec![("doc_id".into(), Value::Int(52))],
            },
        ]
    }

    #[test]
    fn irrelevant_binding_constant_is_generalized() {
        // The group probe is issued but never gates anything: mutating the
        // GId cells leaves the issued-query trace unchanged, so the mined
        // constant 7 must be generalized away.
        let app = parse_app(
            r#"
            handler show_doc(doc_id) {
                let d = sql("SELECT GId, Title FROM Docs WHERE DId = ?doc_id");
                if d.is_empty() {
                    abort(404);
                }
                let g = d.GId;
                let probe = sql("SELECT 1 FROM Groups WHERE GId = ?g");
                emit d;
            }
            "#,
        )
        .unwrap();
        let db = docs_db();
        let schema = schema();
        let reqs = requests("show_doc");
        let traces = collect_traces(&db, &app, &schema, &reqs).unwrap();
        let views = mine_policy(
            &traces,
            &MineOptions {
                minimize_policy: false,
                ..Default::default()
            },
        );
        assert!(
            views.iter().any(|v| v
                .atoms
                .iter()
                .any(|a| a.relation == "Groups" && a.args.contains(&Term::int(7)))),
            "precondition: the miner pinned GId = 7: {}",
            views
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        let (refined, stats) =
            refine(views, &db, &app, &schema, &reqs, ActiveOptions::default()).unwrap();
        assert!(stats.probes > 0);
        assert!(stats.generalized > 0, "stats: {stats:?}");
        let still_pinned = refined.iter().any(|v| {
            v.atoms
                .iter()
                .any(|a| a.relation == "Groups" && a.args.contains(&Term::int(7)))
        });
        assert!(!still_pinned);
    }

    #[test]
    fn gating_binding_constant_is_confirmed() {
        // Here the membership check gates access: mutating GId cells flips
        // the outcome to 403, so the constant is confirmed (conservatively
        // kept; hints would generalize it instead).
        let app = parse_app(
            r#"
            handler show_doc2(doc_id) {
                let d = sql("SELECT GId, Title FROM Docs WHERE DId = ?doc_id");
                if d.is_empty() {
                    abort(404);
                }
                let g = d.GId;
                let m = sql("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = ?g");
                if m.is_empty() {
                    abort(403);
                }
                emit d;
            }
            "#,
        )
        .unwrap();
        let db = docs_db();
        let schema = schema();
        let reqs = requests("show_doc2");
        let traces = collect_traces(&db, &app, &schema, &reqs).unwrap();
        let views = mine_policy(
            &traces,
            &MineOptions {
                minimize_policy: false,
                ..Default::default()
            },
        );
        let (refined, stats) =
            refine(views, &db, &app, &schema, &reqs, ActiveOptions::default()).unwrap();
        assert!(stats.confirmed > 0, "stats: {stats:?}");
        // The membership constraint survives in some view.
        assert!(refined
            .iter()
            .any(|v| v.atoms.iter().any(|a| a.relation == "Membership")));
    }

    #[test]
    fn template_constants_are_never_probed() {
        let app = parse_app(
            r#"
            handler work_events() {
                emit sql("SELECT Title FROM Docs WHERE Title = 'road map'");
            }
            "#,
        )
        .unwrap();
        let protected = template_constants(&app);
        assert!(protected.contains(&Value::str("road map")));

        let db = docs_db();
        let schema = schema();
        let reqs = vec![Request {
            handler: "work_events".into(),
            session: vec![("MyUId".into(), Value::Int(101))],
            params: vec![],
        }];
        let traces = collect_traces(&db, &app, &schema, &reqs).unwrap();
        let views = mine_policy(&traces, &MineOptions::default());
        let (refined, stats) =
            refine(views, &db, &app, &schema, &reqs, ActiveOptions::default()).unwrap();
        assert_eq!(stats.probes, 0, "template constants are protected");
        assert!(refined.iter().any(|v| v
            .atoms
            .iter()
            .any(|a| a.args.contains(&Term::str("road map")))));
    }

    #[test]
    fn scrambled_values_change() {
        assert_ne!(scrambled(&Value::Int(7)), Value::Int(7));
        assert_ne!(scrambled(&Value::str("x")), Value::str("x"));
        assert_ne!(scrambled(&Value::Bool(true)), Value::Bool(true));
    }
}
