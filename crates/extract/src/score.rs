//! Scoring extracted policies against ground truth (used by experiments
//! T1/T6).
//!
//! Two notions of agreement:
//!
//! * **exact** — views matched one-to-one by logical equivalence (heads
//!   compared as *sets* of revealed terms, since column order carries no
//!   information);
//! * **semantic** — a ground-truth view counts as covered when its content
//!   has an equivalent rewriting over the extracted views (and vice versa
//!   for precision), which credits policies that decompose the same
//!   information differently.

use qlogic::{equivalent, equivalent_rewriting_deps, Cq, Dependencies, Term, ViewSet};

/// Precision/recall/F1 for one comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Fraction of extracted views that are justified by the truth.
    pub precision: f64,
    /// Fraction of ground-truth views recovered.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
    /// Extracted view count.
    pub extracted: usize,
    /// Ground-truth view count.
    pub truth: usize,
}

impl Score {
    fn from_counts(matched_e: usize, extracted: usize, matched_t: usize, truth: usize) -> Score {
        let precision = if extracted == 0 {
            1.0
        } else {
            matched_e as f64 / extracted as f64
        };
        let recall = if truth == 0 {
            1.0
        } else {
            matched_t as f64 / truth as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Score {
            precision,
            recall,
            f1,
            extracted,
            truth,
        }
    }
}

/// Normalizes a view head to the *set* of terms it reveals.
fn head_normalized(cq: &Cq) -> Cq {
    let mut head: Vec<Term> = Vec::new();
    for t in &cq.head {
        // Constant head terms reveal nothing (SELECT 1 artifacts).
        if t.is_rigid() {
            continue;
        }
        if !head.contains(t) {
            head.push(*t);
        }
    }
    head.sort();
    let mut out = Cq::new(head, cq.atoms.clone(), cq.comparisons.clone());
    out.name = None;
    out
}

/// View equivalence modulo head order/duplicates/constant artifacts.
///
/// Tries positional equivalence on the normalized forms first (fast path),
/// then falls back to *mutual expressibility*: each view has an equivalent
/// rewriting over the other. Mutual expressibility is the right notion for
/// "these reveal the same information" and is insensitive to variable
/// naming and head ordering.
pub fn view_equivalent(a: &Cq, b: &Cq) -> bool {
    view_equivalent_deps(a, b, &Dependencies::none())
}

/// [`view_equivalent`] under key dependencies (needed when the same base
/// row appears through several atoms that only the keys can merge).
pub fn view_equivalent_deps(a: &Cq, b: &Cq, deps: &Dependencies) -> bool {
    let na = head_normalized(a);
    let nb = head_normalized(b);
    if equivalent(&na, &nb) {
        return true;
    }
    expressible_from(&na, &nb, deps) && expressible_from(&nb, &na, deps)
}

/// `target` has an equivalent rewriting over `{base}`.
fn expressible_from(target: &Cq, base: &Cq, deps: &Dependencies) -> bool {
    let mut named = base.clone();
    named.name = Some("X".into());
    let Ok(viewset) = ViewSet::new(vec![named]) else {
        return false;
    };
    equivalent_rewriting_deps(target, &viewset, &[], deps).is_some()
}

/// Exact equivalence-based scoring (greedy one-to-one matching).
pub fn score_exact(extracted: &[Cq], truth: &[Cq]) -> Score {
    score_exact_deps(extracted, truth, &Dependencies::none())
}

/// [`score_exact`] under key dependencies.
pub fn score_exact_deps(extracted: &[Cq], truth: &[Cq], deps: &Dependencies) -> Score {
    let mut truth_used = vec![false; truth.len()];
    let mut matched_e = 0;
    for e in extracted {
        if let Some(i) = truth
            .iter()
            .enumerate()
            .position(|(i, t)| !truth_used[i] && view_equivalent_deps(e, t, deps))
        {
            truth_used[i] = true;
            matched_e += 1;
        }
    }
    let matched_t = truth_used.iter().filter(|b| **b).count();
    Score::from_counts(matched_e, extracted.len(), matched_t, truth.len())
}

/// Semantic scoring: coverage by equivalent rewriting.
pub fn score_semantic(extracted: &[Cq], truth: &[Cq]) -> Score {
    score_semantic_deps(extracted, truth, &Dependencies::none())
}

/// [`score_semantic`] under key dependencies.
pub fn score_semantic_deps(extracted: &[Cq], truth: &[Cq], deps: &Dependencies) -> Score {
    let matched_t = covered_count(truth, extracted, deps);
    let matched_e = covered_count(extracted, truth, deps);
    Score::from_counts(matched_e, extracted.len(), matched_t, truth.len())
}

/// How many of `targets` have an equivalent rewriting over `base`.
fn covered_count(targets: &[Cq], base: &[Cq], deps: &Dependencies) -> usize {
    let named: Vec<Cq> = base
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let mut n = v.clone();
            n.name = Some(format!("B{i}").into());
            n
        })
        .collect();
    let Ok(viewset) = ViewSet::new(named) else {
        return 0;
    };
    targets
        .iter()
        .filter(|t| {
            let normalized = head_normalized(t);
            equivalent_rewriting_deps(&normalized, &viewset, &[], deps).is_some()
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Atom;

    fn v(head: Vec<Term>, atoms: Vec<Atom>) -> Cq {
        Cq::new(head, atoms, vec![])
    }

    #[test]
    fn head_order_does_not_matter() {
        let a = v(
            vec![Term::var("x"), Term::var("y")],
            vec![Atom::new("R", vec![Term::var("x"), Term::var("y")])],
        );
        let b = v(
            vec![Term::var("y"), Term::var("x"), Term::var("y")],
            vec![Atom::new("R", vec![Term::var("x"), Term::var("y")])],
        );
        assert!(view_equivalent(&a, &b));
    }

    #[test]
    fn constant_head_terms_ignored() {
        let a = v(
            vec![Term::int(1), Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
        );
        let b = v(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
        );
        assert!(view_equivalent(&a, &b));
    }

    #[test]
    fn exact_scoring() {
        let t1 = v(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
        );
        let t2 = v(
            vec![Term::var("y")],
            vec![Atom::new("S", vec![Term::var("y")])],
        );
        let e1 = t1.clone();
        let bogus = v(
            vec![Term::var("z")],
            vec![Atom::new("T", vec![Term::var("z")])],
        );
        let s = score_exact(&[e1, bogus], &[t1, t2]);
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 0.5);
    }

    #[test]
    fn semantic_scoring_credits_decompositions() {
        // Truth: one wide view. Extracted: projections that jointly... a
        // narrow projection alone cannot rebuild the wide view, but the wide
        // view can rebuild the narrow one.
        let wide = v(
            vec![Term::var("x"), Term::var("y")],
            vec![Atom::new("R", vec![Term::var("x"), Term::var("y")])],
        );
        let narrow = v(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x"), Term::var("y")])],
        );
        // Extracted = wide; truth = narrow: full recall and precision.
        let s = score_semantic(std::slice::from_ref(&wide), std::slice::from_ref(&narrow));
        assert_eq!(s.recall, 1.0, "narrow is expressible from wide");
        // Wide is NOT expressible from narrow.
        let s = score_semantic(&[narrow], &[wide]);
        assert_eq!(s.recall, 0.0);
    }

    #[test]
    fn empty_sides() {
        let t = v(vec![], vec![Atom::new("R", vec![Term::var("x")])]);
        let s = score_exact(&[], &[t]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
    }
}
