//! Language-agnostic policy extraction: specification mining (§3.2.2).
//!
//! The black-box pipeline runs the application on a workload of requests,
//! observes the (concrete) queries issued and their results, and learns a
//! policy that generalizes the observed traces:
//!
//! 1. **Trace collection** — every issued query, bound to its concrete
//!    values, translated to a ground conjunctive query; queries in the same
//!    request run are grouped so correlations between them are visible.
//! 2. **Session linking** — constants equal to a session field's value are
//!    re-linked to the policy parameter (`1` → `?MyUId`).
//! 3. **Correlation guards** — an observed query is conjoined with earlier
//!    same-trace queries that returned rows and share a constant with it
//!    (how the miner discovers that the event fetch was guarded by the
//!    attendance check).
//! 4. **Generalization** — traces with the same shape are anti-unified;
//!    positions that varied across traces become shared variables, which
//!    are exposed in the view head (they are request-selected).
//!
//! The non-generalizing learner (used as the F1 baseline) skips steps 2–4
//! and simply deduplicates ground queries — exhibiting exactly the
//! one-view-per-user blowup the paper warns about.

use minidb::Database;
use qlogic::{sql_to_cq, Cq, RelSchema, Term};
use sqlir::Value;

use crate::error::ExtractError;
use crate::hints::Hints;
use appdsl::{run_handler, App, Limits};

pub use appdsl::Request;

/// One observed (concrete) query.
#[derive(Debug, Clone)]
pub struct ObservedQuery {
    /// Ground conjunctive form (all parameters bound).
    pub cq: Cq,
    /// The SQL template observed.
    pub sql: String,
    /// Rows returned.
    pub row_count: usize,
    /// Index of the request run this belongs to.
    pub run: usize,
    /// The session fields of that run.
    pub session: Vec<(String, Value)>,
}

/// A behaviour signature for one request run (used by active learning to
/// decide whether a database mutation changed anything observable).
///
/// Following §3.2.2's "if the subsequent trace is unaffected", the signature
/// records *which* queries the application issued (and what it terminated
/// with), not the row contents — a mutated cell that changes no control flow
/// leaves the signature unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSignature {
    /// Handler name.
    pub handler: String,
    /// Terminal outcome (HTTP code or 0 for OK, -1 for blocked).
    pub outcome: i32,
    /// The sequence of issued query templates.
    pub issued: Vec<String>,
    /// The subsequence whose results were shown to the user.
    pub emitted: Vec<String>,
}

/// Collected traces plus per-run behaviour signatures.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    /// All observed queries across runs.
    pub observed: Vec<ObservedQuery>,
    /// One signature per request run.
    pub signatures: Vec<RunSignature>,
}

/// Runs the workload against a (fresh clone of the) database, observing all
/// issued queries black-box.
pub fn collect_traces(
    db: &Database,
    app: &App,
    schema: &RelSchema,
    requests: &[Request],
) -> Result<TraceSet, ExtractError> {
    let mut out = TraceSet::default();
    let mut db = db.clone();
    for (run, req) in requests.iter().enumerate() {
        let handler = app
            .handler(&req.handler)
            .ok_or_else(|| ExtractError::BadWorkload(format!("no handler {}", req.handler)))?;
        let result = run_handler(
            &mut db,
            handler,
            &req.session,
            &req.params,
            Limits::default(),
        )?;
        let outcome = match result.outcome {
            appdsl::Outcome::Ok => 0,
            appdsl::Outcome::Http(code) => i32::from(code),
            appdsl::Outcome::Blocked { .. } => -1,
        };
        let mut issued = Vec::new();
        let mut emitted = Vec::new();
        for q in &result.queries {
            issued.push(q.sql.clone());
            if q.emitted {
                emitted.push(q.sql.clone());
            }
            // Translate the *bound* query (what a wire observer sees).
            let Ok(stmt) = sqlir::parse_statement(&q.sql) else {
                continue;
            };
            let sqlir::Statement::Select(query) = &stmt else {
                continue;
            };
            let mut pb = sqlir::ParamBindings::new();
            for (k, v) in &q.bindings {
                pb.set(k.clone(), v.clone());
            }
            let Ok(bound) = sqlir::params::bind_query(query, &pb) else {
                continue;
            };
            let Ok(cq) = sql_to_cq(schema, &bound) else {
                continue;
            };
            out.observed.push(ObservedQuery {
                cq,
                sql: q.sql.clone(),
                row_count: q.row_count,
                run,
                session: req.session.clone(),
            });
        }
        out.signatures.push(RunSignature {
            handler: req.handler.clone(),
            outcome,
            issued,
            emitted,
        });
    }
    Ok(out)
}

/// Which learner to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Learner {
    /// Deduplicate ground queries only (the blowup baseline).
    NonGeneralizing,
    /// Full pipeline: session linking, correlation guards, anti-unification.
    Generalizing,
}

/// Mining options.
#[derive(Debug, Clone)]
pub struct MineOptions {
    /// Learner choice.
    pub learner: Learner,
    /// Opaque-identifier hints (§3.2.2, bullet 2).
    pub hints: Hints,
    /// Drop views expressible from the remaining ones (policy-size control).
    pub minimize_policy: bool,
}

impl Default for MineOptions {
    fn default() -> MineOptions {
        MineOptions {
            learner: Learner::Generalizing,
            hints: Hints::default(),
            minimize_policy: true,
        }
    }
}

/// Mines a policy from collected traces.
pub fn mine_policy(traces: &TraceSet, opts: &MineOptions) -> Vec<Cq> {
    match opts.learner {
        Learner::NonGeneralizing => mine_non_generalizing(traces),
        Learner::Generalizing => mine_generalizing(traces, opts),
    }
}

fn mine_non_generalizing(traces: &TraceSet) -> Vec<Cq> {
    let mut views: Vec<Cq> = Vec::new();
    for o in &traces.observed {
        if !views.contains(&o.cq) {
            views.push(o.cq.clone());
        }
    }
    views
}

fn mine_generalizing(traces: &TraceSet, opts: &MineOptions) -> Vec<Cq> {
    // 1. Session-link and attach correlation guards, per observation.
    let mut prepared: Vec<Cq> = Vec::new();
    for (i, o) in traces.observed.iter().enumerate() {
        let mut cq = with_correlation_guards(traces, i);
        for (name, value) in &o.session {
            cq = qlogic::const_to_param(&cq, value, name);
        }
        // Canonical variable names align structurally-equal traces, so
        // anti-unification introduces fresh variables only where rigid
        // terms actually differ.
        prepared.push(qlogic::canonicalize_vars(&cq));
    }

    // 2. Group by shape and anti-unify each group.
    let mut groups: Vec<(String, Vec<Cq>)> = Vec::new();
    for cq in prepared {
        let key = shape_key(&cq);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, list)) => list.push(cq),
            None => groups.push((key, vec![cq])),
        }
    }
    let mut views = Vec::new();
    for (_, group) in groups {
        let Some(mut generalized) = qlogic::anti_unify_all(group.iter()) else {
            // Shape key collided but anti-unification failed; keep the
            // members verbatim rather than lose them.
            views.extend(group);
            continue;
        };
        expose_generalization_vars(&mut generalized);
        views.push(generalized);
    }

    // 3. Apply opaque-identifier hints.
    let mut views: Vec<Cq> = views.iter().map(|v| opts.hints.apply(v)).collect();

    // 4. Minimize each view and deduplicate.
    for v in &mut views {
        *v = qlogic::minimize(v);
    }
    let mut deduped: Vec<Cq> = Vec::new();
    for v in views {
        if !deduped
            .iter()
            .any(|kept| crate::score::view_equivalent(kept, &v))
        {
            deduped.push(v);
        }
    }

    // 5. Policy-size control: drop views expressible from the others.
    if opts.minimize_policy {
        deduped = crate::policy_min::drop_redundant(deduped);
    }
    deduped
}

/// Conjoins the bodies of earlier same-run queries that returned rows and
/// share a rigid term with the observation (the correlation heuristic).
fn with_correlation_guards(traces: &TraceSet, idx: usize) -> Cq {
    let o = &traces.observed[idx];
    let mut cq = o.cq.rename_vars("m·");
    let my_rigids = rigid_terms(&o.cq);
    for (j, earlier) in traces.observed.iter().enumerate() {
        if j >= idx || earlier.run != o.run || earlier.row_count == 0 {
            continue;
        }
        let their_rigids = rigid_terms(&earlier.cq);
        let shares = my_rigids.iter().any(|t| their_rigids.contains(t));
        if shares {
            let guard = earlier.cq.rename_vars(&format!("g{j}·"));
            for a in guard.atoms {
                if !cq.atoms.contains(&a) {
                    cq.atoms.push(a);
                }
            }
            for c in guard.comparisons {
                if !cq.comparisons.contains(&c) {
                    cq.comparisons.push(c);
                }
            }
        }
    }
    cq
}

/// Rigid terms in atom arguments (the correlation signals). Head constants
/// like `SELECT 1` are excluded — they are query artifacts.
fn rigid_terms(cq: &Cq) -> Vec<Term> {
    let mut out = Vec::new();
    for a in &cq.atoms {
        for t in &a.args {
            if t.is_rigid() && !out.contains(t) {
                out.push(*t);
            }
        }
    }
    out
}

/// Shape key: traces generalize together only when they came from the same
/// query template, which the key approximates by the full *structure* —
/// relation sequence, which argument positions hold rigid terms, where each
/// head term is bound, and the comparison operators. (Two single-atom
/// queries over the same table with different selected/projected columns
/// must NOT merge: anti-unifying a "doctor of patient" probe with a
/// "diseases of doctor" probe yields garbage.)
fn shape_key(cq: &Cq) -> String {
    use std::fmt::Write as _;
    let mut k = String::new();
    let _ = write!(k, "h{}|", cq.head.len());
    for a in &cq.atoms {
        let _ = write!(k, "{}/{}", a.relation, a.args.len());
        for t in &a.args {
            k.push(match t {
                Term::Var(_) => 'v',
                Term::Const(_) => 'c',
                Term::Param(_) => 'p',
            });
        }
        k.push(';');
    }
    // Head binding signature: first occurrence of each head term in the
    // atoms (or 'r' for a rigid head term).
    for h in &cq.head {
        match h {
            Term::Var(_) => {
                let mut tag = String::from("?");
                'find: for (ai, a) in cq.atoms.iter().enumerate() {
                    for (pi, t) in a.args.iter().enumerate() {
                        if t == h {
                            tag = format!("{ai}.{pi}");
                            break 'find;
                        }
                    }
                }
                let _ = write!(k, "{tag},");
            }
            _ => k.push_str("r,"),
        }
    }
    k.push('|');
    for c in &cq.comparisons {
        let _ = write!(k, "{:?},", c.op);
    }
    k
}

/// Exposes generalization variables (positions that varied across traces) in
/// the view head: variation across requests means the data is selected per
/// request, so the view must reveal it.
fn expose_generalization_vars(cq: &mut Cq) {
    let mut to_add: Vec<Term> = Vec::new();
    for a in &cq.atoms {
        for t in &a.args {
            if let Term::Var(v) = t {
                let v = v.as_str();
                if v.starts_with('g')
                    && v[1..].chars().all(|c| c.is_ascii_digit())
                    && !cq.head.contains(t)
                    && !to_add.contains(t)
                {
                    to_add.push(*t);
                }
            }
        }
    }
    cq.head.extend(to_add);
}

/// Computes signatures for a workload on a given database (baseline or
/// mutated) — the comparison primitive of active learning.
pub fn run_signatures(
    db: &Database,
    app: &App,
    requests: &[Request],
) -> Result<Vec<RunSignature>, ExtractError> {
    let mut db = db.clone();
    let mut out = Vec::new();
    for req in requests {
        let handler = app
            .handler(&req.handler)
            .ok_or_else(|| ExtractError::BadWorkload(format!("no handler {}", req.handler)))?;
        let result = run_handler(
            &mut db,
            handler,
            &req.session,
            &req.params,
            Limits::default(),
        )?;
        let outcome = match result.outcome {
            appdsl::Outcome::Ok => 0,
            appdsl::Outcome::Http(code) => i32::from(code),
            appdsl::Outcome::Blocked { .. } => -1,
        };
        out.push(RunSignature {
            handler: req.handler.clone(),
            outcome,
            issued: result.queries.iter().map(|q| q.sql.clone()).collect(),
            emitted: result
                .queries
                .iter()
                .filter(|q| q.emitted)
                .map(|q| q.sql.clone())
                .collect(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::parse_app;
    use qlogic::Atom;

    fn calendar_schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    fn calendar_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Events (EId, Title, Kind) VALUES \
             (2, 'standup', 'work'), (3, 'party', 'fun'), (4, 'retro', 'work')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES \
             (101, 2, NULL), (101, 4, 'bring notes'), (102, 3, 'cake'), (102, 4, NULL)",
        )
        .unwrap();
        db
    }

    const APP: &str = r#"
        handler show_event(event_id) {
            let rows = sql("SELECT 1 FROM Attendance
                            WHERE UId = ?MyUId AND EId = ?event_id");
            if rows.is_empty() {
                abort(404);
            }
            emit sql("SELECT * FROM Events WHERE EId = ?event_id");
        }
    "#;

    fn workload() -> Vec<Request> {
        vec![
            Request {
                handler: "show_event".into(),
                session: vec![("MyUId".into(), Value::Int(101))],
                params: vec![("event_id".into(), Value::Int(2))],
            },
            Request {
                handler: "show_event".into(),
                session: vec![("MyUId".into(), Value::Int(101))],
                params: vec![("event_id".into(), Value::Int(4))],
            },
            Request {
                handler: "show_event".into(),
                session: vec![("MyUId".into(), Value::Int(102))],
                params: vec![("event_id".into(), Value::Int(3))],
            },
            // A denied request (404 path) also contributes a check trace.
            Request {
                handler: "show_event".into(),
                session: vec![("MyUId".into(), Value::Int(102))],
                params: vec![("event_id".into(), Value::Int(2))],
            },
        ]
    }

    #[test]
    fn collects_ground_traces() {
        let db = calendar_db();
        let app = parse_app(APP).unwrap();
        let traces = collect_traces(&db, &app, &calendar_schema(), &workload()).unwrap();
        // 3 successful runs issue 2 queries; the denied run issues 1.
        assert_eq!(traces.observed.len(), 7);
        assert_eq!(traces.signatures.len(), 4);
        assert_eq!(traces.signatures[3].outcome, 404);
        // Ground CQ: constants everywhere.
        let first = &traces.observed[0].cq;
        assert_eq!(first.atoms[0].args[0], Term::int(101));
        assert_eq!(first.atoms[0].args[1], Term::int(2));
    }

    #[test]
    fn non_generalizing_blows_up_with_workload() {
        let db = calendar_db();
        let app = parse_app(APP).unwrap();
        let traces = collect_traces(&db, &app, &calendar_schema(), &workload()).unwrap();
        let views = mine_policy(
            &traces,
            &MineOptions {
                learner: Learner::NonGeneralizing,
                ..Default::default()
            },
        );
        // One view per distinct concrete query: 4 distinct checks + 3
        // distinct fetches.
        assert!(views.len() >= 6, "got {}", views.len());
    }

    #[test]
    fn generalizing_recovers_v1_and_v2() {
        let db = calendar_db();
        let app = parse_app(APP).unwrap();
        let schema = calendar_schema();
        let traces = collect_traces(&db, &app, &schema, &workload()).unwrap();
        let views = mine_policy(&traces, &MineOptions::default());

        // Expected ground truth (Example 2.1).
        let v1 = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::param("MyUId"), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        // The mined fetch view exposes the Events columns (what the app
        // shows), not the Attendance payload — the least-privilege variant
        // of the paper's V2 (see viewgen's note on the `SELECT *` overshoot).
        let v2 = Cq::new(
            vec![Term::var("e"), Term::var("t"), Term::var("k")],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::param("MyUId"), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        let found_v1 = views.iter().any(|v| crate::score::view_equivalent(v, &v1));
        let found_v2 = views.iter().any(|v| crate::score::view_equivalent(v, &v2));
        assert!(
            found_v1,
            "missing V1 among: {}",
            views
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(
            found_v2,
            "missing V2 among: {}",
            views
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn generalizing_policy_is_small() {
        let db = calendar_db();
        let app = parse_app(APP).unwrap();
        let traces = collect_traces(&db, &app, &calendar_schema(), &workload()).unwrap();
        let views = mine_policy(&traces, &MineOptions::default());
        assert!(
            views.len() <= 3,
            "policy should converge, got {}",
            views.len()
        );
    }

    #[test]
    fn signatures_detect_behavioural_change() {
        let db = calendar_db();
        let app = parse_app(APP).unwrap();
        let reqs = workload();
        let base = run_signatures(&db, &app, &reqs).unwrap();

        // Deleting an attendance row flips a 200 into a 404.
        let mut mutated = db.clone();
        mutated
            .execute_sql("DELETE FROM Attendance WHERE UId = 101 AND EId = 2")
            .unwrap();
        let after = run_signatures(&mutated, &app, &reqs).unwrap();
        assert_ne!(base, after);

        // Mutating an irrelevant cell (Notes) changes nothing.
        let mut mutated = db.clone();
        mutated
            .execute_sql("UPDATE Attendance SET Notes = 'scrambled' WHERE UId = 101 AND EId = 2")
            .unwrap();
        let after = run_signatures(&mutated, &app, &reqs).unwrap();
        assert_eq!(base, after);
    }
}
