//! Policy extraction (§3 of the paper): generating a maximally-restrictive
//! draft policy from an existing application.
//!
//! Two pipelines are provided, mirroring §3.2:
//!
//! * **Language-based** ([`symex`] + [`viewgen`], driven by
//!   [`extract_symbolic`]) — symbolically executes the application's
//!   handlers, collecting (query, path condition) pairs and compiling them
//!   into parameterized views. Listing 1 yields exactly the views V1–V2 of
//!   Example 2.1 (see `viewgen::tests::reproduces_example_3_1`).
//! * **Language-agnostic** ([`mining`]) — runs the application black-box on
//!   a workload, observes issued queries and their answers, and learns
//!   generalized views, with the paper's three over-generalization controls:
//!   policy-size minimization ([`policy_min`]), opaque-identifier hints
//!   ([`hints`]), and active constraint discovery ([`active`]).
//!
//! [`score`] measures extracted policies against ground truth for the
//! evaluation harness.

#![warn(missing_docs)]

pub mod active;
pub mod coverage;
pub mod error;
pub mod hints;
pub mod mining;
pub mod policy_min;
pub mod score;
pub mod symex;
pub mod viewgen;

use qlogic::{Cq, RelSchema};

use appdsl::App;

pub use active::{refine, ActiveOptions, ActiveStats};
pub use coverage::{
    coverage_guided, naive_curve, signature_of, BehaviourSignature, CoverageOptions, CoverageReport,
};
pub use error::ExtractError;
pub use hints::Hints;
pub use mining::{
    collect_traces, mine_policy, run_signatures, Learner, MineOptions, Request, TraceSet,
};
pub use policy_min::drop_redundant;
pub use score::{
    score_exact, score_exact_deps, score_semantic, score_semantic_deps, view_equivalent,
    view_equivalent_deps, Score,
};
pub use symex::{explore, SymLimits, SymPath};
pub use viewgen::{views_from_paths, CandidateView, ViewGenOptions};

/// The result of a symbolic extraction run.
#[derive(Debug, Clone)]
pub struct ExtractedPolicy {
    /// The extracted views (deduplicated, minimized, unnamed).
    pub views: Vec<Cq>,
    /// Views whose guards were over-approximated (operator should review).
    pub over_approximate: usize,
    /// Total symbolic paths explored.
    pub paths_explored: usize,
}

impl ExtractedPolicy {
    /// Converts into an enforceable [`bep_core::Policy`], naming views
    /// `V1..Vn`.
    pub fn into_policy(self) -> Result<bep_core::Policy, bep_core::CoreError> {
        let mut policy = bep_core::Policy::empty();
        for (i, cq) in self.views.into_iter().enumerate() {
            policy.add_cq_view(&format!("V{}", i + 1), cq)?;
        }
        Ok(policy)
    }
}

/// Runs the full language-based pipeline over an application.
pub fn extract_symbolic(
    schema: &RelSchema,
    app: &App,
    limits: SymLimits,
    opts: &ViewGenOptions,
) -> Result<ExtractedPolicy, ExtractError> {
    let mut candidates = Vec::new();
    let mut paths_explored = 0;
    for handler in &app.handlers {
        let paths = explore(handler, limits)?;
        paths_explored += paths.len();
        candidates.extend(views_from_paths(schema, &handler.name, &paths, opts));
    }
    let candidates = viewgen::dedup_views(candidates);
    let over_approximate = candidates.iter().filter(|c| c.over_approximate).count();
    // Final cross-handler dedup on normalized equivalence.
    let mut views: Vec<Cq> = Vec::new();
    for c in candidates {
        if !views.iter().any(|v| score::view_equivalent(v, &c.cq)) {
            views.push(c.cq);
        }
    }
    Ok(ExtractedPolicy {
        views,
        over_approximate,
        paths_explored,
    })
}

/// Runs the full language-agnostic pipeline (mining + optional hints) over
/// a workload.
pub fn extract_mined(
    db: &minidb::Database,
    app: &App,
    schema: &RelSchema,
    requests: &[Request],
    options: &MineOptions,
) -> Result<Vec<Cq>, ExtractError> {
    let traces = collect_traces(db, app, schema, requests)?;
    Ok(mine_policy(&traces, options))
}
