//! Coverage-guided workload generation (§3.2.2, step 1).
//!
//! "First, it must run the application and collect query traces. Here, it is
//! crucial to achieve good coverage. … we could leverage test generation,
//! guided fuzzing, or active learning to achieve good coverage."
//!
//! This module is that test-generation loop: candidate requests stream from
//! a generator; each is executed against a scratch copy of the database, and
//! a request is kept only when it exhibits a *new behaviour signature* — a
//! new combination of handler, terminal outcome, issued-query templates, and
//! per-query emptiness flags. The loop stops when a stall budget of
//! consecutive uninformative candidates is exhausted.
//!
//! The result is a small workload that exercises every behaviour the
//! generator can reach — the input the miner actually needs — instead of a
//! large redundant one. Experiment F5 plots both curves.

use appdsl::{run_handler, App, Limits, Request};
use minidb::Database;

use crate::error::ExtractError;

/// One behaviour signature (the deduplication key of the search).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviourSignature {
    /// Handler name.
    pub handler: String,
    /// Terminal outcome (HTTP code, 0 for OK, -1 for blocked).
    pub outcome: i32,
    /// Issued templates with their emptiness flags.
    pub queries: Vec<(String, bool)>,
}

/// Options for the coverage loop.
#[derive(Debug, Clone, Copy)]
pub struct CoverageOptions {
    /// Hard cap on candidates examined.
    pub max_candidates: usize,
    /// Stop after this many consecutive candidates with no new behaviour.
    pub stall_budget: usize,
    /// Requests kept per behaviour (> 1 matters for mining: anti-unification
    /// can only generalize positions that *vary* across exemplars, so a
    /// single trace per behaviour leaves every constant pinned).
    pub exemplars: usize,
}

impl Default for CoverageOptions {
    fn default() -> CoverageOptions {
        CoverageOptions {
            max_candidates: 2_000,
            stall_budget: 100,
            exemplars: 3,
        }
    }
}

/// The outcome of a coverage-guided search.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// The selected (behaviour-distinct) requests, in discovery order.
    pub selected: Vec<Request>,
    /// Candidates examined.
    pub candidates_tried: usize,
    /// `(candidates tried, behaviours discovered)` curve points, recorded at
    /// every discovery.
    pub curve: Vec<(usize, usize)>,
}

impl CoverageReport {
    /// Distinct behaviours found.
    pub fn behaviours(&self) -> usize {
        self.curve.len()
    }
}

/// Computes a request's behaviour signature on a scratch copy of the
/// database (side effects do not leak between candidates).
pub fn signature_of(
    db: &Database,
    app: &App,
    request: &Request,
) -> Result<BehaviourSignature, ExtractError> {
    let mut scratch = db.clone();
    let handler = app
        .handler(&request.handler)
        .ok_or_else(|| ExtractError::BadWorkload(format!("no handler {}", request.handler)))?;
    let result = run_handler(
        &mut scratch,
        handler,
        &request.session,
        &request.params,
        Limits::default(),
    )?;
    let outcome = match result.outcome {
        appdsl::Outcome::Ok => 0,
        appdsl::Outcome::Http(code) => i32::from(code),
        appdsl::Outcome::Blocked { .. } => -1,
    };
    Ok(BehaviourSignature {
        handler: request.handler.clone(),
        outcome,
        queries: result
            .queries
            .iter()
            .map(|q| (q.sql.clone(), q.row_count > 0))
            .collect(),
    })
}

/// Runs the coverage-guided selection loop over a candidate stream.
///
/// `candidates` is called with the attempt index and returns the next
/// candidate request (`None` ends the stream early).
pub fn coverage_guided(
    db: &Database,
    app: &App,
    mut candidates: impl FnMut(usize) -> Option<Request>,
    opts: CoverageOptions,
) -> Result<CoverageReport, ExtractError> {
    let mut report = CoverageReport {
        selected: Vec::new(),
        candidates_tried: 0,
        curve: Vec::new(),
    };
    let mut seen: Vec<(BehaviourSignature, usize)> = Vec::new();
    let mut behaviours = 0usize;
    let mut stall = 0usize;
    let quota = opts.exemplars.max(1);
    while report.candidates_tried < opts.max_candidates && stall < opts.stall_budget {
        let Some(request) = candidates(report.candidates_tried) else {
            break;
        };
        report.candidates_tried += 1;
        let sig = signature_of(db, app, &request)?;
        match seen.iter_mut().find(|(s, _)| *s == sig) {
            Some((_, count)) if *count >= quota => {
                stall += 1;
                continue;
            }
            Some((_, count)) => {
                // Exact duplicates are dropped *before* consuming quota, so
                // a repetitive candidate stream cannot starve the miner of
                // distinct exemplars.
                if report.selected.contains(&request) {
                    stall += 1;
                    continue;
                }
                *count += 1;
                // An extra exemplar of a known behaviour: useful for the
                // miner, but it neither resets the stall clock nor counts as
                // a discovery.
                report.selected.push(request);
                stall += 1;
                continue;
            }
            None => {
                seen.push((sig, 1));
            }
        }
        behaviours += 1;
        report.selected.push(request);
        report.curve.push((report.candidates_tried, behaviours));
        stall = 0;
    }
    Ok(report)
}

/// The naive baseline: how many distinct behaviours each prefix of a fixed
/// workload exhibits. Returns `(prefix length, distinct behaviours)` points.
pub fn naive_curve(
    db: &Database,
    app: &App,
    workload: &[Request],
) -> Result<Vec<(usize, usize)>, ExtractError> {
    let mut seen: Vec<BehaviourSignature> = Vec::new();
    let mut out = Vec::with_capacity(workload.len());
    for (i, request) in workload.iter().enumerate() {
        let sig = signature_of(db, app, request)?;
        if !seen.contains(&sig) {
            seen.push(sig);
        }
        out.push((i + 1, seen.len()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::parse_app;
    use sqlir::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT)")
            .unwrap();
        db.execute_sql("CREATE TABLE Attendance (UId INT, EId INT)")
            .unwrap();
        db.execute_sql("INSERT INTO Events (EId, Title) VALUES (1, 'a'), (2, 'b')")
            .unwrap();
        db.execute_sql("INSERT INTO Attendance (UId, EId) VALUES (101, 1)")
            .unwrap();
        db
    }

    fn app() -> appdsl::App {
        parse_app(
            r#"
            handler show(event_id) {
                let ok = sql("SELECT 1 FROM Attendance
                              WHERE UId = ?MyUId AND EId = ?event_id");
                if ok.is_empty() {
                    abort(404);
                }
                emit sql("SELECT Title FROM Events WHERE EId = ?event_id");
            }
            "#,
        )
        .unwrap()
    }

    fn request(uid: i64, eid: i64) -> Request {
        Request {
            handler: "show".into(),
            session: vec![("MyUId".into(), Value::Int(uid))],
            params: vec![("event_id".into(), Value::Int(eid))],
        }
    }

    #[test]
    fn selects_one_request_per_behaviour() {
        let db = db();
        let app = app();
        // Candidates cycle through (101,1) ok / (101,2) 404 / duplicates.
        let pool = [
            request(101, 1),
            request(101, 2),
            request(101, 1),
            request(101, 2),
        ];
        let report = coverage_guided(
            &db,
            &app,
            |i| pool.get(i % pool.len()).cloned(),
            CoverageOptions {
                max_candidates: 40,
                stall_budget: 10,
                exemplars: 1,
            },
        )
        .unwrap();
        assert_eq!(report.behaviours(), 2, "ok and 404 behaviours");
        assert!(report.candidates_tried <= 40);
        assert_eq!(report.selected.len(), 2);
    }

    #[test]
    fn stall_budget_stops_early() {
        let db = db();
        let app = app();
        let report = coverage_guided(
            &db,
            &app,
            |_| Some(request(101, 1)),
            CoverageOptions {
                max_candidates: 1_000,
                stall_budget: 5,
                exemplars: 1,
            },
        )
        .unwrap();
        assert_eq!(report.behaviours(), 1);
        assert_eq!(report.candidates_tried, 6, "1 discovery + 5 stalls");
    }

    #[test]
    fn side_effects_do_not_leak() {
        // A handler with DML: each candidate runs on a scratch clone, so the
        // same candidate has a stable signature.
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE T (x INT)").unwrap();
        let app = parse_app(
            r#"
            handler add() {
                run sql("INSERT INTO T (x) VALUES (1)");
                let n = sql("SELECT x FROM T");
                emit n.count();
            }
            "#,
        )
        .unwrap();
        let req = Request {
            handler: "add".into(),
            session: vec![],
            params: vec![],
        };
        let s1 = signature_of(&db, &app, &req).unwrap();
        let s2 = signature_of(&db, &app, &req).unwrap();
        assert_eq!(s1, s2);
        assert!(db.table("T").unwrap().is_empty(), "original untouched");
    }

    #[test]
    fn naive_curve_monotone() {
        let db = db();
        let app = app();
        let workload = vec![
            request(101, 1),
            request(101, 1),
            request(101, 2),
            request(101, 2),
        ];
        let curve = naive_curve(&db, &app, &workload).unwrap();
        assert_eq!(curve, vec![(1, 1), (2, 1), (3, 2), (4, 2)]);
    }

    #[test]
    fn exemplar_quota_keeps_varied_requests() {
        let db = db();
        let app = app();
        // Distinct requests with the same behaviour (ok path, different
        // users attending event 1 would vary — here vary the request by
        // user id with same outcome via event 1 attendance for 101 only;
        // use duplicates of the 404 path with different event ids instead).
        let pool = [
            request(101, 1),
            request(101, 2),
            request(102, 1),
            request(102, 2),
        ];
        let report = coverage_guided(
            &db,
            &app,
            |i| pool.get(i).cloned(),
            CoverageOptions {
                max_candidates: 10,
                stall_budget: 10,
                exemplars: 3,
            },
        )
        .unwrap();
        // Behaviours: ok (101,1) and 404 (the rest share the 404 signature
        // shape-wise but differ in... signature includes only emptiness, so
        // (101,2)/(102,1)/(102,2) share one behaviour).
        assert_eq!(report.behaviours(), 2);
        // Exemplar quota keeps extra distinct 404 requests for the miner.
        assert_eq!(report.selected.len(), 4);
    }
}
