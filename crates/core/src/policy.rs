//! View-based data-access policies.
//!
//! A policy is a set of named, parameterized SQL views — the allow-list
//! formulation of §2.2 of the paper: a query is permitted exactly when its
//! answer is determined by the views' contents (plus the session's history).
//!
//! Views are written in SQL with named parameters (`?MyUId`); the policy
//! compiles them to conjunctive queries once, at construction time.

use minidb::Database;
use qlogic::{sql_to_ucq, Cq, RelSchema, ViewSet};
use sqlir::{parse_query, Value};

use crate::error::CoreError;

/// One view definition in a policy.
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// Unique view name.
    pub name: String,
    /// The original SQL text.
    pub sql: String,
    /// Compiled conjunctive form (parameters preserved).
    pub cq: Cq,
}

/// A data-access policy: a set of parameterized views.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    views: Vec<ViewDef>,
}

impl Policy {
    /// Creates an empty policy (which permits only trivial queries).
    pub fn empty() -> Policy {
        Policy::default()
    }

    /// Builds a policy from `(name, sql)` pairs.
    ///
    /// # Examples
    ///
    /// ```
    /// use bep_core::Policy;
    /// use qlogic::RelSchema;
    ///
    /// let mut schema = RelSchema::new();
    /// schema.add_table("Attendance", ["UId", "EId", "Notes"]);
    /// let policy = Policy::from_sql(
    ///     &schema,
    ///     &[("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId")],
    /// )
    /// .unwrap();
    /// assert_eq!(policy.len(), 1);
    /// ```
    pub fn from_sql(schema: &RelSchema, views: &[(&str, &str)]) -> Result<Policy, CoreError> {
        let mut out = Policy::empty();
        for (name, sql) in views {
            out.add_view(schema, name, sql)?;
        }
        Ok(out)
    }

    /// Adds one view from SQL text.
    ///
    /// Disjunctive views (`OR` / `IN`-list conditions) are supported by
    /// splitting into one internal view per disjunct, named `name#k`. This
    /// preserves allow-decisions for conjunctive queries: a rewriting may
    /// combine any of the disjunct views.
    pub fn add_view(&mut self, schema: &RelSchema, name: &str, sql: &str) -> Result<(), CoreError> {
        if self
            .views
            .iter()
            .any(|v| v.name == name || v.name.starts_with(&format!("{name}#")))
        {
            return Err(CoreError::DuplicateView(name.to_string()));
        }
        let parsed = parse_query(sql).map_err(|e| CoreError::Parse(e.to_string()))?;
        let ucq = sql_to_ucq(schema, &parsed)?;
        if ucq.disjuncts.len() == 1 {
            let mut cq = ucq.disjuncts.into_iter().next().expect("one disjunct");
            cq.name = Some(name.into());
            self.views.push(ViewDef {
                name: name.to_string(),
                sql: sql.to_string(),
                cq,
            });
        } else {
            for (k, mut cq) in ucq.disjuncts.into_iter().enumerate() {
                let split_name = format!("{name}#{}", k + 1);
                cq.name = Some(split_name.as_str().into());
                self.views.push(ViewDef {
                    name: split_name,
                    sql: sql.to_string(),
                    cq,
                });
            }
        }
        Ok(())
    }

    /// Adds a pre-compiled view.
    pub fn add_cq_view(&mut self, name: &str, mut cq: Cq) -> Result<(), CoreError> {
        if self.views.iter().any(|v| v.name == name) {
            return Err(CoreError::DuplicateView(name.to_string()));
        }
        cq.name = Some(name.into());
        let sql = format!("-- compiled: {cq}");
        self.views.push(ViewDef {
            name: name.to_string(),
            sql,
            cq,
        });
        Ok(())
    }

    /// The views.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// `true` if the policy has no views.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The distinct parameter names mentioned by any view (sorted).
    pub fn params(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for v in &self.views {
            for p in v.cq.params() {
                let p = p.as_str().to_string();
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
        out.sort();
        out
    }

    /// Produces the view set with parameters *kept symbolic* (for
    /// template-level decisions valid for every session).
    pub fn symbolic_views(&self) -> Result<ViewSet, CoreError> {
        Ok(ViewSet::new(
            self.views.iter().map(|v| v.cq.clone()).collect(),
        )?)
    }

    /// Produces the view set instantiated for one session's parameters.
    pub fn instantiate(&self, bindings: &[(String, Value)]) -> Result<ViewSet, CoreError> {
        Ok(ViewSet::new(
            self.views
                .iter()
                .map(|v| v.cq.instantiate(bindings))
                .collect(),
        )?)
    }

    /// The symbolic views at the given indices (policy order). Skips the
    /// name-uniqueness validation of [`Policy::symbolic_views`] — the
    /// policy enforced uniqueness when the views were added, and a subset
    /// of unique names stays unique. Out-of-range indices are ignored.
    pub fn symbolic_subset(&self, indices: &[usize]) -> ViewSet {
        ViewSet::from_prevalidated(
            indices
                .iter()
                .filter_map(|&i| self.views.get(i).map(|v| v.cq.clone()))
                .collect(),
        )
    }

    /// Instantiates only the views at the given indices for one session —
    /// the compiled-plan concrete path, which skips views a template's
    /// relation signature already ruled out. Out-of-range indices are
    /// ignored.
    pub fn instantiate_subset(&self, indices: &[usize], bindings: &[(String, Value)]) -> ViewSet {
        ViewSet::from_prevalidated(
            indices
                .iter()
                .filter_map(|&i| self.views.get(i).map(|v| v.cq.instantiate(bindings)))
                .collect(),
        )
    }
}

/// Derives a [`RelSchema`] (column names per table) from a live database —
/// the usual way applications hand their schema to the policy layer.
pub fn schema_of_database(db: &Database) -> RelSchema {
    let mut schema = RelSchema::new();
    // Two passes: tables (and keys) first so foreign keys can resolve the
    // referenced table's arity and primary key.
    for name in db.table_names() {
        if let Ok(table) = db.table(&name) {
            schema.add_table(name.clone(), table.schema.column_names());
            if !table.schema.primary_key.is_empty() {
                schema.set_key(name.clone(), table.schema.primary_key.clone());
            }
        }
    }
    for name in db.table_names() {
        if let Ok(table) = db.table(&name) {
            for fk in &table.schema.foreign_keys {
                let Ok(target) = db.table(&fk.ref_table) else {
                    continue;
                };
                let parent_cols: Vec<usize> = if fk.ref_columns.is_empty() {
                    target.schema.primary_key.clone()
                } else {
                    match target.schema.resolve_columns(&fk.ref_columns) {
                        Ok(cols) => cols,
                        Err(_) => continue,
                    }
                };
                if parent_cols.len() == fk.columns.len() {
                    schema.set_foreign_key(
                        name.clone(),
                        fk.columns.clone(),
                        fk.ref_table.clone(),
                        parent_cols,
                    );
                }
            }
        }
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    /// The calendar policy of Example 2.1.
    fn calendar_policy() -> Policy {
        Policy::from_sql(
            &schema(),
            &[
                ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
                (
                    "V2",
                    "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                     WHERE a.UId = ?MyUId",
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_paper_policy() {
        let p = calendar_policy();
        assert_eq!(p.len(), 2);
        assert_eq!(p.params(), vec!["MyUId"]);
    }

    #[test]
    fn instantiation_replaces_params() {
        let p = calendar_policy();
        let views = p.instantiate(&[("MyUId".into(), Value::Int(1))]).unwrap();
        let v1 = views.get("V1").unwrap();
        assert!(v1.params().is_empty());
        assert_eq!(v1.atoms[0].args[0], qlogic::Term::int(1));
    }

    #[test]
    fn duplicate_view_rejected() {
        let mut p = calendar_policy();
        let err = p
            .add_view(&schema(), "V1", "SELECT EId FROM Events")
            .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateView(_)));
    }

    #[test]
    fn out_of_fragment_view_rejected() {
        let mut p = Policy::empty();
        let err = p
            .add_view(&schema(), "Vx", "SELECT COUNT(*) FROM Events")
            .unwrap_err();
        assert!(matches!(err, CoreError::OutOfFragment(_)));
    }

    #[test]
    fn schema_from_database() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE T (a INT, b TEXT)").unwrap();
        let s = schema_of_database(&db);
        assert_eq!(s.columns("T").unwrap(), ["a", "b"]);
    }

    #[test]
    fn disjunctive_views_split_per_disjunct() {
        let mut p = Policy::empty();
        p.add_view(
            &schema(),
            "Vis",
            "SELECT EId, Title FROM Events WHERE Kind = 'public' OR Kind = 'promo'",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.views().iter().any(|v| v.name == "Vis#1"));

        // A query matching one disjunct is allowed.
        let checker = crate::ComplianceChecker::new(schema(), p);
        let q = parse_query("SELECT EId, Title FROM Events WHERE Kind = 'public'").unwrap();
        assert!(checker.check_template(&q).is_allowed());
        // And one outside both is not.
        let q = parse_query("SELECT EId, Title FROM Events WHERE Kind = 'secret'").unwrap();
        assert!(!checker.check_template(&q).is_allowed());
    }
}
