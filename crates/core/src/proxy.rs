//! The enforcing SQL proxy.
//!
//! [`SqlProxy`] sits between an application and its database (§2.2):
//! each `SELECT` is intercepted, decided by the [`ComplianceChecker`], and
//! either executed as-is or blocked outright — never modified. Results of
//! allowed queries are recorded into the session's [`Trace`], which later
//! decisions may rely on.
//!
//! Two caches amortize decision cost:
//!
//! * a global *template cache* of query templates proven compliant with
//!   parameters symbolic (valid for every session and history), and
//! * a per-session *concrete cache* of allowed (query, bindings) pairs —
//!   sound to reuse because compliance is monotone in the trace facts, and a
//!   session's facts only grow.
//!
//! Denials are never cached: a blocked query can become allowed as the trace
//! grows.

use std::collections::{HashMap, HashSet};

use minidb::{Database, Rows};
use parking_lot::Mutex;
use sqlir::{bind_statement, parse_statement, ParamBindings, Statement, Value};

use crate::checker::ComplianceChecker;
use crate::decision::{Decision, DecisionSource, DenyReason};
use crate::error::CoreError;
use crate::trace::{Observation, Trace, MAX_FACT_ROWS};

/// Proxy behaviour toggles (the T4/T6 ablations flip these).
#[derive(Debug, Clone, Copy)]
pub struct ProxyConfig {
    /// Use trace facts in decisions (Example 2.1 requires this).
    pub trace_aware: bool,
    /// Enable the global template cache.
    pub template_cache: bool,
    /// Enable the per-session concrete cache.
    pub session_cache: bool,
    /// Whether DML statements pass through or are blocked.
    pub allow_writes: bool,
}

impl Default for ProxyConfig {
    fn default() -> ProxyConfig {
        ProxyConfig {
            trace_aware: true,
            template_cache: true,
            session_cache: true,
            allow_writes: true,
        }
    }
}

/// Counters for reporting (T4/F3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Queries allowed.
    pub allowed: u64,
    /// Queries blocked.
    pub blocked: u64,
    /// Allowed via the template cache.
    pub template_cache_hits: u64,
    /// Allowed via a fresh template-level proof.
    pub template_proofs: u64,
    /// Allowed via the per-session cache.
    pub session_cache_hits: u64,
    /// Denied via the per-session deny cache.
    pub deny_cache_hits: u64,
    /// Allowed via a fresh concrete proof.
    pub concrete_proofs: u64,
    /// DML statements passed through.
    pub writes: u64,
}

/// One application session (a logged-in user).
#[derive(Debug, Clone)]
struct SessionState {
    bindings: Vec<(String, Value)>,
    trace: Trace,
    allowed_cache: HashSet<String>,
    /// Denials keyed by concrete query, valid while the fact count they were
    /// proved at is unchanged (more facts can flip a denial, never fewer).
    /// The stored query is the disjunct that failed, replayed on cache hits
    /// so diagnosis consumers see the real reason.
    denied_cache: HashMap<String, (usize, qlogic::Cq)>,
}

/// The response to a proxied statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyResponse {
    /// Rows of an allowed `SELECT`.
    Rows(Rows),
    /// Row count of a pass-through DML statement.
    Affected(usize),
    /// The statement was blocked.
    Blocked(DenyReason),
}

impl ProxyResponse {
    /// The rows, if this was an allowed `SELECT`.
    pub fn rows(&self) -> Option<&Rows> {
        match self {
            ProxyResponse::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// `true` unless the statement was blocked.
    pub fn is_allowed(&self) -> bool {
        !matches!(self, ProxyResponse::Blocked(_))
    }
}

/// The enforcing proxy.
pub struct SqlProxy {
    db: Database,
    checker: ComplianceChecker,
    config: ProxyConfig,
    sessions: HashMap<u64, SessionState>,
    next_session: u64,
    template_cache: Mutex<HashSet<String>>,
    stats: ProxyStats,
}

impl SqlProxy {
    /// Wraps a database with enforcement.
    pub fn new(db: Database, checker: ComplianceChecker, config: ProxyConfig) -> SqlProxy {
        SqlProxy {
            db,
            checker,
            config,
            sessions: HashMap::new(),
            next_session: 1,
            template_cache: Mutex::new(HashSet::new()),
            stats: ProxyStats::default(),
        }
    }

    /// Opens a session with the given policy-parameter bindings
    /// (e.g. `MyUId = 1`).
    pub fn begin_session(&mut self, bindings: Vec<(String, Value)>) -> u64 {
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(
            id,
            SessionState {
                bindings,
                trace: Trace::new(),
                allowed_cache: HashSet::new(),
                denied_cache: HashMap::new(),
            },
        );
        id
    }

    /// Ends a session, discarding its trace.
    pub fn end_session(&mut self, id: u64) {
        self.sessions.remove(&id);
    }

    /// Execution counters.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// The wrapped database (read access, e.g. for test assertions).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the wrapped database for out-of-band setup.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// A session's trace (for diagnosis).
    pub fn session_trace(&self, id: u64) -> Result<&Trace, CoreError> {
        self.sessions
            .get(&id)
            .map(|s| &s.trace)
            .ok_or(CoreError::NoSuchSession(id))
    }

    /// Executes a statement template with bindings under enforcement.
    ///
    /// `sql` may contain named parameters; `extra_bindings` supplies request
    /// parameters (the session's own bindings are always in scope).
    pub fn execute(
        &mut self,
        session_id: u64,
        sql: &str,
        extra_bindings: &[(String, Value)],
    ) -> Result<ProxyResponse, CoreError> {
        let stmt = match parse_statement(sql) {
            Ok(s) => s,
            Err(e) => {
                self.stats.blocked += 1;
                return Ok(ProxyResponse::Blocked(DenyReason::ParseError(
                    e.to_string(),
                )));
            }
        };
        let session = self
            .sessions
            .get(&session_id)
            .ok_or(CoreError::NoSuchSession(session_id))?;
        let mut bindings = session.bindings.clone();
        for (k, v) in extra_bindings {
            bindings.retain(|(n, _)| n != k);
            bindings.push((k.clone(), v.clone()));
        }

        match &stmt {
            Statement::Select(q) => {
                let decision = self.decide_select(session_id, sql, q, &bindings);
                match decision {
                    Decision::Allowed { .. } => {
                        // Binding failures (e.g. a parameter the caller never
                        // supplied) are the caller's malformed input, not an
                        // internal error: block, don't fail.
                        let rows = match self.run_select(&stmt, &bindings) {
                            Ok(rows) => rows,
                            Err(CoreError::Parse(msg)) => {
                                self.stats.blocked += 1;
                                return Ok(ProxyResponse::Blocked(DenyReason::ParseError(msg)));
                            }
                            Err(other) => return Err(other),
                        };
                        self.stats.allowed += 1;
                        self.record_observation(session_id, q, &bindings, &rows);
                        Ok(ProxyResponse::Rows(rows))
                    }
                    Decision::Denied { reason } => {
                        self.stats.blocked += 1;
                        Ok(ProxyResponse::Blocked(reason))
                    }
                }
            }
            _ => {
                if !self.config.allow_writes {
                    self.stats.blocked += 1;
                    return Ok(ProxyResponse::Blocked(DenyReason::WriteBlocked));
                }
                self.stats.writes += 1;
                let bound = match bind_to_statement(&stmt, &bindings) {
                    Ok(b) => b,
                    Err(CoreError::Parse(msg)) => {
                        self.stats.writes -= 1;
                        self.stats.blocked += 1;
                        return Ok(ProxyResponse::Blocked(DenyReason::ParseError(msg)));
                    }
                    Err(other) => return Err(other),
                };
                match self.db.execute(&bound)? {
                    minidb::ExecResult::Affected(n) => Ok(ProxyResponse::Affected(n)),
                    minidb::ExecResult::Created => Ok(ProxyResponse::Affected(0)),
                    minidb::ExecResult::Rows(r) => Ok(ProxyResponse::Rows(r)),
                }
            }
        }
    }

    /// Executes without any enforcement (the F3 baseline).
    pub fn execute_unchecked(
        &mut self,
        sql: &str,
        bindings: &[(String, Value)],
    ) -> Result<ProxyResponse, CoreError> {
        let stmt = parse_statement(sql).map_err(|e| CoreError::Parse(e.to_string()))?;
        let bound = bind_to_statement(&stmt, bindings)?;
        match self.db.execute(&bound)? {
            minidb::ExecResult::Rows(r) => Ok(ProxyResponse::Rows(r)),
            minidb::ExecResult::Affected(n) => Ok(ProxyResponse::Affected(n)),
            minidb::ExecResult::Created => Ok(ProxyResponse::Affected(0)),
        }
    }

    fn decide_select(
        &mut self,
        session_id: u64,
        sql: &str,
        q: &sqlir::Query,
        bindings: &[(String, Value)],
    ) -> Decision {
        // 1. Template cache.
        if self.config.template_cache && self.template_cache.lock().contains(sql) {
            self.stats.template_cache_hits += 1;
            return Decision::Allowed {
                source: DecisionSource::TemplateCache,
                rewritings: Vec::new(),
            };
        }
        // 2. Fresh template-level proof (session-independent).
        if self.config.template_cache {
            if let Decision::Allowed { rewritings, .. } = self.checker.check_template(q) {
                self.template_cache.lock().insert(sql.to_string());
                self.stats.template_proofs += 1;
                return Decision::Allowed {
                    source: DecisionSource::TemplateProof,
                    rewritings,
                };
            }
        }
        // 3. Per-session concrete caches (allowals are monotone in the
        //    trace; denials stay valid while the fact set is unchanged).
        let concrete_key = concrete_cache_key(sql, bindings);
        let session = self
            .sessions
            .get(&session_id)
            .expect("session checked by caller");
        if self.config.session_cache && session.allowed_cache.contains(&concrete_key) {
            self.stats.session_cache_hits += 1;
            return Decision::Allowed {
                source: DecisionSource::SessionCache,
                rewritings: Vec::new(),
            };
        }
        let fact_count = session.trace.facts().len();
        if self.config.session_cache {
            if let Some((at, query)) = session.denied_cache.get(&concrete_key) {
                if *at == fact_count {
                    self.stats.deny_cache_hits += 1;
                    return Decision::Denied {
                        reason: DenyReason::NotDetermined {
                            query: query.clone(),
                        },
                    };
                }
            }
        }
        // 4. Fresh concrete proof.
        let empty = Trace::new();
        let trace: &Trace = if self.config.trace_aware {
            &session.trace
        } else {
            &empty
        };
        let decision = self.checker.check_concrete(q, bindings, trace);
        if self.config.session_cache {
            let session = self.sessions.get_mut(&session_id).expect("session exists");
            if decision.is_allowed() {
                session.allowed_cache.insert(concrete_key);
            } else if let Decision::Denied {
                reason: DenyReason::NotDetermined { query },
            } = &decision
            {
                session
                    .denied_cache
                    .insert(concrete_key, (fact_count, query.clone()));
            }
        }
        if decision.is_allowed() {
            self.stats.concrete_proofs += 1;
        }
        decision
    }

    fn run_select(
        &self,
        stmt: &Statement,
        bindings: &[(String, Value)],
    ) -> Result<Rows, CoreError> {
        let bound = bind_to_statement(stmt, bindings)?;
        match &bound {
            Statement::Select(q) => Ok(self.db.query(q)?),
            _ => Err(CoreError::Internal("run_select on non-select".into())),
        }
    }

    fn record_observation(
        &mut self,
        session_id: u64,
        q: &sqlir::Query,
        bindings: &[(String, Value)],
        rows: &Rows,
    ) {
        if !self.config.trace_aware {
            return;
        }
        // Only single-disjunct queries contribute facts: a union's non-empty
        // answer doesn't say which disjunct held.
        let Ok(ucq) = self.checker.translate(q) else {
            return;
        };
        if ucq.disjuncts.len() != 1 {
            return;
        }
        let cq = ucq.disjuncts[0].instantiate(bindings);
        if !cq.params().is_empty() {
            return; // unbound parameters: nothing definite to record
        }
        let obs = Observation::from_rows(&rows.rows, MAX_FACT_ROWS);
        if let Some(session) = self.sessions.get_mut(&session_id) {
            session.trace.record(cq, obs);
        }
    }
}

fn bind_to_statement(
    stmt: &Statement,
    bindings: &[(String, Value)],
) -> Result<Statement, CoreError> {
    let mut pb = ParamBindings::new();
    for (k, v) in bindings {
        pb.set(k.clone(), v.clone());
    }
    bind_statement(stmt, &pb).map_err(|e| CoreError::Parse(e.to_string()))
}

fn concrete_cache_key(sql: &str, bindings: &[(String, Value)]) -> String {
    use std::fmt::Write as _;
    let mut key = String::with_capacity(sql.len() + 32);
    key.push_str(sql);
    key.push('\u{1}');
    let mut sorted: Vec<_> = bindings.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for (k, v) in sorted {
        let _ = write!(key, "{k}={};", v.to_sql_literal());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schema_of_database, Policy};

    fn calendar_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), \
             (3, 'party', 'fun')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')",
        )
        .unwrap();
        db
    }

    fn proxy(config: ProxyConfig) -> SqlProxy {
        let db = calendar_db();
        let schema = schema_of_database(&db);
        let policy = Policy::from_sql(
            &schema,
            &[
                ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
                (
                    "V2",
                    "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                     WHERE a.UId = ?MyUId",
                ),
            ],
        )
        .unwrap();
        SqlProxy::new(db, ComplianceChecker::new(schema, policy), config)
    }

    #[test]
    fn listing_1_flow_allowed() {
        let mut p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);

        // Q1: the access check from Listing 1.
        let r1 = p
            .execute(
                s,
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(r1.is_allowed());
        assert_eq!(r1.rows().unwrap().len(), 1);

        // Q2: fetch the event, allowed thanks to the trace.
        let r2 = p
            .execute(
                s,
                "SELECT * FROM Events WHERE EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(r2.is_allowed(), "{r2:?}");
        assert_eq!(r2.rows().unwrap().rows[0][1], Value::str("standup"));
    }

    #[test]
    fn q2_first_is_blocked() {
        let mut p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p
            .execute(
                s,
                "SELECT * FROM Events WHERE EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(matches!(
            r,
            ProxyResponse::Blocked(DenyReason::NotDetermined { .. })
        ));
    }

    #[test]
    fn trace_unaware_proxy_blocks_q2_even_after_q1() {
        let mut config = ProxyConfig::default();
        config.trace_aware = false;
        let mut p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();
        let r = p
            .execute(
                s,
                "SELECT * FROM Events WHERE EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(!r.is_allowed(), "without trace awareness Q2 stays blocked");
    }

    #[test]
    fn template_cache_serves_repeats() {
        let mut p = proxy(ProxyConfig::default());
        let s1 = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let s2 = p.begin_session(vec![("MyUId".into(), Value::Int(2))]);
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        p.execute(s1, sql, &[]).unwrap();
        p.execute(s2, sql, &[]).unwrap();
        p.execute(s1, sql, &[]).unwrap();
        let stats = p.stats();
        assert_eq!(stats.template_proofs, 1);
        assert_eq!(stats.template_cache_hits, 2);
        assert_eq!(stats.allowed, 3);
    }

    #[test]
    fn session_cache_serves_concrete_repeats() {
        let mut config = ProxyConfig::default();
        config.template_cache = false;
        let mut p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sql = "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2";
        p.execute(s, sql, &[]).unwrap();
        p.execute(s, sql, &[]).unwrap();
        let stats = p.stats();
        assert_eq!(stats.concrete_proofs, 1);
        assert_eq!(stats.session_cache_hits, 1);
    }

    #[test]
    fn sessions_are_isolated() {
        let mut p = proxy(ProxyConfig::default());
        let s1 = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let s2 = p.begin_session(vec![("MyUId".into(), Value::Int(2))]);
        // Session 1 probes and learns about event 2.
        p.execute(
            s1,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
            &[],
        )
        .unwrap();
        // Session 2 must NOT benefit from session 1's trace.
        let r = p
            .execute(s2, "SELECT * FROM Events WHERE EId = 2", &[])
            .unwrap();
        assert!(!r.is_allowed());
    }

    #[test]
    fn empty_probe_does_not_unlock() {
        let mut p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        // User 1 does NOT attend event 3; the probe returns empty.
        let r1 = p
            .execute(
                s,
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 3",
                &[],
            )
            .unwrap();
        assert!(r1.is_allowed());
        assert!(r1.rows().unwrap().is_empty());
        // Fetching event 3 must remain blocked.
        let r2 = p
            .execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
            .unwrap();
        assert!(!r2.is_allowed(), "an empty probe must not unlock the event");
    }

    #[test]
    fn writes_pass_through_or_block_by_config() {
        let mut p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p
            .execute(
                s,
                "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 3, NULL)",
                &[],
            )
            .unwrap();
        assert_eq!(r, ProxyResponse::Affected(1));

        let mut config = ProxyConfig::default();
        config.allow_writes = false;
        let mut p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p
            .execute(s, "DELETE FROM Events WHERE EId = 2", &[])
            .unwrap();
        assert_eq!(r, ProxyResponse::Blocked(DenyReason::WriteBlocked));
    }

    #[test]
    fn unparseable_sql_is_blocked_not_error() {
        let mut p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p.execute(s, "SELEC whoops", &[]).unwrap();
        assert!(matches!(
            r,
            ProxyResponse::Blocked(DenyReason::ParseError(_))
        ));
    }

    #[test]
    fn stats_count_blocked() {
        let mut p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
            .unwrap();
        assert_eq!(p.stats().blocked, 1);
    }

    #[test]
    fn deny_cache_serves_repeats_and_invalidates_on_new_facts() {
        let mut config = ProxyConfig::default();
        config.template_cache = false;
        let mut p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let fetch = "SELECT * FROM Events WHERE EId = 2";

        // Two denials: the second is served from the deny cache.
        assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
        assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
        assert_eq!(p.stats().deny_cache_hits, 1);

        // Learning a new fact invalidates the cached denial: the probe
        // returns a row, and the fetch flips to allowed.
        let probe = "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2";
        assert!(p.execute(s, probe, &[]).unwrap().is_allowed());
        assert!(p.execute(s, fetch, &[]).unwrap().is_allowed());
    }
}
