//! The enforcing SQL proxy.
//!
//! [`SqlProxy`] sits between an application and its database (§2.2):
//! each `SELECT` is intercepted, decided by the [`ComplianceChecker`], and
//! either executed as-is or blocked outright — never modified. Results of
//! allowed queries are recorded into the session's [`Trace`], which later
//! decisions may rely on.
//!
//! # Compiled plans and caching
//!
//! The proxy's unit of amortization is the *query template*: application
//! code issues a handful of distinct SQL strings with varying bindings, so
//! everything about a template that does not depend on the session is done
//! once and reused. A [`TemplatePlan`] (see [`crate::plan`]) captures the
//! parsed statement, the UCQ translation, the per-disjunct candidate views
//! that survive the relation-signature pre-filter, and the symbolic
//! verdict itself with its rewriting certificates. Plans live in a sharded,
//! bounded [`PlanCache`] keyed by the 64-bit template hash; a warm request
//! performs no tokenizing, no parsing, no translation, and allocates no
//! `String` for any cache key.
//!
//! On top of the plan, the decision caches amortize proof cost:
//!
//! * the plan's *template verdict*: `Allowed` plays the role of the old
//!   global template cache (proven with parameters symbolic, valid for
//!   every session and history); `Undecidable` plays the role of the old
//!   negative template cache, so the expensive symbolic proof runs at most
//!   once per template (the plan cache's `OnceLock` cells make that
//!   literal: racing misses block on the winner instead of proving twice).
//!   Even with this tier *off* (the T10 "no-caches" ablation), an
//!   `Allowed` verdict still pays: the concrete proof replays the plan's
//!   instantiated certificate through a verification-only check before
//!   falling back to the full rewriting search — every request still runs
//!   a fresh proof over its own facts, but the candidate enumeration is
//!   amortized into the plan. And
//! * a per-session *concrete cache* of allowed (template, bindings) pairs,
//!   keyed by the allocation-free `ConcreteKey` fingerprint — sound to
//!   reuse because compliance is monotone in the trace facts, and a
//!   session's facts only grow. Concrete *denials* are cached too, stamped
//!   with the fact count they were proved at: new facts can flip a denial
//!   (never the reverse), so a cached denial is served only while the
//!   session's fact count is unchanged.
//!
//! [`ProxyConfig::plan_cache`] = false disables plan compilation entirely
//! and routes every request through the naive path (parse, translate, and
//! prove from scratch via [`ComplianceChecker`] — with *no* template
//! memoization, so `template_cache` = true then means "attempt a fresh
//! symbolic proof per request"). That path is the measured baseline of the
//! T10 bench and the oracle of the differential tests: planned and naive
//! decisions are asserted identical.
//!
//! # Concurrency model
//!
//! The whole decision path takes `&self`, and `SqlProxy` is `Send + Sync`:
//! sessions are decided in parallel from any number of threads.
//!
//! * **Checker** — [`ComplianceChecker`] is immutable after construction and
//!   shared freely; proofs run without any lock held by other sessions.
//! * **Sessions** — session state lives in `SESSION_SHARDS` shards of
//!   `RwLock<HashMap<u64, SessionState>>`; the shard is chosen by hashing
//!   the session id. A decision holds its own shard's *read* lock while it
//!   consults the session caches and runs a concrete proof against the
//!   trace, so sessions in different shards never contend, and sessions in
//!   the same shard contend only with that shard's writers (cache
//!   write-back and trace recording, both brief).
//! * **Plan cache** — sharded by template hash; the steady-state path is a
//!   single shard read lock plus one string *comparison*. A miss publishes
//!   an empty `OnceLock` cell under a brief write lock (double-checked, so
//!   concurrent misses get the same cell) and compiles outside all locks:
//!   the template is parsed/translated/proved exactly once no matter how
//!   many threads race, and no write lock is ever held across a proof.
//! * **Statistics** — per-field atomic counters registered in the proxy's
//!   [`MetricsRegistry`], so [`SqlProxy::stats`] and the Prometheus
//!   exposition read the very same atomics; see [`SqlProxy::stats`] for
//!   the snapshot-consistency contract.
//! * **Provenance** — when [`ProxyConfig::observe`] is set, each `execute`
//!   laps a [`PhaseTimer`] across the decision phases and publishes one
//!   [`DecisionEvent`] into the lock-free [`EventJournal`]; neither takes
//!   a lock on the decision path.
//! * **Database** — the wrapped [`minidb::Database`] sits behind an
//!   `RwLock`: allowed `SELECT`s share the read lock, DML takes the write
//!   lock.
//!
//! ## Soundness under concurrency
//!
//! *Template verdict*: the symbolic proof depends only on the query
//! template and the policy, and the policy is immutable for the proxy's
//! lifetime — a compiled `Undecidable` is permanent, so never re-proving
//! it cannot change any decision, only its cost. Plan *eviction* is
//! likewise cost-only: recompiling a template reproduces the identical
//! plan, and session caches keyed by its hash stay valid.
//!
//! *Deny cache*: a denial is recorded together with the fact count observed
//! when it was proved, and is replayed only while the session's fact count
//! still equals that value. Facts are append-only, so an equal count means
//! the identical fact set, i.e. the identical proof obligation. If a
//! concurrent request on the same session records new facts between a
//! denial's proof and its write-back, the stored count is already stale and
//! the entry is simply never served — a wasted slot, never a wrong answer.
//!
//! *Allow cache*: compliance is monotone in the trace facts and facts only
//! grow, so an allow proved under any earlier fact set stays valid forever;
//! write-back needs no validity stamp.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use minidb::{Database, Rows};
use parking_lot::RwLock;
use sqlir::{bind_statement, parse_statement, ParamBindings, Statement, Value};

use crate::cache::BoundedCache;
use crate::checker::ComplianceChecker;
use crate::classify::{AccessMode, StatementClass};
use crate::decision::{Decision, DecisionSource, DenyReason};
use crate::error::CoreError;
use crate::exemplar::ExemplarStore;
use crate::latency::{LatencyHistogram, LatencySnapshot};
use crate::mem::{bindings_heap_bytes, cq_heap_bytes, HeapUsage};
use crate::obs::{
    template_hash, CacheTier, Counter, DecisionEvent, EventJournal, Gauge, MemoryGauges,
    MetricsRegistry, Phase, PhaseTimer, Verdict, PHASE_COUNT,
};
use crate::plan::{compile_plan, PlanBody, PlanCache, SelectPlan, TemplatePlan, TemplateVerdict};
use crate::snapshot::{SnapshotError, SnapshotLoadReport, SnapshotSaveReport};
use crate::span::{self, SpanKind, SpanSummary};
use crate::trace::{Observation, Trace, MAX_FACT_ROWS};
use crate::write::{WriteTemplate, WriteTemplateVerdict};

/// Number of session shards. Sixteen keeps per-shard contention negligible
/// for hundreds of concurrent sessions while costing one cache line of
/// locks; must be a power of two (the shard index is the top bits of a
/// Fibonacci hash).
const SESSION_SHARDS: usize = 16;

/// Proxy behaviour toggles (the T4/T6/T7 ablations flip these).
#[derive(Debug, Clone, Copy)]
pub struct ProxyConfig {
    /// Use trace facts in decisions (Example 2.1 requires this).
    pub trace_aware: bool,
    /// Enable the global template cache (and its negative side).
    pub template_cache: bool,
    /// Enable the per-session concrete cache.
    pub session_cache: bool,
    /// Whether DML statements pass through or are blocked.
    pub allow_writes: bool,
    /// Enforce mutation policies: an `INSERT`/`UPDATE`/`DELETE` is allowed
    /// iff its written rows are contained in a policy view (see
    /// [`crate::write`]). Off (the default, pending migration), mutations
    /// pass through as before and are counted as
    /// `bep_write_decisions_total{verdict="passthrough"}`.
    pub enforce_writes: bool,
    /// Compile and cache template plans. Off, every request parses,
    /// translates, and proves from scratch (the naive baseline; template
    /// verdicts are then *never* memoized).
    pub plan_cache: bool,
    /// Compiled templates retained before FIFO eviction.
    pub plan_capacity: usize,
    /// Capture decision provenance: per-phase timings, per-phase latency
    /// histograms, and one [`DecisionEvent`] per `execute` into the
    /// journal. The T9 bench sweeps this off to price the enabled path.
    pub observe: bool,
    /// Decision events the journal retains before evicting the oldest.
    pub journal_capacity: usize,
    /// Collect a hierarchical span tree per decision (requires
    /// [`observe`](Self::observe)): solver micro-spans with per-span
    /// counter attribution, summarized onto every [`DecisionEvent`]. The
    /// T14 bench prices this; off, the hooks cost one thread-local read.
    pub spans: bool,
    /// Capture every Nth decision's *full* span tree (0 = never). The
    /// compact summary rides on every event regardless; this governs only
    /// the arena clone.
    pub span_sample_every: u64,
    /// Slowest decisions retained per template with their full span trees
    /// (0 disables the exemplar store).
    pub exemplars_per_template: usize,
    /// Compact session traces after each recording: drop entries and facts
    /// homomorphically implied by what remains. Decision-invisible (the
    /// fact set stays logically equivalent; see `Trace::compact`) and keeps
    /// session state O(distinct information) instead of O(requests).
    pub compaction: bool,
    /// Byte budget for resident compiled plans (0 = count-bounded only by
    /// [`plan_capacity`](Self::plan_capacity)). Enforced with SIEVE
    /// eviction, reported via `bep_cache_evictions_total{tier="plan"}`.
    pub plan_budget_bytes: usize,
    /// Per-session byte budget for the concrete allow/deny caches, split
    /// evenly between the two tiers (0 = unbounded). Evictions are counted
    /// in `bep_cache_evictions_total{tier="session-allow"|"session-deny"}`.
    pub session_cache_budget_bytes: usize,
}

impl Default for ProxyConfig {
    fn default() -> ProxyConfig {
        ProxyConfig {
            trace_aware: true,
            template_cache: true,
            session_cache: true,
            allow_writes: true,
            enforce_writes: false,
            plan_cache: true,
            plan_capacity: 1024,
            observe: true,
            journal_capacity: 4096,
            spans: false,
            span_sample_every: 0,
            exemplars_per_template: 0,
            compaction: true,
            // Generous defaults: bounded (the million-user north star needs
            // every tier capped) but far above what steady workloads use,
            // so eviction only kicks in under genuine pressure.
            plan_budget_bytes: 32 << 20,
            session_cache_budget_bytes: 1 << 20,
        }
    }
}

/// Counters for reporting (T4/F3/T7). A value of this type is a snapshot;
/// the live counters are atomics inside the proxy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Queries allowed.
    pub allowed: u64,
    /// Queries blocked.
    pub blocked: u64,
    /// Allowed via the template cache.
    pub template_cache_hits: u64,
    /// Allowed via a fresh template-level proof.
    pub template_proofs: u64,
    /// Template-level proof skipped because the template is known
    /// template-undecidable (negative cache).
    pub template_negative_hits: u64,
    /// Allowed via the per-session cache.
    pub session_cache_hits: u64,
    /// Denied via the per-session deny cache.
    pub deny_cache_hits: u64,
    /// Allowed via a fresh concrete proof.
    pub concrete_proofs: u64,
    /// DML statements passed through.
    pub writes: u64,
    /// Write decisions allowed by an enforcement proof.
    pub write_allowed: u64,
    /// Write decisions blocked (coverage, config, or read-only session).
    pub write_blocked: u64,
    /// Write (and DDL) statements executed without coverage enforcement.
    pub write_passthrough: u64,
    /// Statements run through [`SqlProxy::execute_unchecked`] — traffic
    /// invisible to enforcement, audited during migration.
    pub unchecked_statements: u64,
    /// Per-decision latency of [`SqlProxy::execute`], from the lock-free
    /// log-bucketed histogram (the single source both the benches and the
    /// server's `Stats` response report percentiles from).
    pub latency: LatencySnapshot,
}

/// The live, thread-safe counters behind [`ProxyStats`]. Every counter is
/// a series in the proxy's [`MetricsRegistry`], so `stats()` snapshots and
/// the metrics exposition read the very same atomics — there is no second
/// bookkeeping path to drift.
struct AtomicProxyStats {
    allowed: Arc<Counter>,
    blocked: Arc<Counter>,
    template_cache_hits: Arc<Counter>,
    template_proofs: Arc<Counter>,
    template_negative_hits: Arc<Counter>,
    session_cache_hits: Arc<Counter>,
    deny_cache_hits: Arc<Counter>,
    concrete_proofs: Arc<Counter>,
    writes: Arc<Counter>,
    write_allowed: Arc<Counter>,
    write_blocked: Arc<Counter>,
    write_passthrough: Arc<Counter>,
    unchecked_statements: Arc<Counter>,
    latency: Arc<LatencyHistogram>,
}

impl AtomicProxyStats {
    fn register(r: &MetricsRegistry) -> AtomicProxyStats {
        let decisions = "Decisions by final verdict";
        let hits = "Cache hits by the tier that short-circuited the work";
        let proofs = "Fresh proofs by kind";
        AtomicProxyStats {
            allowed: r.counter("bep_decisions_total", decisions, &[("decision", "allowed")]),
            blocked: r.counter("bep_decisions_total", decisions, &[("decision", "blocked")]),
            template_cache_hits: r.counter("bep_cache_hits_total", hits, &[("tier", "template")]),
            template_proofs: r.counter("bep_proofs_total", proofs, &[("kind", "template")]),
            template_negative_hits: r.counter(
                "bep_cache_hits_total",
                hits,
                &[("tier", "negative-template")],
            ),
            session_cache_hits: r.counter("bep_cache_hits_total", hits, &[("tier", "session")]),
            deny_cache_hits: r.counter("bep_cache_hits_total", hits, &[("tier", "deny")]),
            concrete_proofs: r.counter("bep_proofs_total", proofs, &[("kind", "concrete")]),
            writes: r.counter("bep_writes_total", "DML statements passed through", &[]),
            write_allowed: r.counter(
                "bep_write_decisions_total",
                "Write decisions by verdict",
                &[("verdict", "allowed")],
            ),
            write_blocked: r.counter(
                "bep_write_decisions_total",
                "Write decisions by verdict",
                &[("verdict", "blocked")],
            ),
            write_passthrough: r.counter(
                "bep_write_decisions_total",
                "Write decisions by verdict",
                &[("verdict", "passthrough")],
            ),
            unchecked_statements: r.counter(
                "bep_unchecked_statements_total",
                "Statements executed with enforcement bypassed",
                &[],
            ),
            latency: r.histogram(
                "bep_decision_latency_ns",
                "End-to-end execute latency in nanoseconds",
                &[],
            ),
        }
    }

    fn load(&self) -> ProxyStats {
        ProxyStats {
            allowed: self.allowed.get(),
            blocked: self.blocked.get(),
            template_cache_hits: self.template_cache_hits.get(),
            template_proofs: self.template_proofs.get(),
            template_negative_hits: self.template_negative_hits.get(),
            session_cache_hits: self.session_cache_hits.get(),
            deny_cache_hits: self.deny_cache_hits.get(),
            concrete_proofs: self.concrete_proofs.get(),
            writes: self.writes.get(),
            write_allowed: self.write_allowed.get(),
            write_blocked: self.write_blocked.get(),
            write_passthrough: self.write_passthrough.get(),
            unchecked_statements: self.unchecked_statements.get(),
            latency: self.latency.snapshot(),
        }
    }

    /// A snapshot that is internally consistent whenever the counters are
    /// momentarily quiescent: all fields are re-read until two consecutive
    /// passes agree (bounded retries; the last pass is returned if traffic
    /// never pauses, which is still field-wise exact and monotone).
    fn snapshot(&self) -> ProxyStats {
        let mut prev = self.load();
        for _ in 0..4 {
            let next = self.load();
            if next == prev {
                return next;
            }
            prev = next;
        }
        prev
    }
}

/// Scratch provenance threaded through one `execute`: the phase timer
/// (present only when observing, so the disabled path costs one branch)
/// plus the cache tier and negative-cache flag the decision path fills in.
struct Prov {
    timer: Option<PhaseTimer>,
    tier: CacheTier,
    negative_template_hit: bool,
}

impl Prov {
    fn new(observe: bool) -> Prov {
        Prov {
            timer: observe.then(PhaseTimer::start),
            tier: CacheTier::Uncached,
            negative_template_hit: false,
        }
    }

    /// Attributes the time since the previous boundary to `phase`
    /// (no-op when not observing).
    fn lap(&mut self, phase: Phase) {
        if let Some(t) = &mut self.timer {
            t.lap(phase);
        }
    }
}

/// One application session (a logged-in user).
#[derive(Debug, Clone)]
struct SessionState {
    /// Policy-parameter bindings, shared so `execute` can use them without
    /// copying (sessions never rebind; the `Arc` is cloned per request).
    bindings: Arc<Vec<(String, Value)>>,
    /// What the session may do at all (read-only sessions get every
    /// mutation denied before policy coverage is considered).
    mode: AccessMode,
    trace: Trace,
    /// Allowals keyed by concrete fingerprint; SIEVE-bounded. A hit is a
    /// visited-bit store, so it works under the shard *read* lock.
    allowed_cache: BoundedCache<ConcreteKey, ()>,
    /// Denials keyed by concrete fingerprint, stamped with the trace's
    /// fact-set *version* they were proved at (more facts can flip a
    /// denial; compaction changes the version too, so a stale stamp is
    /// never served — a plain fact count would be ambiguous once compaction
    /// can shrink the set). The stored query is the disjunct that failed,
    /// replayed on cache hits so diagnosis consumers see the real reason.
    /// Its `Cq` byte weight is accounted at insert, so `HeapUsage` and the
    /// byte budget both see it. The [`DenyKind`] replays the right
    /// [`DenyReason`] variant: a cached read denial is `NotDetermined`, a
    /// cached write denial is `WriteNotCovered`.
    denied_cache: BoundedCache<ConcreteKey, (u64, DenyKind, qlogic::Cq)>,
}

/// Which pipeline a cached denial came from (selects the replayed
/// [`DenyReason`] variant on deny-cache hits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DenyKind {
    /// Read path: replayed as [`DenyReason::NotDetermined`].
    Read,
    /// Write path: replayed as [`DenyReason::WriteNotCovered`].
    Write,
}

/// A session's policy bindings (shared by `Arc`) plus its access mode.
type SessionMeta = (Arc<Vec<(String, Value)>>, AccessMode);

/// Wall-clock seconds since the Unix epoch (for the snapshot-age gauge).
fn epoch_seconds() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Accounted weight of one allow-cache entry.
fn allow_entry_bytes() -> usize {
    std::mem::size_of::<ConcreteKey>()
}

/// Accounted weight of one deny-cache entry: the slot plus the stored
/// counterexample CQ's heap bytes (interned-id vectors — invisible to a
/// capacity-only walk, so it must ride on the entry weight).
fn deny_entry_bytes(query: &qlogic::Cq) -> usize {
    std::mem::size_of::<(ConcreteKey, (u64, DenyKind, qlogic::Cq))>() + cq_heap_bytes(query)
}

/// Heap bytes owned by one session's state: the binding list (counted at
/// this holder even though it is shared by `Arc` — see [`crate::mem`]),
/// the trace, and both concrete caches (structural tables plus accounted
/// entry weights, deny-cache counterexample CQs included).
fn session_state_bytes(state: &SessionState) -> usize {
    bindings_heap_bytes(&state.bindings)
        + state.trace.heap_bytes()
        + state.allowed_cache.heap_bytes()
        + state.denied_cache.heap_bytes()
}

/// Fingerprint of one (template, bindings) pair — the session-cache key.
///
/// Three `u64`s, computed with zero allocation: the template hash, the
/// binding count, and a commutative digest of the bindings (sum and
/// sum-of-squares of each pair's FNV-1a hash), so binding *order* never
/// splits cache entries — the old string key sorted by name for the same
/// reason. The key is probabilistic where the old string key was exact,
/// but it is scoped to one session *and* one exact template hash: a wrong
/// cache answer needs two binding sets of the same session and template to
/// collide on both 64-bit digests, and the worst consequence is replaying
/// that session's own earlier decision for the template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConcreteKey {
    template: u64,
    len: u64,
    sum: u64,
    sum_sq: u64,
}

/// FNV-1a over one binding: name bytes, a separator, the value's
/// discriminant, then the value's bytes. No intermediate `String`.
fn binding_hash(name: &str, v: &Value) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let step = |h: &mut u64, b: u8| {
        *h ^= b as u64;
        *h = h.wrapping_mul(PRIME);
    };
    for &b in name.as_bytes() {
        step(&mut h, b);
    }
    step(&mut h, 0);
    match v {
        Value::Null => step(&mut h, 0),
        Value::Int(i) => {
            step(&mut h, 1);
            for b in i.to_le_bytes() {
                step(&mut h, b);
            }
        }
        Value::Str(s) => {
            step(&mut h, 2);
            for &b in s.as_bytes() {
                step(&mut h, b);
            }
        }
        Value::Bool(b) => {
            step(&mut h, 3);
            step(&mut h, *b as u8);
        }
    }
    h
}

impl ConcreteKey {
    fn new(template: u64, bindings: &[(String, Value)]) -> ConcreteKey {
        let mut sum = 0u64;
        let mut sum_sq = 0u64;
        for (k, v) in bindings {
            let h = binding_hash(k, v);
            sum = sum.wrapping_add(h);
            sum_sq = sum_sq.wrapping_add(h.wrapping_mul(h));
        }
        ConcreteKey {
            template,
            len: bindings.len() as u64,
            sum,
            sum_sq,
        }
    }
}

/// The response to a proxied statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ProxyResponse {
    /// Rows of an allowed `SELECT`.
    Rows(Rows),
    /// Row count of a pass-through DML statement.
    Affected(usize),
    /// The statement was blocked.
    Blocked(DenyReason),
}

impl ProxyResponse {
    /// The rows, if this was an allowed `SELECT`.
    pub fn rows(&self) -> Option<&Rows> {
        match self {
            ProxyResponse::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// `true` unless the statement was blocked.
    pub fn is_allowed(&self) -> bool {
        !matches!(self, ProxyResponse::Blocked(_))
    }
}

/// One statement of a cross-connection batch: either raw SQL (the server's
/// `execute` frame) or an already compiled plan (`execute_prepared`).
#[derive(Debug, Clone)]
pub enum BatchStmt {
    /// A SQL template; the batch amortizes its plan-cache probe across
    /// every occurrence of the same template in the batch.
    Sql(String),
    /// A pre-compiled plan (no lookup at all).
    Plan(Arc<TemplatePlan>),
}

/// One request of a cross-connection batch handed to
/// [`SqlProxy::execute_batch`]. Requests from *different* sessions may be
/// mixed freely; requests of the same session are decided in batch order,
/// exactly as if issued sequentially.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Session to execute under.
    pub session: u64,
    /// The statement.
    pub stmt: BatchStmt,
    /// Request parameters.
    pub bindings: Vec<(String, Value)>,
}

/// The enforcing proxy. `Send + Sync`: share it across worker threads with
/// `Arc` or scoped borrows and call [`SqlProxy::execute`] concurrently.
pub struct SqlProxy {
    db: RwLock<Database>,
    checker: ComplianceChecker,
    config: ProxyConfig,
    shards: Vec<RwLock<HashMap<u64, SessionState>>>,
    next_session: AtomicU64,
    plans: PlanCache,
    stats: AtomicProxyStats,
    registry: MetricsRegistry,
    journal: EventJournal,
    /// Per-phase latency histograms, indexed by [`Phase`] (`as usize`);
    /// series of the `bep_phase_latency_ns` family.
    phases: [Arc<LatencyHistogram>; PHASE_COUNT],
    /// Point-in-time gauges refreshed by [`SqlProxy::metrics_text`].
    sessions_gauge: Arc<Gauge>,
    journal_published: Arc<Gauge>,
    journal_evicted: Arc<Gauge>,
    /// Cross-connection batches executed via [`SqlProxy::execute_batch`].
    batches: Arc<Counter>,
    /// Requests carried by those batches.
    batch_requests: Arc<Counter>,
    /// Process RSS/VmHWM gauges refreshed by [`SqlProxy::metrics_text`].
    memory: MemoryGauges,
    /// Slowest decisions per template, with full span trees.
    exemplars: ExemplarStore,
    /// Decisions that ran with span collection on (the sampling clock).
    span_decisions: AtomicU64,
    /// `bep_span_solver_total{counter=...}` series, fed from span
    /// summaries: rewrite iterations, containment checks, hom nodes, hom
    /// backtracks — in that order.
    span_counters: [Arc<Counter>; 4],
    /// Component heap gauges (`bep_mem_bytes{component=...}`), refreshed
    /// by [`SqlProxy::metrics_text`]: plan cache, session state, journal,
    /// exemplars — in that order.
    mem_gauges: [Arc<Gauge>; 4],
    /// Exemplars currently retained (`bep_exemplar_count`).
    exemplar_count: Arc<Gauge>,
    /// Heap bytes of each session's state at the moment it ended
    /// (`bep_session_state_bytes`; recorded once per session, so scrapes
    /// never double-count a live session).
    session_state_bytes_hist: Arc<LatencyHistogram>,
    /// Policy-lint warnings emitted (`bep_policy_lint_warnings`).
    lint_warnings: Arc<Counter>,
    /// Cache evictions (`bep_cache_evictions_total{tier=...}`): plan,
    /// session-allow, session-deny — in that order.
    eviction_counters: [Arc<Counter>; 3],
    /// Warm-start snapshot gauges (`bep_snapshot_entries{outcome=...}`,
    /// `bep_snapshot_bytes`, `bep_snapshot_timestamp_seconds`): entries
    /// loaded, entries rejected by the verification gate, file bytes, and
    /// the unix time of the last successful load/save.
    snapshot_loaded: Arc<Gauge>,
    snapshot_rejected: Arc<Gauge>,
    snapshot_bytes: Arc<Gauge>,
    snapshot_timestamp: Arc<Gauge>,
    /// Live session-state heap bytes, maintained incrementally: every
    /// session mutation adjusts this by the before/after delta of
    /// `session_state_bytes`, and session end subtracts the final size —
    /// so the `bep_mem_bytes{component="session-state"}` gauge is O(shards)
    /// to refresh instead of an O(sessions) walk.
    session_bytes: AtomicU64,
}

impl SqlProxy {
    /// Wraps a database with enforcement.
    pub fn new(db: Database, checker: ComplianceChecker, config: ProxyConfig) -> SqlProxy {
        let registry = MetricsRegistry::new();
        let stats = AtomicProxyStats::register(&registry);
        let sessions_gauge = registry.gauge("bep_sessions", "Live sessions", &[]);
        let journal_published = registry.gauge(
            "bep_journal_published",
            "Decision events ever published to the journal",
            &[],
        );
        let journal_evicted = registry.gauge(
            "bep_journal_evicted",
            "Journal events evicted by ring wrap-around",
            &[],
        );
        let phases = Phase::ALL.map(|ph| {
            registry.histogram(
                "bep_phase_latency_ns",
                "Decision-phase latency in nanoseconds",
                &[("phase", ph.label())],
            )
        });
        let batches = registry.counter(
            "bep_batches_total",
            "Cross-connection decision batches executed",
            &[],
        );
        let batch_requests = registry.counter(
            "bep_batch_requests_total",
            "Requests decided inside cross-connection batches",
            &[],
        );
        let memory = MemoryGauges::register(&registry);
        let solver = "Solver work rolled up from decision span summaries";
        let span_counters = [
            "rewrite-iterations",
            "containment-checks",
            "hom-nodes",
            "hom-backtracks",
        ]
        .map(|c| registry.counter("bep_span_solver_total", solver, &[("counter", c)]));
        let heap = "Heap bytes currently owned, by component";
        let mem_gauges = ["plan-cache", "session-state", "journal", "exemplars"]
            .map(|c| registry.gauge("bep_mem_bytes", heap, &[("component", c)]));
        let exemplar_count = registry.gauge(
            "bep_exemplar_count",
            "Slow-decision exemplars currently retained",
            &[],
        );
        let session_state_bytes_hist = registry.histogram(
            "bep_session_state_bytes",
            "Heap bytes of a session's state when it ended",
            &[],
        );
        let lint_warnings = registry.counter(
            "bep_policy_lint_warnings",
            "Startup policy-lint warnings (handler columns missing from view heads)",
            &[],
        );
        let evictions = "Bounded-cache evictions by tier (SIEVE)";
        let eviction_counters = ["plan", "session-allow", "session-deny"]
            .map(|t| registry.counter("bep_cache_evictions_total", evictions, &[("tier", t)]));
        let snap_entries = "Warm-start snapshot entries by load outcome";
        let snapshot_loaded = registry.gauge(
            "bep_snapshot_entries",
            snap_entries,
            &[("outcome", "loaded")],
        );
        let snapshot_rejected = registry.gauge(
            "bep_snapshot_entries",
            snap_entries,
            &[("outcome", "rejected")],
        );
        let snapshot_bytes = registry.gauge(
            "bep_snapshot_bytes",
            "Size of the last snapshot file loaded or saved",
            &[],
        );
        let snapshot_timestamp = registry.gauge(
            "bep_snapshot_timestamp_seconds",
            "Unix time of the last successful snapshot load or save",
            &[],
        );
        SqlProxy {
            db: RwLock::new(db),
            checker,
            config,
            shards: (0..SESSION_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            next_session: AtomicU64::new(1),
            plans: PlanCache::with_budget(
                config.plan_capacity,
                config.plan_budget_bytes,
                Some(eviction_counters[0].clone()),
            ),
            stats,
            registry,
            journal: EventJournal::with_capacity(config.journal_capacity),
            phases,
            sessions_gauge,
            journal_published,
            journal_evicted,
            batches,
            batch_requests,
            memory,
            exemplars: ExemplarStore::new(config.exemplars_per_template),
            span_decisions: AtomicU64::new(0),
            span_counters,
            mem_gauges,
            exemplar_count,
            session_state_bytes_hist,
            lint_warnings,
            eviction_counters,
            snapshot_loaded,
            snapshot_rejected,
            snapshot_bytes,
            snapshot_timestamp,
            session_bytes: AtomicU64::new(0),
        }
    }

    /// Adjusts the incremental session-state byte account by the
    /// before/after delta of one session mutation.
    fn adjust_session_bytes(&self, before: usize, after: usize) {
        if after >= before {
            self.session_bytes
                .fetch_add((after - before) as u64, Ordering::Relaxed);
        } else {
            self.session_bytes
                .fetch_sub((before - after) as u64, Ordering::Relaxed);
        }
    }

    /// The shard holding a session (Fibonacci hash of the id; ids are
    /// sequential, so multiplicative hashing spreads them evenly).
    fn shard(&self, session_id: u64) -> &RwLock<HashMap<u64, SessionState>> {
        let h = session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let index = (h >> 60) as usize & (SESSION_SHARDS - 1);
        &self.shards[index]
    }

    /// Opens a session with the given policy-parameter bindings
    /// (e.g. `MyUId = 1`).
    pub fn begin_session(&self, bindings: Vec<(String, Value)>) -> u64 {
        self.begin_session_with_mode(bindings, AccessMode::ReadWrite)
    }

    /// Opens a session with an explicit [`AccessMode`]. A
    /// [`AccessMode::ReadOnly`] session gets every mutation denied with
    /// [`DenyReason::ReadOnlySession`], before any policy reasoning.
    pub fn begin_session_with_mode(&self, bindings: Vec<(String, Value)>, mode: AccessMode) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        // Each concrete-cache tier gets half the per-session budget
        // (0 stays 0 = unbounded).
        let per_tier = self.config.session_cache_budget_bytes / 2;
        let state = SessionState {
            bindings: Arc::new(bindings),
            mode,
            trace: Trace::new(),
            allowed_cache: BoundedCache::new(0, per_tier),
            denied_cache: BoundedCache::new(0, per_tier),
        };
        let bytes = session_state_bytes(&state);
        self.shard(id).write().insert(id, state);
        self.session_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        id
    }

    /// Ends a session, discarding its trace. Idempotent: ending an already
    /// ended (or never begun) session is a no-op, and the return value says
    /// whether the session was live. The session's final state size is
    /// recorded into the `bep_session_state_bytes` histogram and subtracted
    /// from the live session-state byte account (the
    /// `bep_mem_bytes{component="session-state"}` gauge path), so ended
    /// sessions stop weighing on the gauge immediately.
    pub fn end_session(&self, id: u64) -> bool {
        let state = self.shard(id).write().remove(&id);
        match state {
            Some(state) => {
                let bytes = session_state_bytes(&state);
                self.session_state_bytes_hist
                    .record(Duration::from_nanos(bytes as u64));
                self.session_bytes
                    .fetch_sub(bytes as u64, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Ends every session in `ids`, returning how many were live. The
    /// server's connection teardown and orphan sweep use this to reclaim
    /// sessions whose client vanished without `End`ing them.
    pub fn end_sessions(&self, ids: impl IntoIterator<Item = u64>) -> usize {
        ids.into_iter().filter(|&id| self.end_session(id)).count()
    }

    /// Number of currently live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Execution counters. The snapshot is exact whenever the proxy is
    /// quiescent (e.g. after worker threads join); under live traffic the
    /// fields are individually exact and monotone, and the proxy re-reads
    /// until two passes agree to keep cross-field skew negligible.
    pub fn stats(&self) -> ProxyStats {
        self.stats.snapshot()
    }

    /// The decision-event journal. Always present (so readers need no
    /// `Option` dance); it simply stays empty when
    /// [`ProxyConfig::observe`] is off.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// The proxy's metrics registry, for registering extra series next to
    /// the built-in ones (the server layer adds its own).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Per-phase latency snapshots, indexed by [`Phase`] (`as usize`).
    pub fn phase_snapshots(&self) -> [LatencySnapshot; PHASE_COUNT] {
        std::array::from_fn(|i| self.phases[i].snapshot())
    }

    /// Renders the Prometheus text exposition, refreshing the
    /// point-in-time gauges (live sessions, journal accounting, component
    /// heap bytes) first.
    pub fn metrics_text(&self) -> String {
        self.sessions_gauge.set(self.session_count() as u64);
        self.journal_published.set(self.journal.published());
        self.journal_evicted.set(self.journal.evicted());
        self.memory.sample();
        let [plan_cache, session_state, journal, exemplars] = &self.mem_gauges;
        plan_cache.set(self.plans.heap_bytes() as u64);
        // Incremental account + shard tables: O(shards), not O(sessions) —
        // a scrape must not walk a million sessions.
        session_state.set(self.sessions_heap_bytes_fast() as u64);
        journal.set(self.journal.heap_bytes() as u64);
        exemplars.set(self.exemplars.heap_bytes() as u64);
        self.exemplar_count.set(self.exemplars.count() as u64);
        self.registry.render()
    }

    /// The slow-decision exemplar store (empty unless
    /// [`ProxyConfig::exemplars_per_template`] is set).
    pub fn exemplars(&self) -> &ExemplarStore {
        &self.exemplars
    }

    /// Point-in-time heap bytes per retaining component, in the same
    /// order as the `bep_mem_bytes{component=...}` gauges.
    pub fn component_heap_bytes(&self) -> [(&'static str, usize); 4] {
        [
            ("plan-cache", self.plans.heap_bytes()),
            ("session-state", self.sessions_heap_bytes_fast()),
            ("journal", self.journal.heap_bytes()),
            ("exemplars", self.exemplars.heap_bytes()),
        ]
    }

    /// Lifetime cache evictions per tier, in `bep_cache_evictions_total`
    /// label order: plan, session-allow, session-deny.
    pub fn cache_eviction_counts(&self) -> [(&'static str, u64); 3] {
        let [plan, allow, deny] = &self.eviction_counters;
        [
            ("plan", plan.get()),
            ("session-allow", allow.get()),
            ("session-deny", deny.get()),
        ]
    }

    /// Loads a warm-start snapshot: every entry is verification-gated
    /// against the live policy (see [`crate::snapshot`]), survivors are
    /// installed into the plan cache as pre-compiled template verdicts, and
    /// the `bep_snapshot_*` gauges record the outcome. Whole-file failures
    /// (missing, corrupt, wrong version, different policy) return the typed
    /// error and install nothing — the proxy simply starts cold.
    pub fn load_snapshot(&self, path: &Path) -> Result<SnapshotLoadReport, SnapshotError> {
        let (plans, report) = crate::snapshot::load_snapshot_file(&self.checker, path)?;
        for plan in plans {
            self.plans.insert_compiled(plan);
        }
        self.snapshot_loaded.set(report.loaded as u64);
        self.snapshot_rejected.set(report.rejected as u64);
        self.snapshot_bytes.set(report.bytes);
        self.snapshot_timestamp.set(epoch_seconds());
        Ok(report)
    }

    /// Persists every compiled template verdict to `path` (atomic
    /// tmp-and-rename write) so the next process can warm-start. Typically
    /// called at drain time, after in-flight requests finish.
    pub fn save_snapshot(&self, path: &Path) -> Result<SnapshotSaveReport, SnapshotError> {
        let plans = self.plans.compiled_plans();
        let report = crate::snapshot::save_snapshot_file(&self.checker, &plans, path)?;
        self.snapshot_bytes.set(report.bytes);
        self.snapshot_timestamp.set(epoch_seconds());
        Ok(report)
    }

    /// Distribution of per-session state sizes, recorded once per session
    /// when it ends. The histogram reuses the latency machinery, so every
    /// `_ns` field of the snapshot reads as **bytes**.
    pub fn session_state_size_snapshot(&self) -> LatencySnapshot {
        self.session_state_bytes_hist.snapshot()
    }

    /// Runs the startup policy lints over a set of SQL templates (e.g. an
    /// application's handler bodies), counting each warning into
    /// `bep_policy_lint_warnings`. Advisory: enforcement is unchanged.
    pub fn lint_templates<'a>(&self, templates: impl IntoIterator<Item = &'a str>) -> Vec<String> {
        let warnings = crate::lint::lint_templates(&self.checker, templates);
        self.lint_warnings.add(warnings.len() as u64);
        warnings
    }

    /// Heap bytes currently owned by one live session's state (bindings,
    /// trace, concrete caches), or `None` if the session is not live.
    pub fn session_heap_bytes(&self, id: u64) -> Option<usize> {
        self.shard(id).read().get(&id).map(session_state_bytes)
    }

    /// Heap bytes owned by all live session state, including the shard
    /// tables themselves. The exact O(sessions) walk — the gauges use
    /// [`SqlProxy::sessions_heap_bytes_fast`] instead; this stays as the
    /// ground truth the incremental account is tested against.
    pub fn sessions_heap_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let shard = shard.read();
                shard.capacity() * std::mem::size_of::<(u64, SessionState)>()
                    + shard.values().map(session_state_bytes).sum::<usize>()
            })
            .sum()
    }

    /// Heap bytes owned by all live session state, from the incremental
    /// per-mutation account plus the shard tables: O(shards) and
    /// scrape-safe at any session count. Equals
    /// [`SqlProxy::sessions_heap_bytes`] whenever the proxy is quiescent.
    pub fn sessions_heap_bytes_fast(&self) -> usize {
        self.session_bytes.load(Ordering::Relaxed) as usize
            + self
                .shards
                .iter()
                .map(|shard| shard.read().capacity() * std::mem::size_of::<(u64, SessionState)>())
                .sum::<usize>()
    }

    /// Runs `f` with shared access to the wrapped database (e.g. for test
    /// assertions). Do not call `execute` from inside `f`.
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.db.read())
    }

    /// Runs `f` with exclusive access to the wrapped database for
    /// out-of-band setup. Do not call `execute` from inside `f`.
    pub fn with_database_mut<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.db.write())
    }

    /// A clone of a session's trace (for diagnosis). Cloned rather than
    /// borrowed so no shard lock outlives the call.
    pub fn session_trace(&self, id: u64) -> Result<Trace, CoreError> {
        self.shard(id)
            .read()
            .get(&id)
            .map(|s| s.trace.clone())
            .ok_or(CoreError::NoSuchSession(id))
    }

    /// Executes a statement template with bindings under enforcement.
    ///
    /// `sql` may contain named parameters; `extra_bindings` supplies request
    /// parameters (the session's own bindings are always in scope).
    ///
    /// Takes `&self`: any number of sessions (and requests within a
    /// session) may execute concurrently.
    pub fn execute(
        &self,
        session_id: u64,
        sql: &str,
        extra_bindings: &[(String, Value)],
    ) -> Result<ProxyResponse, CoreError> {
        let hash = template_hash(sql);
        let t0 = Instant::now();
        let mut prov = Prov::new(self.config.observe);
        self.begin_span();
        let result = if self.config.plan_cache {
            let (plan, built) = self.plan_for(sql, hash, &mut prov);
            self.execute_plan_timed(session_id, &plan, built, extra_bindings, &mut prov)
        } else {
            self.execute_naive(session_id, sql, hash, extra_bindings, &mut prov)
        };
        self.publish(session_id, hash, t0, &prov, &result);
        result
    }

    /// Compiles (or prefetches) the plan for a template without deciding
    /// anything. The returned plan can be replayed any number of times via
    /// [`SqlProxy::execute_planned`], skipping even the plan-cache probe —
    /// the wire protocol's `prepare` frame maps to this.
    ///
    /// With [`ProxyConfig::plan_cache`] off the plan is compiled transient
    /// (not retained). No statistics are touched; replays through a
    /// template-allowed plan count as template-cache hits.
    pub fn prepare(&self, sql: &str) -> Arc<TemplatePlan> {
        let hash = template_hash(sql);
        if self.config.plan_cache {
            let (cell, _) = self.plans.entry_hashed(hash, sql);
            cell.get_or_init(|| Arc::new(compile_plan(&self.checker, sql, hash, true, &mut |_| {})))
                .clone()
        } else {
            Arc::new(compile_plan(&self.checker, sql, hash, true, &mut |_| {}))
        }
    }

    /// Executes a previously [`prepare`](SqlProxy::prepare)d plan — the
    /// decision hot path with the plan lookup already paid. Statistics,
    /// phase timings, and journal events are recorded exactly as for
    /// [`SqlProxy::execute`] of the same template.
    pub fn execute_planned(
        &self,
        session_id: u64,
        plan: &TemplatePlan,
        extra_bindings: &[(String, Value)],
    ) -> Result<ProxyResponse, CoreError> {
        let t0 = Instant::now();
        let mut prov = Prov::new(self.config.observe);
        self.begin_span();
        let result = self.execute_plan_timed(session_id, plan, false, extra_bindings, &mut prov);
        self.publish(session_id, plan.hash(), t0, &prov, &result);
        result
    }

    /// Starts a per-decision span tree on this thread when configured.
    /// Always paired with the [`span::finish`] inside
    /// [`finish`](Self::finish), which also runs on the error paths.
    fn begin_span(&self) {
        if self.config.observe && self.config.spans {
            span::begin();
        }
    }

    /// Records the end-to-end latency and, when observing, the per-phase
    /// histograms and the journal event for one finished request.
    fn publish(
        &self,
        session_id: u64,
        hash: u64,
        t0: Instant,
        prov: &Prov,
        result: &Result<ProxyResponse, CoreError>,
    ) {
        if let Some(ev) = self.finish(session_id, hash, t0, prov, result) {
            self.journal.record(ev);
        }
    }

    /// The shared tail of [`publish`](Self::publish): latency + per-phase
    /// histogram recording, returning the journal event (if any) so batch
    /// callers can defer publication into one
    /// [`EventJournal::record_many`] block.
    fn finish(
        &self,
        session_id: u64,
        hash: u64,
        t0: Instant,
        prov: &Prov,
        result: &Result<ProxyResponse, CoreError>,
    ) -> Option<DecisionEvent> {
        let total = t0.elapsed();
        let total_ns = total.as_nanos().min(u64::MAX as u128) as u64;
        self.stats.latency.record(total);
        // Close the span tree first: `begin_span` opened it whenever
        // observing with spans on, and it must be closed on *every* path
        // through here (including errors) or it would leak into the
        // thread's next decision.
        let (span_summary, span_records) = match span::active() {
            false => (SpanSummary::default(), Vec::new()),
            true => {
                let n = self.span_decisions.fetch_add(1, Ordering::Relaxed);
                let sampled = self.config.span_sample_every > 0
                    && n.is_multiple_of(self.config.span_sample_every);
                // Capture the full tree only when someone will keep it:
                // the sampler, or an exemplar slot this decision would win.
                let capture = sampled || self.exemplars.would_accept(hash, total_ns);
                span::finish(capture).unwrap_or_default()
            }
        };
        if !span_summary.is_empty() {
            let [rw, cc, hn, hb] = &self.span_counters;
            rw.add(span_summary.rewrite_iterations as u64);
            cc.add(span_summary.containment_checks as u64);
            hn.add(span_summary.hom_nodes as u64);
            hb.add(span_summary.hom_backtracks as u64);
        }
        let timer = prov.timer.as_ref()?;
        let phase_ns = timer.phase_ns();
        for (hist, ns) in self.phases.iter().zip(phase_ns) {
            if ns > 0 {
                hist.record(Duration::from_nanos(ns));
            }
        }
        // Only decided statements get a journal entry; a `NoSuchSession`
        // error is the caller's bug, not a decision.
        let response = result.as_ref().ok()?;
        let verdict = if response.is_allowed() {
            Verdict::Allowed
        } else {
            Verdict::Blocked
        };
        let ev = DecisionEvent {
            seq: 0, // assigned on publication
            session: session_id,
            template_hash: hash,
            verdict,
            tier: prov.tier,
            negative_template_hit: prov.negative_template_hit,
            total_ns,
            phase_ns,
            span: span_summary,
        };
        if !span_records.is_empty() {
            // The store re-checks the cutoff under its lock; a losing race
            // with a slower decision just discards the clone.
            self.exemplars.offer(ev, span_records);
        }
        Some(ev)
    }

    /// Executes a burst of requests drained off many connections in one
    /// call, amortizing front-end cost across the group:
    ///
    /// * the **plan-cache probe** runs once per *distinct template* in the
    ///   batch (a per-batch map short-circuits repeats — no shard lock, no
    ///   string compare for the second and later occurrences);
    /// * the **journal write** claims one sequence block for the whole
    ///   batch ([`EventJournal::record_many`]) instead of one contended
    ///   `fetch_add` per decision;
    /// * batch counters (`bep_batches_total`, `bep_batch_requests_total`)
    ///   are bumped once.
    ///
    /// Decisions are **identical** to issuing the same requests
    /// sequentially in batch order through [`SqlProxy::execute`] /
    /// [`SqlProxy::execute_planned`]: requests are decided in submission
    /// order (so same-session trace growth is observed exactly as in the
    /// sequential interleaving), the first occurrence of a template that
    /// compiles its plan is attributed the template proof exactly as the
    /// sequential path would, and every per-request statistic, phase
    /// timing, and journal event is recorded per decision. The batch only
    /// changes *cost*, never answers — the T12 differential gate asserts
    /// this on replayed workloads.
    ///
    /// With [`ProxyConfig::plan_cache`] off, the batch degrades to the
    /// naive per-request path (nothing to amortize), preserving the
    /// ablation baseline.
    pub fn execute_batch(&self, items: &[BatchItem]) -> Vec<Result<ProxyResponse, CoreError>> {
        self.batches.inc();
        self.batch_requests.add(items.len() as u64);
        if !self.config.plan_cache {
            return items
                .iter()
                .map(|it| match &it.stmt {
                    BatchStmt::Sql(sql) => self.execute(it.session, sql, &it.bindings),
                    BatchStmt::Plan(plan) => self.execute_planned(it.session, plan, &it.bindings),
                })
                .collect();
        }
        // Per-batch template table: hash → compiled plan. Probing the
        // shared plan cache happens at most once per distinct template.
        let mut local_plans: HashMap<u64, Arc<TemplatePlan>> = HashMap::new();
        let mut out = Vec::with_capacity(items.len());
        let mut events: Vec<DecisionEvent> = Vec::new();
        for it in items {
            let t0 = Instant::now();
            let mut prov = Prov::new(self.config.observe);
            self.begin_span();
            let (hash, plan, built) = match &it.stmt {
                // A pre-compiled plan replays like `execute_planned`:
                // never attributed the template proof.
                BatchStmt::Plan(plan) => (plan.hash(), plan.clone(), false),
                BatchStmt::Sql(sql) => {
                    let hash = template_hash(sql);
                    match local_plans.get(&hash) {
                        Some(plan) => {
                            // Amortized repeat: the probe this request
                            // would have paid is skipped; the (now ~zero)
                            // lookup time is still attributed to the
                            // template-lookup phase so per-phase accounting
                            // stays complete.
                            prov.lap(Phase::TemplateLookup);
                            (hash, plan.clone(), false)
                        }
                        None => {
                            let (plan, built) = self.plan_for(sql, hash, &mut prov);
                            local_plans.insert(hash, plan.clone());
                            (hash, plan, built)
                        }
                    }
                }
            };
            let result = self.execute_plan_timed(it.session, &plan, built, &it.bindings, &mut prov);
            if let Some(ev) = self.finish(it.session, hash, t0, &prov, &result) {
                events.push(ev);
            }
            out.push(result);
        }
        if !events.is_empty() {
            self.journal.record_many(events);
        }
        out
    }

    /// The compiled plan for a template, proving at most once across all
    /// threads: `(plan, built)` where `built` says this call did the
    /// compilation (and its `Parse`/`Proof` laps are already attributed).
    fn plan_for(&self, sql: &str, hash: u64, prov: &mut Prov) -> (Arc<TemplatePlan>, bool) {
        let (cell, _) = self.plans.entry_hashed(hash, sql);
        let mut built = false;
        let plan = cell
            .get_or_init(|| {
                built = true;
                // The symbolic proof is always attempted at compile time:
                // even with the template tier off, the plan's certificate
                // feeds the concrete path's verify-first replay.
                Arc::new(compile_plan(&self.checker, sql, hash, true, &mut |ph| {
                    prov.lap(ph)
                }))
            })
            .clone();
        if !built {
            // Cache hit, or this thread waited out another thread's build:
            // either way the time was spent looking the template up.
            prov.lap(Phase::TemplateLookup);
        }
        (plan, built)
    }

    /// The session's policy bindings (shared by `Arc`) and access mode.
    fn session_meta(&self, session_id: u64) -> Result<SessionMeta, CoreError> {
        let shard = self.shard(session_id).read();
        let session = shard
            .get(&session_id)
            .ok_or(CoreError::NoSuchSession(session_id))?;
        Ok((session.bindings.clone(), session.mode))
    }

    /// Decides and executes one request through a compiled plan.
    fn execute_plan_timed(
        &self,
        session_id: u64,
        plan: &TemplatePlan,
        built: bool,
        extra_bindings: &[(String, Value)],
        prov: &mut Prov,
    ) -> Result<ProxyResponse, CoreError> {
        // A parse failure is replayed before the session lookup, matching
        // the naive path (parse errors never depend on the session).
        if let PlanBody::ParseError(msg) = plan.body() {
            self.stats.blocked.inc();
            return Ok(ProxyResponse::Blocked(DenyReason::ParseError(msg.clone())));
        }
        let (session_bindings, mode) = self.session_meta(session_id)?;
        let merged = merge_bindings(&session_bindings, extra_bindings);
        let bindings: &[(String, Value)] = merged.as_deref().unwrap_or(&session_bindings);
        match plan.body() {
            PlanBody::Select(sp) => {
                let decision =
                    self.decide_select_planned(session_id, sp, plan.hash(), built, bindings, prov)?;
                self.complete_select(session_id, &sp.stmt, bindings, decision, prov, |rows| {
                    self.record_observation_planned(session_id, sp, bindings, rows)
                })
            }
            PlanBody::Write(wp) => self.decide_and_run_write(
                session_id,
                plan.hash(),
                &wp.stmt,
                &wp.template,
                built,
                bindings,
                mode,
                prov,
            ),
            PlanBody::Other(stmt) => self.run_other(stmt, bindings, mode, prov),
            PlanBody::ParseError(_) => unreachable!("handled before session lookup"),
        }
    }

    /// The naive decision path ([`ProxyConfig::plan_cache`] = false):
    /// parse, translate, and prove from scratch, with no template
    /// memoization. This is the measured baseline plans are compared to,
    /// and the oracle the differential tests hold the planned path to.
    fn execute_naive(
        &self,
        session_id: u64,
        sql: &str,
        hash: u64,
        extra_bindings: &[(String, Value)],
        prov: &mut Prov,
    ) -> Result<ProxyResponse, CoreError> {
        let parsed = parse_statement(sql);
        prov.lap(Phase::Parse);
        let stmt = match parsed {
            Ok(s) => s,
            Err(e) => {
                self.stats.blocked.inc();
                return Ok(ProxyResponse::Blocked(DenyReason::ParseError(
                    e.to_string(),
                )));
            }
        };
        let (session_bindings, mode) = self.session_meta(session_id)?;
        let merged = merge_bindings(&session_bindings, extra_bindings);
        let bindings: &[(String, Value)] = merged.as_deref().unwrap_or(&session_bindings);
        match &stmt {
            Statement::Select(q) => {
                let decision = self.decide_select_naive(session_id, q, hash, bindings, prov)?;
                self.complete_select(session_id, &stmt, bindings, decision, prov, |rows| {
                    self.record_observation_naive(session_id, q, bindings, rows)
                })
            }
            _ if StatementClass::of(&stmt) == StatementClass::Write => {
                // The naive baseline compiles the write template from
                // scratch on every request (no memoization), mirroring the
                // read path's fresh symbolic proof.
                let template = crate::write::compile_write_template(
                    &stmt,
                    self.checker.policy().views(),
                    self.checker.schema(),
                );
                prov.lap(Phase::Proof);
                self.decide_and_run_write(
                    session_id, hash, &stmt, &template, true, bindings, mode, prov,
                )
            }
            _ => self.run_other(&stmt, bindings, mode, prov),
        }
    }

    /// Runs an allowed/denied `SELECT` decision to completion: execute the
    /// statement, count, record the observation (via `record`), and map
    /// the denial.
    fn complete_select(
        &self,
        _session_id: u64,
        stmt: &Statement,
        bindings: &[(String, Value)],
        decision: Decision,
        prov: &mut Prov,
        record: impl FnOnce(&Rows),
    ) -> Result<ProxyResponse, CoreError> {
        match decision {
            Decision::Allowed { .. } => {
                // Binding failures (e.g. a parameter the caller never
                // supplied) are the caller's malformed input, not an
                // internal error: block, don't fail.
                let rows = match self.run_select(stmt, bindings) {
                    Ok(rows) => rows,
                    Err(CoreError::Parse(msg)) => {
                        self.stats.blocked.inc();
                        return Ok(ProxyResponse::Blocked(DenyReason::ParseError(msg)));
                    }
                    Err(other) => return Err(other),
                };
                prov.lap(Phase::DbExec);
                self.stats.allowed.inc();
                record(&rows);
                prov.lap(Phase::TraceRecord);
                Ok(ProxyResponse::Rows(rows))
            }
            Decision::Denied { reason } => {
                self.stats.blocked.inc();
                Ok(ProxyResponse::Blocked(reason))
            }
        }
    }

    /// The write decision pipeline: session mode, config gates, then the
    /// template/concrete coverage tiers, then execution.
    ///
    /// `built` attributes the template verdict the same way the read path
    /// does: this request paid the compilation (a fresh template proof) or
    /// reused a cached plan. Writes never record trace facts: the trace
    /// stays a record of what the session *observed*, so read decisions
    /// are bit-identical with enforcement on or off.
    #[allow(clippy::too_many_arguments)]
    fn decide_and_run_write(
        &self,
        session_id: u64,
        hash: u64,
        stmt: &Statement,
        template: &Result<WriteTemplate, String>,
        built: bool,
        bindings: &[(String, Value)],
        mode: AccessMode,
        prov: &mut Prov,
    ) -> Result<ProxyResponse, CoreError> {
        if !mode.permits(StatementClass::Write) {
            return Ok(self.block_write(DenyReason::ReadOnlySession));
        }
        if !self.config.allow_writes {
            return Ok(self.block_write(DenyReason::WriteBlocked));
        }
        if !self.config.enforce_writes {
            self.stats.write_passthrough.inc();
            return self.execute_statement(stmt, bindings, prov);
        }
        let template = match template {
            Ok(t) => t,
            Err(msg) => {
                return Ok(self.block_write(DenyReason::OutOfFragment(msg.clone())));
            }
        };
        // 1. Template tier: the session-independent verdict compiled into
        //    the plan (or just computed, on the naive path).
        if self.config.template_cache {
            match template.verdict {
                WriteTemplateVerdict::Allowed => {
                    if built {
                        prov.tier = CacheTier::TemplateProof;
                        self.stats.template_proofs.inc();
                    } else {
                        prov.tier = CacheTier::TemplateCache;
                        self.stats.template_cache_hits.inc();
                    }
                    self.stats.write_allowed.inc();
                    return self.execute_statement(stmt, bindings, prov);
                }
                WriteTemplateVerdict::NeverCovered => {
                    // Permanently uncoverable, for any session or history.
                    if built {
                        prov.tier = CacheTier::TemplateProof;
                    } else {
                        prov.tier = CacheTier::TemplateCache;
                    }
                    let query = template
                        .uncovered_query()
                        .unwrap_or_else(|| crate::write::atom_query(&template.atoms[0]));
                    return Ok(self.block_write(DenyReason::WriteNotCovered { query }));
                }
                WriteTemplateVerdict::Undecidable => {
                    if !built {
                        prov.negative_template_hit = true;
                        self.stats.template_negative_hits.inc();
                    }
                }
            }
        }
        // 2. Concrete tier, through the same session caches as reads
        //    (allowals are monotone in the facts; denials are stamped with
        //    the trace version and replayed as `WriteNotCovered`).
        let key = ConcreteKey::new(hash, bindings);
        let decision = self.decide_concrete(session_id, key, prov, |checker, trace| {
            match crate::write::check_write_concrete(
                template,
                checker.policy().views(),
                bindings,
                trace.facts(),
            ) {
                Ok(()) => Decision::Allowed {
                    source: DecisionSource::ConcreteProof,
                    rewritings: Vec::new(),
                },
                Err(query) => Decision::Denied {
                    reason: DenyReason::WriteNotCovered { query },
                },
            }
        })?;
        match decision {
            Decision::Allowed { .. } => {
                self.stats.write_allowed.inc();
                self.execute_statement(stmt, bindings, prov)
            }
            Decision::Denied { reason } => Ok(self.block_write(reason)),
        }
    }

    /// Counts and wraps one blocked write.
    fn block_write(&self, reason: DenyReason) -> ProxyResponse {
        self.stats.blocked.inc();
        self.stats.write_blocked.inc();
        ProxyResponse::Blocked(reason)
    }

    /// Executes a pass-through non-row statement (DDL). Row mutations go
    /// through [`decide_and_run_write`](Self::decide_and_run_write).
    fn run_other(
        &self,
        stmt: &Statement,
        bindings: &[(String, Value)],
        mode: AccessMode,
        prov: &mut Prov,
    ) -> Result<ProxyResponse, CoreError> {
        if !mode.permits(StatementClass::Ddl) {
            return Ok(self.block_write(DenyReason::ReadOnlySession));
        }
        if !self.config.allow_writes {
            return Ok(self.block_write(DenyReason::WriteBlocked));
        }
        // DDL writes no rows, so there is no coverage question; it is
        // counted as passthrough traffic either way.
        self.stats.write_passthrough.inc();
        self.execute_statement(stmt, bindings, prov)
    }

    /// Binds and executes one mutation/DDL statement against the store.
    fn execute_statement(
        &self,
        stmt: &Statement,
        bindings: &[(String, Value)],
        prov: &mut Prov,
    ) -> Result<ProxyResponse, CoreError> {
        let bound = match bind_to_statement(stmt, bindings) {
            Ok(b) => b,
            Err(CoreError::Parse(msg)) => {
                self.stats.blocked.inc();
                return Ok(ProxyResponse::Blocked(DenyReason::ParseError(msg)));
            }
            Err(other) => return Err(other),
        };
        let result = self.db.write().execute(&bound)?;
        prov.lap(Phase::DbExec);
        self.stats.writes.inc();
        match result {
            minidb::ExecResult::Affected(n) => Ok(ProxyResponse::Affected(n)),
            minidb::ExecResult::Created => Ok(ProxyResponse::Affected(0)),
            minidb::ExecResult::Rows(r) => Ok(ProxyResponse::Rows(r)),
        }
    }

    /// Executes without any enforcement (the F3 baseline).
    pub fn execute_unchecked(
        &self,
        sql: &str,
        bindings: &[(String, Value)],
    ) -> Result<ProxyResponse, CoreError> {
        self.stats.unchecked_statements.inc();
        let stmt = parse_statement(sql).map_err(|e| CoreError::Parse(e.to_string()))?;
        let bound = bind_to_statement(&stmt, bindings)?;
        if let Statement::Select(q) = &bound {
            return Ok(ProxyResponse::Rows(self.db.read().query(q)?));
        }
        match self.db.write().execute(&bound)? {
            minidb::ExecResult::Rows(r) => Ok(ProxyResponse::Rows(r)),
            minidb::ExecResult::Affected(n) => Ok(ProxyResponse::Affected(n)),
            minidb::ExecResult::Created => Ok(ProxyResponse::Affected(0)),
        }
    }

    /// Decides a `SELECT` through its compiled plan. The template tier is
    /// a field read (the verdict was compiled into the plan); the concrete
    /// tier instantiates only the pre-pruned candidate views per disjunct.
    fn decide_select_planned(
        &self,
        session_id: u64,
        sp: &SelectPlan,
        hash: u64,
        built: bool,
        bindings: &[(String, Value)],
        prov: &mut Prov,
    ) -> Result<Decision, CoreError> {
        // 1. Template tier, compiled into the plan. `built` attributes the
        //    verdict: this request paid the proof, or it reused one.
        if self.config.template_cache {
            match &sp.template {
                Some(TemplateVerdict::Allowed(certs)) => {
                    if built {
                        prov.tier = CacheTier::TemplateProof;
                        self.stats.template_proofs.inc();
                        return Ok(Decision::Allowed {
                            source: DecisionSource::TemplateProof,
                            rewritings: certs.iter().map(|c| c.rewriting.clone()).collect(),
                        });
                    }
                    prov.tier = CacheTier::TemplateCache;
                    self.stats.template_cache_hits.inc();
                    return Ok(Decision::Allowed {
                        source: DecisionSource::TemplateCache,
                        rewritings: Vec::new(),
                    });
                }
                Some(TemplateVerdict::Undecidable) if !built => {
                    // Known template-undecidable: straight to the concrete
                    // path without re-proving. Sound because the policy is
                    // immutable — see the module docs.
                    prov.negative_template_hit = true;
                    self.stats.template_negative_hits.inc();
                }
                _ => {}
            }
        }
        // 2. Concrete tier over the pruned plan.
        let key = ConcreteKey::new(hash, bindings);
        self.decide_concrete(session_id, key, prov, |checker, trace| {
            match &sp.translation {
                Err(msg) => Decision::Denied {
                    reason: DenyReason::OutOfFragment(msg.clone()),
                },
                Ok(disjuncts) => {
                    // When the template proved compliant at compile time,
                    // each disjunct carries a certificate with its
                    // precompiled view expansion: replay it (instantiate
                    // rewriting + expansion, then verify mutual containment
                    // against the instantiated disjunct) before falling
                    // back to the full rewriting search. Verification gates
                    // acceptance and the fallback preserves completeness,
                    // so this is decision-identical to the naive path — it
                    // only amortizes candidate generation, view
                    // instantiation, and expansion into the plan.
                    let certs = match &sp.template {
                        Some(TemplateVerdict::Allowed(cs)) => Some(cs),
                        _ => None,
                    };
                    let mut rewritings = Vec::with_capacity(disjuncts.len());
                    for (i, d) in disjuncts.iter().enumerate() {
                        let _disjunct_span = span::guard(SpanKind::Disjunct);
                        let inst = d.template.instantiate(bindings);
                        let replayed = certs.and_then(|cs| cs.get(i)).and_then(|c| {
                            let expansion = c.expansion.as_ref()?;
                            let _replay_span = span::guard(SpanKind::CertReplay);
                            checker.replay_certificate(
                                &inst,
                                c.rewriting.instantiate(bindings),
                                &expansion.instantiate(bindings),
                                trace.facts(),
                            )
                        });
                        let proved = match replayed {
                            Some(rw) => {
                                span::note_cert_replay();
                                Some(rw)
                            }
                            None => {
                                // Replay failed (or no certificate): run the
                                // full search over the pruned candidate views.
                                span::note_cert_fallback();
                                let _fallback_span = span::guard(SpanKind::CertFallback);
                                let views = checker
                                    .policy()
                                    .instantiate_subset(&d.view_indices, bindings);
                                checker.prove_disjunct(&inst, &views, trace.facts())
                            }
                        };
                        match proved {
                            Some(rw) => rewritings.push(rw),
                            None => {
                                return Decision::Denied {
                                    reason: DenyReason::NotDetermined { query: inst },
                                }
                            }
                        }
                    }
                    Decision::Allowed {
                        source: DecisionSource::ConcreteProof,
                        rewritings,
                    }
                }
            }
        })
    }

    /// Decides a `SELECT` on the naive path: fresh symbolic proof when the
    /// template tier is on (never memoized), then the full unpruned
    /// concrete check.
    fn decide_select_naive(
        &self,
        session_id: u64,
        q: &sqlir::Query,
        hash: u64,
        bindings: &[(String, Value)],
        prov: &mut Prov,
    ) -> Result<Decision, CoreError> {
        if self.config.template_cache {
            match self.checker.check_template(q) {
                Decision::Allowed { rewritings, .. } => {
                    prov.lap(Phase::Proof);
                    prov.tier = CacheTier::TemplateProof;
                    self.stats.template_proofs.inc();
                    return Ok(Decision::Allowed {
                        source: DecisionSource::TemplateProof,
                        rewritings,
                    });
                }
                Decision::Denied { .. } => prov.lap(Phase::Proof),
            }
        }
        let key = ConcreteKey::new(hash, bindings);
        self.decide_concrete(session_id, key, prov, |checker, trace| {
            checker.check_concrete(q, bindings, trace)
        })
    }

    /// The shared concrete tier: session caches around one fresh proof.
    ///
    /// Per-session concrete caches (allowals are monotone in the trace;
    /// denials stay valid while the fact set is unchanged). The shard read
    /// lock is held across the concrete proof so the trace cannot shrink
    /// or move underneath it; same-shard sessions may still read
    /// concurrently.
    fn decide_concrete(
        &self,
        session_id: u64,
        concrete_key: ConcreteKey,
        prov: &mut Prov,
        prove: impl FnOnce(&ComplianceChecker, &Trace) -> Decision,
    ) -> Result<Decision, CoreError> {
        let (decision, trace_version) = {
            let sessions = self.shard(session_id).read();
            let session = sessions
                .get(&session_id)
                .ok_or(CoreError::NoSuchSession(session_id))?;
            if self.config.session_cache && session.allowed_cache.get(&concrete_key).is_some() {
                prov.lap(Phase::ConcreteLookup);
                prov.tier = CacheTier::SessionCache;
                self.stats.session_cache_hits.inc();
                return Ok(Decision::Allowed {
                    source: DecisionSource::SessionCache,
                    rewritings: Vec::new(),
                });
            }
            let trace_version = session.trace.version();
            if self.config.session_cache {
                if let Some((at, kind, query)) = session.denied_cache.get(&concrete_key) {
                    if *at == trace_version {
                        prov.lap(Phase::ConcreteLookup);
                        prov.tier = CacheTier::DenyCache;
                        self.stats.deny_cache_hits.inc();
                        let reason = match kind {
                            DenyKind::Read => DenyReason::NotDetermined {
                                query: query.clone(),
                            },
                            DenyKind::Write => DenyReason::WriteNotCovered {
                                query: query.clone(),
                            },
                        };
                        return Ok(Decision::Denied { reason });
                    }
                }
            }
            prov.lap(Phase::ConcreteLookup);
            // Fresh concrete proof.
            let empty = Trace::new();
            let trace: &Trace = if self.config.trace_aware {
                &session.trace
            } else {
                &empty
            };
            (prove(&self.checker, trace), trace_version)
        };
        // Whether allowed or denied, the verdict came from the fresh
        // concrete proof; cache write-back below is attributed back to the
        // concrete-lookup phase (cache maintenance, not proof work).
        prov.lap(Phase::Proof);
        prov.tier = CacheTier::ConcreteProof;
        if self.config.session_cache {
            // Write-back after dropping the read lock. If the session ended
            // meanwhile, there is nothing to cache into — the decision
            // itself is still valid for this request.
            let mut sessions = self.shard(session_id).write();
            if let Some(session) = sessions.get_mut(&session_id) {
                let before = session_state_bytes(session);
                if decision.is_allowed() {
                    let evicted =
                        session
                            .allowed_cache
                            .insert(concrete_key, (), allow_entry_bytes());
                    self.eviction_counters[1].add(evicted.len() as u64);
                } else if let Decision::Denied { reason } = &decision {
                    // Only the two fact-dependent denials are cacheable;
                    // config/mode denials never reach this tier.
                    let cached = match reason {
                        DenyReason::NotDetermined { query } => Some((DenyKind::Read, query)),
                        DenyReason::WriteNotCovered { query } => Some((DenyKind::Write, query)),
                        _ => None,
                    };
                    if let Some((kind, query)) = cached {
                        // Stamped with the trace version read before the
                        // proof: if the fact set changed since (growth *or*
                        // compaction), the stamp is already stale and the
                        // entry will never be served.
                        let bytes = deny_entry_bytes(query);
                        let evicted = session.denied_cache.insert(
                            concrete_key,
                            (trace_version, kind, query.clone()),
                            bytes,
                        );
                        self.eviction_counters[2].add(evicted.len() as u64);
                    }
                }
                let after = session_state_bytes(session);
                self.adjust_session_bytes(before, after);
            }
            prov.lap(Phase::ConcreteLookup);
        }
        if decision.is_allowed() {
            self.stats.concrete_proofs.inc();
        }
        Ok(decision)
    }

    fn run_select(
        &self,
        stmt: &Statement,
        bindings: &[(String, Value)],
    ) -> Result<Rows, CoreError> {
        let bound = bind_to_statement(stmt, bindings)?;
        match &bound {
            Statement::Select(q) => Ok(self.db.read().query(q)?),
            _ => Err(CoreError::Internal("run_select on non-select".into())),
        }
    }

    /// Observation recording through the plan's cached translation (no
    /// re-translation on the hot path).
    fn record_observation_planned(
        &self,
        session_id: u64,
        sp: &SelectPlan,
        bindings: &[(String, Value)],
        rows: &Rows,
    ) {
        if !self.config.trace_aware {
            return;
        }
        // Only single-disjunct queries contribute facts: a union's non-empty
        // answer doesn't say which disjunct held.
        let Ok(disjuncts) = &sp.translation else {
            return;
        };
        if disjuncts.len() != 1 {
            return;
        }
        self.record_single_disjunct(
            session_id,
            disjuncts[0].template.instantiate(bindings),
            rows,
        );
    }

    fn record_observation_naive(
        &self,
        session_id: u64,
        q: &sqlir::Query,
        bindings: &[(String, Value)],
        rows: &Rows,
    ) {
        if !self.config.trace_aware {
            return;
        }
        let Ok(ucq) = self.checker.translate(q) else {
            return;
        };
        if ucq.disjuncts.len() != 1 {
            return;
        }
        self.record_single_disjunct(session_id, ucq.disjuncts[0].instantiate(bindings), rows);
    }

    fn record_single_disjunct(&self, session_id: u64, cq: qlogic::Cq, rows: &Rows) {
        if !cq.params().is_empty() {
            return; // unbound parameters: nothing definite to record
        }
        let obs = Observation::from_rows(&rows.rows, MAX_FACT_ROWS);
        if let Some(session) = self.shard(session_id).write().get_mut(&session_id) {
            let before = session_state_bytes(session);
            session.trace.record(cq, obs);
            if self.config.compaction {
                // Subsumption compaction keeps the trace O(distinct
                // information): decision-invisible (the fact set stays
                // logically equivalent), and any removal bumps the trace
                // version, so stamped denials never serve stale.
                session.trace.compact();
            }
            let after = session_state_bytes(session);
            self.adjust_session_bytes(before, after);
        }
    }

    /// The compiled-plan cache (observability and tests).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }
}

/// Merged request-over-session bindings. Fast path: with no request
/// parameters the session bindings are used as-is through the shared
/// `Arc` — no per-statement copy, no `String` clone.
fn merge_bindings(
    session_bindings: &Arc<Vec<(String, Value)>>,
    extra_bindings: &[(String, Value)],
) -> Option<Vec<(String, Value)>> {
    if extra_bindings.is_empty() {
        return None;
    }
    let mut m = session_bindings.as_ref().clone();
    for (k, v) in extra_bindings {
        m.retain(|(n, _)| n != k);
        m.push((k.clone(), v.clone()));
    }
    Some(m)
}

fn bind_to_statement(
    stmt: &Statement,
    bindings: &[(String, Value)],
) -> Result<Statement, CoreError> {
    let mut pb = ParamBindings::new();
    for (k, v) in bindings {
        pb.set(k.clone(), v.clone());
    }
    bind_statement(stmt, &pb).map_err(|e| CoreError::Parse(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schema_of_database, Policy};

    fn calendar_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), \
             (3, 'party', 'fun')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')",
        )
        .unwrap();
        db
    }

    fn proxy(config: ProxyConfig) -> SqlProxy {
        let db = calendar_db();
        let schema = schema_of_database(&db);
        let policy = Policy::from_sql(
            &schema,
            &[
                ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
                (
                    "V2",
                    "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                     WHERE a.UId = ?MyUId",
                ),
            ],
        )
        .unwrap();
        SqlProxy::new(db, ComplianceChecker::new(schema, policy), config)
    }

    #[test]
    fn proxy_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SqlProxy>();
    }

    #[test]
    fn listing_1_flow_allowed() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);

        // Q1: the access check from Listing 1.
        let r1 = p
            .execute(
                s,
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(r1.is_allowed());
        assert_eq!(r1.rows().unwrap().len(), 1);

        // Q2: fetch the event, allowed thanks to the trace.
        let r2 = p
            .execute(
                s,
                "SELECT * FROM Events WHERE EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(r2.is_allowed(), "{r2:?}");
        assert_eq!(r2.rows().unwrap().rows[0][1], Value::str("standup"));
    }

    #[test]
    fn q2_first_is_blocked() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p
            .execute(
                s,
                "SELECT * FROM Events WHERE EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(matches!(
            r,
            ProxyResponse::Blocked(DenyReason::NotDetermined { .. })
        ));
    }

    #[test]
    fn trace_unaware_proxy_blocks_q2_even_after_q1() {
        let config = ProxyConfig {
            trace_aware: false,
            ..Default::default()
        };
        let p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();
        let r = p
            .execute(
                s,
                "SELECT * FROM Events WHERE EId = ?event",
                &[("event".into(), Value::Int(2))],
            )
            .unwrap();
        assert!(!r.is_allowed(), "without trace awareness Q2 stays blocked");
    }

    #[test]
    fn template_cache_serves_repeats() {
        let p = proxy(ProxyConfig::default());
        let s1 = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let s2 = p.begin_session(vec![("MyUId".into(), Value::Int(2))]);
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        p.execute(s1, sql, &[]).unwrap();
        p.execute(s2, sql, &[]).unwrap();
        p.execute(s1, sql, &[]).unwrap();
        let stats = p.stats();
        assert_eq!(stats.template_proofs, 1);
        assert_eq!(stats.template_cache_hits, 2);
        assert_eq!(stats.allowed, 3);
    }

    #[test]
    fn negative_template_cache_skips_reproof() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        // Events alone is never template-decidable under this policy: the
        // first request pays the symbolic proof, later ones must not.
        let fetch = "SELECT * FROM Events WHERE EId = 2";
        assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
        assert_eq!(p.stats().template_negative_hits, 0);
        assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
        assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
        assert_eq!(p.stats().template_negative_hits, 2);
        // The trace flow still works: the probe unlocks the fetch even
        // though the template stays in the negative cache.
        let probe = "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2";
        assert!(p.execute(s, probe, &[]).unwrap().is_allowed());
        assert!(p.execute(s, fetch, &[]).unwrap().is_allowed());
    }

    #[test]
    fn session_cache_serves_concrete_repeats() {
        let config = ProxyConfig {
            template_cache: false,
            ..Default::default()
        };
        let p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sql = "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2";
        p.execute(s, sql, &[]).unwrap();
        p.execute(s, sql, &[]).unwrap();
        let stats = p.stats();
        assert_eq!(stats.concrete_proofs, 1);
        assert_eq!(stats.session_cache_hits, 1);
    }

    #[test]
    fn sessions_are_isolated() {
        let p = proxy(ProxyConfig::default());
        let s1 = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let s2 = p.begin_session(vec![("MyUId".into(), Value::Int(2))]);
        // Session 1 probes and learns about event 2.
        p.execute(
            s1,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
            &[],
        )
        .unwrap();
        // Session 2 must NOT benefit from session 1's trace.
        let r = p
            .execute(s2, "SELECT * FROM Events WHERE EId = 2", &[])
            .unwrap();
        assert!(!r.is_allowed());
    }

    #[test]
    fn empty_probe_does_not_unlock() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        // User 1 does NOT attend event 3; the probe returns empty.
        let r1 = p
            .execute(
                s,
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 3",
                &[],
            )
            .unwrap();
        assert!(r1.is_allowed());
        assert!(r1.rows().unwrap().is_empty());
        // Fetching event 3 must remain blocked.
        let r2 = p
            .execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
            .unwrap();
        assert!(!r2.is_allowed(), "an empty probe must not unlock the event");
    }

    #[test]
    fn writes_pass_through_or_block_by_config() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p
            .execute(
                s,
                "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 3, NULL)",
                &[],
            )
            .unwrap();
        assert_eq!(r, ProxyResponse::Affected(1));

        let config = ProxyConfig {
            allow_writes: false,
            ..Default::default()
        };
        let p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p
            .execute(s, "DELETE FROM Events WHERE EId = 2", &[])
            .unwrap();
        assert_eq!(r, ProxyResponse::Blocked(DenyReason::WriteBlocked));
    }

    #[test]
    fn enforced_session_pinned_write_rides_the_template_tier() {
        let p = proxy(ProxyConfig {
            enforce_writes: true,
            ..Default::default()
        });
        // DELETE pinned to ?MyUId unifies with V1's Attendance atom at the
        // template level: allowed for every session, no concrete proof.
        let sql = "DELETE FROM Attendance WHERE UId = ?MyUId";
        let s1 = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let s2 = p.begin_session(vec![("MyUId".into(), Value::Int(2))]);
        assert_eq!(p.execute(s1, sql, &[]).unwrap(), ProxyResponse::Affected(1));
        assert_eq!(p.execute(s2, sql, &[]).unwrap(), ProxyResponse::Affected(1));
        let stats = p.stats();
        assert_eq!(stats.write_allowed, 2);
        assert_eq!(stats.write_blocked, 0);
        assert_eq!(stats.template_proofs, 1, "first request pays the proof");
        assert_eq!(stats.template_cache_hits, 1, "second rides the plan");
        assert_eq!(stats.writes, 2);
    }

    #[test]
    fn enforced_write_for_another_user_is_blocked_and_deny_cached() {
        let p = proxy(ProxyConfig {
            enforce_writes: true,
            ..Default::default()
        });
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        // Writing user 2's attendance row can never be covered by the
        // session's views; the denial replays from the deny cache.
        let sql = "INSERT INTO Attendance (UId, EId, Notes) VALUES (2, 3, 'x')";
        for _ in 0..2 {
            let r = p.execute(s, sql, &[]).unwrap();
            assert!(matches!(
                r,
                ProxyResponse::Blocked(DenyReason::WriteNotCovered { .. })
            ));
        }
        let stats = p.stats();
        assert_eq!(stats.write_blocked, 2);
        assert_eq!(stats.write_allowed, 0);
        assert_eq!(stats.deny_cache_hits, 1, "second denial replays");
        assert_eq!(stats.writes, 0, "nothing reached the store");
    }

    #[test]
    fn adversarial_writes_block_and_never_panic() {
        let p = proxy(ProxyConfig {
            enforce_writes: true,
            ..Default::default()
        });
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        // Malformed mutation SQL: a typed parse denial, not an error.
        let r = p
            .execute(s, "INSERT INTO Attendance VALUES (", &[])
            .unwrap();
        assert!(matches!(
            r,
            ProxyResponse::Blocked(DenyReason::ParseError(_))
        ));
        // Unknown table: out of fragment, denied before any store access.
        let r = p
            .execute(s, "INSERT INTO Nope (X) VALUES (1)", &[])
            .unwrap();
        assert!(matches!(
            r,
            ProxyResponse::Blocked(DenyReason::OutOfFragment(_))
        ));
        // Unbound parameter: the write must not reach the store.
        let r = p
            .execute(
                s,
                "INSERT INTO Attendance (UId, EId, Notes) VALUES (?MyUId, ?nope, NULL)",
                &[],
            )
            .unwrap();
        assert!(matches!(r, ProxyResponse::Blocked(_)), "got {r:?}");
        assert_eq!(p.stats().writes, 0, "nothing reached the store");
    }

    #[test]
    fn concrete_write_coverage_uses_trace_facts() {
        let p = proxy(ProxyConfig {
            enforce_writes: true,
            ..Default::default()
        });
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        // Inserting my own attendance with a visible Notes value needs V2
        // (V1 hides Notes), and V2's Events join atom is only implied once
        // the session has observed the event row.
        let write = "INSERT INTO Attendance (UId, EId, Notes) VALUES (?MyUId, 2, 'note')";
        let r = p.execute(s, write, &[]).unwrap();
        assert!(
            matches!(
                r,
                ProxyResponse::Blocked(DenyReason::WriteNotCovered { .. })
            ),
            "before the event is visible the write is uncovered: {r:?}"
        );
        // Probe then fetch: the trace now holds the Events(2, ...) fact.
        p.execute(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
            &[],
        )
        .unwrap();
        assert!(p
            .execute(s, "SELECT * FROM Events WHERE EId = 2", &[])
            .unwrap()
            .is_allowed());
        // Delete my original row first so the insert does not collide with
        // the (UId, EId) primary key.
        assert_eq!(
            p.execute(s, "DELETE FROM Attendance WHERE UId = ?MyUId", &[])
                .unwrap(),
            ProxyResponse::Affected(1)
        );
        assert_eq!(
            p.execute(s, write, &[]).unwrap(),
            ProxyResponse::Affected(1)
        );
    }

    #[test]
    fn read_only_session_denies_all_mutations() {
        let p = proxy(ProxyConfig {
            enforce_writes: true,
            ..Default::default()
        });
        let s =
            p.begin_session_with_mode(vec![("MyUId".into(), Value::Int(1))], AccessMode::ReadOnly);
        // Reads still work.
        assert!(p
            .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
            .unwrap()
            .is_allowed());
        // A mutation the policy would allow is denied by the mode alone,
        // before coverage is considered; DDL likewise.
        for sql in [
            "DELETE FROM Attendance WHERE UId = ?MyUId",
            "CREATE TABLE Scratch (X INT PRIMARY KEY)",
        ] {
            assert_eq!(
                p.execute(s, sql, &[]).unwrap(),
                ProxyResponse::Blocked(DenyReason::ReadOnlySession)
            );
        }
        assert_eq!(p.stats().write_blocked, 2);
    }

    #[test]
    fn unenforced_writes_count_as_passthrough() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(
            s,
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (9, 9, 'x')",
            &[],
        )
        .unwrap();
        p.execute(s, "CREATE TABLE Scratch (X INT PRIMARY KEY)", &[])
            .unwrap();
        let stats = p.stats();
        assert_eq!(stats.write_passthrough, 2);
        assert_eq!(stats.write_allowed, 0);
        assert_eq!(stats.write_blocked, 0);
    }

    #[test]
    fn read_decisions_are_identical_with_write_enforcement_on() {
        // The same mixed workload (reads + authorized writes) must produce
        // bit-identical responses whether write enforcement is on or off:
        // writes never feed the trace, so they cannot perturb reads.
        let run = |enforce_writes: bool| -> Vec<ProxyResponse> {
            let p = proxy(ProxyConfig {
                enforce_writes,
                ..Default::default()
            });
            let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
            [
                "SELECT EId FROM Attendance WHERE UId = ?MyUId",
                "SELECT * FROM Events WHERE EId = 3",
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
                "SELECT * FROM Events WHERE EId = 2",
                "DELETE FROM Attendance WHERE UId = ?MyUId",
                "SELECT EId FROM Attendance WHERE UId = ?MyUId",
                "SELECT * FROM Events WHERE EId = 2",
            ]
            .iter()
            .map(|sql| p.execute(s, sql, &[]).unwrap())
            .collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn batch_preserves_read_write_order_per_session() {
        let p = proxy(ProxyConfig {
            enforce_writes: true,
            ..Default::default()
        });
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let read = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        let items: Vec<BatchItem> = [read, "DELETE FROM Attendance WHERE UId = ?MyUId", read]
            .iter()
            .map(|sql| BatchItem {
                session: s,
                stmt: BatchStmt::Sql((*sql).to_string()),
                bindings: Vec::new(),
            })
            .collect();
        let results: Vec<ProxyResponse> = p
            .execute_batch(&items)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        // The read before the enforced delete sees the row; the read
        // after it does not: batch order is session order.
        assert_eq!(results[0].rows().unwrap().len(), 1);
        assert_eq!(results[1], ProxyResponse::Affected(1));
        assert_eq!(results[2].rows().unwrap().len(), 0);
    }

    #[test]
    fn unchecked_statements_are_audited() {
        let p = proxy(ProxyConfig::default());
        p.execute_unchecked("SELECT * FROM Events", &[]).unwrap();
        p.execute_unchecked("DELETE FROM Attendance WHERE UId = 1", &[])
            .unwrap();
        assert_eq!(p.stats().unchecked_statements, 2);
    }

    #[test]
    fn unparseable_sql_is_blocked_not_error() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p.execute(s, "SELEC whoops", &[]).unwrap();
        assert!(matches!(
            r,
            ProxyResponse::Blocked(DenyReason::ParseError(_))
        ));
    }

    #[test]
    fn stats_count_blocked() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
            .unwrap();
        assert_eq!(p.stats().blocked, 1);
    }

    #[test]
    fn deny_cache_serves_repeats_and_invalidates_on_new_facts() {
        let config = ProxyConfig {
            template_cache: false,
            ..Default::default()
        };
        let p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let fetch = "SELECT * FROM Events WHERE EId = 2";

        // Two denials: the second is served from the deny cache.
        assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
        assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
        assert_eq!(p.stats().deny_cache_hits, 1);

        // Learning a new fact invalidates the cached denial: the probe
        // returns a row, and the fetch flips to allowed.
        let probe = "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2";
        assert!(p.execute(s, probe, &[]).unwrap().is_allowed());
        assert!(p.execute(s, fetch, &[]).unwrap().is_allowed());
    }

    #[test]
    fn ended_session_is_rejected() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.end_session(s);
        let err = p
            .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
            .unwrap_err();
        assert_eq!(err, CoreError::NoSuchSession(s));
    }

    #[test]
    fn end_session_is_idempotent() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        assert_eq!(p.session_count(), 1);
        assert!(p.end_session(s), "first end reports the session was live");
        assert!(!p.end_session(s), "second end is a no-op");
        assert!(!p.end_session(s), "and stays a no-op");
        assert_eq!(p.session_count(), 0);
    }

    #[test]
    fn unknown_session_is_a_typed_error_everywhere() {
        let p = proxy(ProxyConfig::default());
        // Never-begun id: execute and trace must both fail typed, not panic
        // or return something empty.
        let bogus = 999_999;
        let err = p.execute(bogus, "SELECT * FROM Events", &[]).unwrap_err();
        assert_eq!(err, CoreError::NoSuchSession(bogus));
        assert_eq!(p.session_trace(bogus).unwrap_err(), err);
        assert!(!p.end_session(bogus));
    }

    #[test]
    fn execute_after_end_fails_even_with_warm_caches() {
        // An ended session must be rejected on every decision path,
        // including ones short-circuited by the global template cache.
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        assert!(p.execute(s, sql, &[]).unwrap().is_allowed());
        p.end_session(s);
        let err = p.execute(s, sql, &[]).unwrap_err();
        assert_eq!(err, CoreError::NoSuchSession(s));
    }

    #[test]
    fn end_sessions_sweeps_only_live_ids() {
        let p = proxy(ProxyConfig::default());
        let s1 = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let s2 = p.begin_session(vec![("MyUId".into(), Value::Int(2))]);
        let s3 = p.begin_session(vec![("MyUId".into(), Value::Int(3))]);
        p.end_session(s2);
        assert_eq!(p.end_sessions([s1, s2, s3, 424_242]), 2);
        assert_eq!(p.session_count(), 0);
    }

    #[test]
    fn stats_report_latency_from_the_histogram() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        for _ in 0..5 {
            p.execute(s, sql, &[]).unwrap();
        }
        let lat = p.stats().latency;
        assert_eq!(lat.count, 5, "every execute records one sample");
        assert!(lat.p50_ns > 0 && lat.p99_ns >= lat.p50_ns);
        assert!(lat.max_ns > 0 && lat.sum_ns >= lat.max_ns);
    }

    #[test]
    fn parallel_sessions_decide_concurrently() {
        // Smoke test for the &self path: many threads, each with its own
        // session, all executing the same templates simultaneously.
        let p = proxy(ProxyConfig::default());
        std::thread::scope(|scope| {
            for uid in [1i64, 2, 1, 2] {
                let p = &p;
                scope.spawn(move || {
                    let s = p.begin_session(vec![("MyUId".into(), Value::Int(uid))]);
                    for _ in 0..20 {
                        let r = p
                            .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
                            .unwrap();
                        assert!(r.is_allowed());
                    }
                    p.end_session(s);
                });
            }
        });
        let stats = p.stats();
        assert_eq!(stats.allowed, 80);
        assert_eq!(stats.blocked, 0);
        assert_eq!(
            stats.template_proofs + stats.template_cache_hits,
            80,
            "every allow came from the template layer: {stats:?}"
        );
    }

    #[test]
    fn journal_records_tier_provenance() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        p.execute(s, sql, &[]).unwrap(); // fresh template proof
        p.execute(s, sql, &[]).unwrap(); // template-cache hit
        let fetch = "SELECT * FROM Events WHERE EId = 3";
        p.execute(s, fetch, &[]).unwrap(); // concrete proof, denied
        p.execute(s, fetch, &[]).unwrap(); // deny-cache hit, negative flag

        let events = p.journal().events_since(0, usize::MAX);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].tier, CacheTier::TemplateProof);
        assert_eq!(events[0].verdict, Verdict::Allowed);
        assert_eq!(events[1].tier, CacheTier::TemplateCache);
        assert_eq!(events[2].tier, CacheTier::ConcreteProof);
        assert_eq!(events[2].verdict, Verdict::Blocked);
        // The first fetch pays the fresh template proof (which fails and
        // seeds the negative cache); only the repeat short-circuits on it.
        assert!(!events[2].negative_template_hit);
        assert_eq!(events[3].tier, CacheTier::DenyCache);
        assert!(events[3].negative_template_hit);
        assert!(events.iter().all(|e| e.session == s));
        assert_eq!(events[0].template_hash, template_hash(sql));
        assert_eq!(events[2].template_hash, template_hash(fetch));

        // Phase timings cover the work that actually ran, and the lap sum
        // never exceeds the end-to-end measurement.
        assert!(events[0].phase(Phase::Proof) > 0, "{events:?}");
        assert!(events[0].phase(Phase::DbExec) > 0);
        assert_eq!(events[1].phase(Phase::Proof), 0, "cache hit proves nothing");
        for e in &events {
            assert!(e.phase_ns.iter().sum::<u64>() <= e.total_ns, "{e:?}");
        }
    }

    #[test]
    fn parse_error_event_is_uncached_blocked() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(s, "SELEC whoops", &[]).unwrap();
        let events = p.journal().events_since(0, usize::MAX);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].verdict, Verdict::Blocked);
        assert_eq!(events[0].tier, CacheTier::Uncached);
        assert!(events[0].phase(Phase::Parse) > 0);
        assert_eq!(events[0].phase(Phase::Proof), 0);
    }

    #[test]
    fn no_such_session_emits_no_event() {
        let p = proxy(ProxyConfig::default());
        p.execute(999, "SELECT * FROM Events", &[]).unwrap_err();
        assert_eq!(p.journal().published(), 0);
    }

    #[test]
    fn observe_off_disables_journal_and_phase_histograms() {
        let config = ProxyConfig {
            observe: false,
            ..Default::default()
        };
        let p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
            .unwrap();
        assert_eq!(p.journal().published(), 0);
        assert!(p.phase_snapshots().iter().all(|s| s.count == 0));
        // The aggregate latency histogram still records (it predates the
        // observability layer and the benches depend on it).
        assert_eq!(p.stats().latency.count, 1);
    }

    #[test]
    fn metrics_text_exposes_expected_families() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
            .unwrap();
        p.execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
            .unwrap();
        p.execute(
            s,
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (9, 9, 'x')",
            &[],
        )
        .unwrap();
        p.execute_unchecked("SELECT 1 FROM Events", &[]).unwrap();
        let text = p.metrics_text();
        assert!(text.contains("bep_decisions_total{decision=\"allowed\"} 1\n"));
        assert!(text.contains("bep_decisions_total{decision=\"blocked\"} 1\n"));
        assert!(text.contains("# TYPE bep_write_decisions_total counter\n"));
        assert!(text.contains("bep_write_decisions_total{verdict=\"allowed\"} 0\n"));
        assert!(text.contains("bep_write_decisions_total{verdict=\"blocked\"} 0\n"));
        assert!(text.contains("bep_write_decisions_total{verdict=\"passthrough\"} 1\n"));
        assert!(text.contains("# TYPE bep_unchecked_statements_total counter\n"));
        assert!(text.contains("bep_unchecked_statements_total 1\n"));
        assert!(text.contains("# TYPE bep_cache_hits_total counter\n"));
        assert!(text.contains("# TYPE bep_decision_latency_ns summary\n"));
        assert!(text.contains("bep_decision_latency_ns_count 3\n"));
        assert!(text.contains("bep_sessions 1\n"));
        assert!(text.contains("bep_journal_published 3\n"));
        assert!(text.contains("bep_journal_evicted 0\n"));
        assert!(text.contains("bep_phase_latency_ns{phase=\"parse\",quantile=\"0.5\"}"));
        assert!(text.contains("bep_phase_latency_ns_count{phase=\"proof\"}"));
        assert!(text.contains("# TYPE bep_process_resident_bytes gauge\n"));
        assert!(text.contains("# TYPE bep_process_vm_hwm_bytes gauge\n"));
        assert!(text.contains("# TYPE bep_cache_evictions_total counter\n"));
        assert!(text.contains("bep_cache_evictions_total{tier=\"plan\"} 0\n"));
        assert!(text.contains("bep_cache_evictions_total{tier=\"session-allow\"} 0\n"));
        assert!(text.contains("bep_cache_evictions_total{tier=\"session-deny\"} 0\n"));
        assert!(text.contains("bep_snapshot_entries{outcome=\"loaded\"} 0\n"));
        assert!(text.contains("bep_snapshot_entries{outcome=\"rejected\"} 0\n"));
        assert!(text.contains("# TYPE bep_snapshot_bytes gauge\n"));
        assert!(text.contains("# TYPE bep_snapshot_timestamp_seconds gauge\n"));
    }

    #[test]
    fn incremental_session_accounting_matches_exact_walk() {
        let p = proxy(ProxyConfig::default());
        let mut sessions = Vec::new();
        for uid in 1..=3 {
            let s = p.begin_session(vec![("MyUId".into(), Value::Int(uid))]);
            // A mix of allows, denials (deny-cache writes, counterexample
            // CQ retained), probes (trace facts), and repeats (cache hits).
            p.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
                .unwrap();
            p.execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
                .unwrap();
            p.execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
                .unwrap();
            p.execute(
                s,
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
                &[],
            )
            .unwrap();
            sessions.push(s);
        }
        assert_eq!(
            p.sessions_heap_bytes_fast(),
            p.sessions_heap_bytes(),
            "incremental account drifts from the exact walk"
        );
        // Ending sessions must subtract their bytes (the gauge regression
        // this PR fixes): after all end, only empty shard tables remain.
        for s in sessions {
            assert!(p.end_session(s));
        }
        assert_eq!(p.sessions_heap_bytes_fast(), p.sessions_heap_bytes());
        assert_eq!(p.session_count(), 0);
        let residual = p.sessions_heap_bytes();
        let tables_only: usize = (0..SESSION_SHARDS)
            .map(|i| p.shards[i].read().capacity() * std::mem::size_of::<(u64, SessionState)>())
            .sum();
        assert_eq!(residual, tables_only, "ended sessions left bytes behind");
    }

    #[test]
    fn compaction_does_not_resurrect_stale_denials() {
        // With the deny cache stamped by fact *count* this sequence could
        // go stale: duplicate probes push then compact away facts, so the
        // count can repeat while the knowledge changed. The version stamp
        // is monotone through both pushes and compaction removals.
        for compaction in [false, true] {
            let p = proxy(ProxyConfig {
                template_cache: false,
                compaction,
                ..Default::default()
            });
            let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
            let fetch = "SELECT * FROM Events WHERE EId = 2";
            let probe = "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2";
            assert!(!p.execute(s, fetch, &[]).unwrap().is_allowed());
            assert!(p.execute(s, probe, &[]).unwrap().is_allowed());
            assert!(p.execute(s, probe, &[]).unwrap().is_allowed());
            assert!(
                p.execute(s, fetch, &[]).unwrap().is_allowed(),
                "stale denial served (compaction={compaction})"
            );
        }
    }

    #[test]
    fn proxy_snapshot_roundtrip_preloads_the_plan_cache() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bep-proxy-snap-{}.bin", std::process::id()));
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";

        let p1 = proxy(ProxyConfig::default());
        let s = p1.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p1.execute(s, sql, &[]).unwrap();
        let save = p1.save_snapshot(&path).unwrap();
        assert_eq!(save.entries, 1);

        let p2 = proxy(ProxyConfig::default());
        assert!(p2.plan_cache().get(sql).is_none(), "fresh proxy is cold");
        let report = p2.load_snapshot(&path).unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.rejected, 0);
        let plan = p2.plan_cache().get(sql).expect("snapshot preloaded plan");
        assert!(matches!(
            plan.select().unwrap().template,
            Some(TemplateVerdict::Allowed(_))
        ));
        // The warm plan must decide identically to a cold compile.
        let s2 = p2.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        assert!(p2.execute(s2, sql, &[]).unwrap().is_allowed());
        let text = p2.metrics_text();
        assert!(
            text.contains("bep_snapshot_entries{outcome=\"loaded\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("bep_snapshot_bytes"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_gauges_read_procfs() {
        // On Linux hosts procfs is present and a running process has a
        // nonzero RSS; elsewhere the reading degrades to zero.
        let m = crate::obs::read_process_memory();
        if std::path::Path::new("/proc/self/statm").exists() {
            assert!(m.resident_bytes > 0, "{m:?}");
            assert!(m.peak_resident_bytes >= m.resident_bytes / 2, "{m:?}");
        }
    }

    #[test]
    fn stats_and_metrics_read_the_same_atomics() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        for _ in 0..3 {
            p.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
                .unwrap();
        }
        let stats = p.stats();
        let text = p.metrics_text();
        assert!(text.contains(&format!(
            "bep_decisions_total{{decision=\"allowed\"}} {}\n",
            stats.allowed
        )));
        assert!(text.contains(&format!(
            "bep_cache_hits_total{{tier=\"template\"}} {}\n",
            stats.template_cache_hits
        )));
    }

    #[test]
    fn concrete_key_is_order_insensitive_and_discriminates() {
        let h = template_hash("SELECT * FROM Events WHERE EId = ?e");
        let a = ("a".to_string(), Value::Int(1));
        let b = ("b".to_string(), Value::str("x"));
        let k1 = ConcreteKey::new(h, &[a.clone(), b.clone()]);
        let k2 = ConcreteKey::new(h, &[b.clone(), a.clone()]);
        assert_eq!(k1, k2, "binding order must not split cache entries");
        assert_ne!(k1, ConcreteKey::new(h ^ 1, &[a.clone(), b.clone()]));
        assert_ne!(
            k1,
            ConcreteKey::new(h, &[a.clone(), ("b".to_string(), Value::str("y"))])
        );
        assert_ne!(k1, ConcreteKey::new(h, std::slice::from_ref(&a)));
        // Value type matters, not just bytes: Int(1) vs Bool(true) vs "1".
        assert_ne!(
            ConcreteKey::new(h, &[("a".to_string(), Value::Int(1))]),
            ConcreteKey::new(h, &[("a".to_string(), Value::Bool(true))])
        );
    }

    #[test]
    fn naive_path_decides_identically_without_memoizing_templates() {
        // plan_cache = false is the from-scratch baseline: same verdicts,
        // but every template-allowed request pays a fresh symbolic proof.
        let config = ProxyConfig {
            plan_cache: false,
            ..Default::default()
        };
        let p = proxy(config);
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        for _ in 0..3 {
            assert!(p.execute(s, sql, &[]).unwrap().is_allowed());
        }
        let stats = p.stats();
        assert_eq!(stats.template_proofs, 3, "no memoization on the naive path");
        assert_eq!(stats.template_cache_hits, 0);
        assert_eq!(p.plan_cache().len(), 0, "no plans are compiled");

        // The trace flow still holds end to end: the Attendance probe
        // above already witnessed that user 1 attends event 2, so fetching
        // event 2 is allowed while event 3 stays blocked.
        assert!(!p
            .execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
            .unwrap()
            .is_allowed());
        assert!(p
            .execute(s, "SELECT * FROM Events WHERE EId = 2", &[])
            .unwrap()
            .is_allowed());
    }

    #[test]
    fn prepare_then_execute_planned_skips_the_proof() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        let plan = p.prepare(sql);
        assert_eq!(plan.hash(), template_hash(sql));
        assert_eq!(p.stats().template_proofs, 0, "prepare is not a decision");
        let r = p.execute_planned(s, &plan, &[]).unwrap();
        assert!(r.is_allowed());
        let stats = p.stats();
        // Replaying a prepared template-allowed plan is a cache hit, never
        // a proof — the proof happened (uncounted) at prepare time.
        assert_eq!(stats.template_proofs, 0);
        assert_eq!(stats.template_cache_hits, 1);
        // `execute` of the same SQL reuses the prepared plan.
        assert!(p.execute(s, sql, &[]).unwrap().is_allowed());
        assert_eq!(p.stats().template_cache_hits, 2);
        assert_eq!(p.plan_cache().len(), 1);
    }

    #[test]
    fn execute_planned_checks_the_session() {
        let p = proxy(ProxyConfig::default());
        let plan = p.prepare("SELECT EId FROM Attendance WHERE UId = ?MyUId");
        let err = p.execute_planned(4242, &plan, &[]).unwrap_err();
        assert_eq!(err, CoreError::NoSuchSession(4242));
        // A prepared parse error replays as Blocked, like `execute`.
        let bad = p.prepare("SELEC whoops");
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let r = p.execute_planned(s, &bad, &[]).unwrap();
        assert!(matches!(
            r,
            ProxyResponse::Blocked(DenyReason::ParseError(_))
        ));
    }

    #[test]
    fn planned_and_naive_proxies_agree_query_by_query() {
        // Differential smoke (the full generated-workload version lives in
        // tests/differential.rs): every (sql, bindings) in a mixed script
        // gets the same verdict, deny reason, and rows from a planned proxy
        // and a naive one.
        let planned = proxy(ProxyConfig::default());
        let naive = proxy(ProxyConfig {
            plan_cache: false,
            template_cache: false,
            session_cache: false,
            ..Default::default()
        });
        let script: &[(&str, &[(&str, i64)])] = &[
            (
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
                &[("event", 3)],
            ),
            ("SELECT * FROM Events WHERE EId = ?event", &[("event", 3)]),
            (
                "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
                &[("event", 2)],
            ),
            ("SELECT * FROM Events WHERE EId = ?event", &[("event", 2)]),
            ("SELECT * FROM Events WHERE EId = ?event", &[("event", 2)]),
            ("SELECT COUNT(*) FROM Events", &[]),
            ("SELEC whoops", &[]),
            ("SELECT EId FROM Attendance WHERE UId = ?MyUId", &[]),
        ];
        let sp = planned.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let sn = naive.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        for (sql, binds) in script {
            let binds: Vec<(String, Value)> = binds
                .iter()
                .map(|(k, v)| (k.to_string(), Value::Int(*v)))
                .collect();
            let a = planned.execute(sp, sql, &binds).unwrap();
            let b = naive.execute(sn, sql, &binds).unwrap();
            assert_eq!(a, b, "diverged on {sql}");
        }
    }

    #[test]
    fn spans_summarize_solver_work_onto_events() {
        let p = proxy(ProxyConfig {
            spans: true,
            span_sample_every: 1,
            exemplars_per_template: 2,
            ..ProxyConfig::default()
        });
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();
        p.execute(
            s,
            "SELECT * FROM Events WHERE EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();

        let events = p.journal().recent(usize::MAX, None);
        assert_eq!(events.len(), 2);
        // Every span-enabled decision carries at least the root span.
        assert!(events.iter().all(|e| e.span.spans >= 1), "{events:?}");
        // The trace-dependent Q2 runs a concrete proof: real solver work.
        let q2 = events.last().unwrap();
        assert!(
            q2.span.containment_checks > 0 || q2.span.rewrite_iterations > 0,
            "concrete proof left no solver footprint: {:?}",
            q2.span
        );
        // With sampling at 1, both full trees were captured as exemplars.
        assert_eq!(p.exemplars().count(), 2);
        let slow = p.exemplars().slowest(q2.template_hash);
        assert_eq!(slow.len(), 1);
        assert!(!slow[0].spans.is_empty());
        assert_eq!(slow[0].spans[0].kind, SpanKind::Decision);
        // The exposition carries the new families.
        let text = p.metrics_text();
        assert!(text.contains("bep_span_solver_total{counter=\"containment-checks\"}"));
        assert!(text.contains("bep_mem_bytes{component=\"plan-cache\"}"));
        assert!(text.contains("bep_mem_bytes{component=\"session-state\"}"));
        assert!(text.contains("bep_mem_bytes{component=\"journal\"}"));
        assert!(text.contains("bep_mem_bytes{component=\"exemplars\"}"));
        assert!(text.contains("bep_exemplar_count 2\n"), "{text}");
        assert!(text.contains("bep_policy_lint_warnings 0\n"));
    }

    #[test]
    fn spans_off_leave_summaries_empty_and_capture_nothing() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();
        let events = p.journal().recent(usize::MAX, None);
        assert!(events.iter().all(|e| e.span.is_empty()), "{events:?}");
        assert_eq!(p.exemplars().count(), 0);
        assert!(!crate::span::active(), "no span tree may leak");
    }

    #[test]
    fn batch_decisions_carry_spans_and_never_leak_the_tree() {
        let p = proxy(ProxyConfig {
            spans: true,
            span_sample_every: 0, // summaries only, no capture
            ..ProxyConfig::default()
        });
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        let items: Vec<BatchItem> = (0..3)
            .map(|_| BatchItem {
                session: s,
                stmt: BatchStmt::Sql("SELECT EId FROM Attendance WHERE UId = ?MyUId".into()),
                bindings: Vec::new(),
            })
            .collect();
        for r in p.execute_batch(&items) {
            assert!(r.unwrap().is_allowed());
        }
        assert!(!crate::span::active(), "batch left a span tree open");
        let events = p.journal().recent(usize::MAX, None);
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.span.spans >= 1));
        assert_eq!(p.exemplars().count(), 0, "capture disabled");
    }

    #[test]
    fn ending_a_session_records_its_state_size() {
        let p = proxy(ProxyConfig::default());
        let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);
        p.execute(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();
        let live = p.session_heap_bytes(s).expect("session is live");
        assert!(live > 0, "a traced session owns heap");
        assert!(p.sessions_heap_bytes() >= live);
        assert!(p.end_session(s));
        assert_eq!(p.session_heap_bytes(s), None);
        let text = p.metrics_text();
        assert!(text.contains("bep_session_state_bytes_count 1\n"), "{text}");
        // The recorded size is the session's final footprint (p50 of one
        // sample sits in the same log bucket as the live reading).
        assert!(text.contains("bep_session_state_bytes_sum"), "{text}");
    }

    #[test]
    fn lint_counter_tracks_warnings() {
        // Only V1 (projecting EId alone): selecting Notes can never be
        // covered, which is exactly what the lint warns about.
        let db = calendar_db();
        let schema = schema_of_database(&db);
        let policy = Policy::from_sql(
            &schema,
            &[("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId")],
        )
        .unwrap();
        let p = SqlProxy::new(
            db,
            ComplianceChecker::new(schema, policy),
            ProxyConfig::default(),
        );
        let warnings = p.lint_templates([
            "SELECT EId FROM Attendance WHERE UId = ?MyUId",
            "SELECT Notes FROM Attendance WHERE UId = ?MyUId",
        ]);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("Attendance.Notes"), "{}", warnings[0]);
        let text = p.metrics_text();
        assert!(text.contains("bep_policy_lint_warnings 1\n"), "{text}");
    }
}
