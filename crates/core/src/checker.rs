//! The trace-aware compliance checker (the Blockaid-style decision
//! procedure of §2.2).
//!
//! A `SELECT` is *compliant* when its answer is guaranteed to reveal no more
//! than the policy views do, given the session's query history. The
//! sufficient condition implemented here: every disjunct of the query's
//! conjunctive form has a rewriting over the views whose expansion is
//! equivalent to the disjunct *over all databases containing the trace
//! facts* ([`qlogic::equivalent_rewriting`]).
//!
//! Soundness: an `Allowed` answer always implies the answer is determined by
//! view contents + trace facts. Completeness matches the underlying
//! containment machinery — total on pure conjunctive queries (which covers
//! all of the paper's examples), partial with comparisons.
//!
//! Two check levels exist:
//!
//! * [`ComplianceChecker::check_template`] decides a query with its
//!   parameters left symbolic. A positive answer holds for *every* session,
//!   so proxies cache it globally — the parameterized decision cache that
//!   makes Blockaid-style enforcement cheap in steady state.
//! * [`ComplianceChecker::check_concrete`] decides one instantiated query
//!   given a session's trace facts.

use std::sync::Arc;

use qlogic::{equivalent_rewriting_deps, sql_to_ucq, Cq, Dependencies, RelSchema, Ucq, ViewSet};
use sqlir::{Query, Value};

use crate::decision::{Decision, DecisionSource, DenyReason};
use crate::error::CoreError;
use crate::policy::Policy;
use crate::trace::Trace;

/// The compliance checker: schema + policy, both immutable after creation.
///
/// The schema's dependencies and the policy's symbolic view set are
/// computed once here, not per check — the hot path shares them by
/// reference ([`Arc`] for the views) instead of re-deriving and cloning
/// every policy view on every decision.
#[derive(Debug, Clone)]
pub struct ComplianceChecker {
    schema: RelSchema,
    policy: Policy,
    deps: Dependencies,
    symbolic: Result<Arc<ViewSet>, CoreError>,
}

impl ComplianceChecker {
    /// Creates a checker.
    pub fn new(schema: RelSchema, policy: Policy) -> ComplianceChecker {
        let deps = schema.dependencies();
        let symbolic = policy.symbolic_views().map(Arc::new);
        ComplianceChecker {
            schema,
            policy,
            deps,
            symbolic,
        }
    }

    /// The schema in use.
    pub fn schema(&self) -> &RelSchema {
        &self.schema
    }

    /// The policy in use.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The schema's declared dependencies, derived once at construction.
    pub fn dependencies(&self) -> &Dependencies {
        &self.deps
    }

    /// The symbolic view snapshot shared by every template-level decision
    /// (an `Arc`, so callers snapshot without cloning any view).
    pub fn symbolic_views(&self) -> Result<Arc<ViewSet>, CoreError> {
        self.symbolic.clone()
    }

    /// Proves one already-instantiated disjunct over the given views and
    /// facts: `Some(certificate)` when the disjunct is unsatisfiable
    /// (reveals nothing) or has an equivalent rewriting. This is the
    /// per-disjunct kernel [`check_concrete`](Self::check_concrete) loops
    /// over; compiled plans call it directly with a pruned view subset.
    pub fn prove_disjunct(&self, d: &Cq, views: &ViewSet, facts: &[qlogic::Atom]) -> Option<Cq> {
        if !qlogic::satisfiable(d) {
            return Some(d.clone());
        }
        equivalent_rewriting_deps(d, views, facts, &self.deps)
    }

    /// Replays a precompiled certificate for one instantiated disjunct:
    /// `Some(rw)` when the disjunct is unsatisfiable, or when `expansion`
    /// (the template rewriting's precompiled view expansion, instantiated
    /// with the same bindings as `d` and `rw`) is equivalent to `d` over
    /// all databases containing `facts`. This is the verification tail of
    /// the full rewriting search with everything else — candidate
    /// generation, view instantiation, normalization, expansion — already
    /// amortized into the plan. `None` means the certificate did not
    /// verify; the caller falls back to the full
    /// [`prove_disjunct`](Self::prove_disjunct) search, so replay can never
    /// change a decision, only skip work.
    pub fn replay_certificate(
        &self,
        d: &Cq,
        rw: Cq,
        expansion: &Cq,
        facts: &[qlogic::Atom],
    ) -> Option<Cq> {
        if !qlogic::satisfiable(d) {
            return Some(d.clone());
        }
        (qlogic::contained_given_deps(d, expansion, facts, &self.deps)
            && qlogic::contained_given_deps(expansion, d, facts, &self.deps))
        .then_some(rw)
    }

    /// Translates a SQL query to its conjunctive form.
    pub fn translate(&self, q: &Query) -> Result<Ucq, CoreError> {
        Ok(sql_to_ucq(&self.schema, q)?)
    }

    /// Decides a query with parameters left symbolic; `Allowed` holds for
    /// every session and any history.
    pub fn check_template(&self, q: &Query) -> Decision {
        let ucq = match self.translate(q) {
            Ok(u) => u,
            Err(e) => {
                return Decision::Denied {
                    reason: DenyReason::OutOfFragment(e.to_string()),
                }
            }
        };
        let views = match &self.symbolic {
            Ok(v) => v,
            Err(e) => {
                return Decision::Denied {
                    reason: DenyReason::OutOfFragment(e.to_string()),
                }
            }
        };
        self.decide(&ucq, views, &[], DecisionSource::TemplateProof)
    }

    /// Decides an instantiated query for one session, using its trace.
    pub fn check_concrete(
        &self,
        q: &Query,
        bindings: &[(String, Value)],
        trace: &Trace,
    ) -> Decision {
        let ucq = match self.translate(q) {
            Ok(u) => u,
            Err(e) => {
                return Decision::Denied {
                    reason: DenyReason::OutOfFragment(e.to_string()),
                }
            }
        };
        let ucq = Ucq {
            disjuncts: ucq
                .disjuncts
                .iter()
                .map(|d| d.instantiate(bindings))
                .collect(),
        };
        let views = match self.policy.instantiate(bindings) {
            Ok(v) => v,
            Err(e) => {
                return Decision::Denied {
                    reason: DenyReason::OutOfFragment(e.to_string()),
                }
            }
        };
        self.decide(&ucq, &views, trace.facts(), DecisionSource::ConcreteProof)
    }

    fn decide(
        &self,
        ucq: &Ucq,
        views: &qlogic::ViewSet,
        facts: &[qlogic::Atom],
        source: DecisionSource,
    ) -> Decision {
        let mut rewritings = Vec::with_capacity(ucq.disjuncts.len());
        for d in &ucq.disjuncts {
            match self.prove_disjunct(d, views, facts) {
                Some(rw) => rewritings.push(rw),
                None => {
                    return Decision::Denied {
                        reason: DenyReason::NotDetermined { query: d.clone() },
                    }
                }
            }
        }
        Decision::Allowed { source, rewritings }
    }

    /// Convenience: checks an instantiated conjunctive query directly
    /// (used by the diagnosis tooling, which manipulates CQs, not SQL).
    pub fn check_cq(&self, cq: &Cq, bindings: &[(String, Value)], trace: &Trace) -> Decision {
        let views = match self.policy.instantiate(bindings) {
            Ok(v) => v,
            Err(e) => {
                return Decision::Denied {
                    reason: DenyReason::OutOfFragment(e.to_string()),
                }
            }
        };
        let inst = cq.instantiate(bindings);
        if !qlogic::satisfiable(&inst) {
            return Decision::Allowed {
                source: DecisionSource::ConcreteProof,
                rewritings: vec![inst],
            };
        }
        match equivalent_rewriting_deps(&inst, &views, trace.facts(), &self.deps) {
            Some(rw) => Decision::Allowed {
                source: DecisionSource::ConcreteProof,
                rewritings: vec![rw],
            },
            None => Decision::Denied {
                reason: DenyReason::NotDetermined { query: inst },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Observation;
    use sqlir::parse_query;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    fn checker() -> ComplianceChecker {
        let policy = Policy::from_sql(
            &schema(),
            &[
                ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
                (
                    "V2",
                    "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                     WHERE a.UId = ?MyUId",
                ),
            ],
        )
        .unwrap();
        ComplianceChecker::new(schema(), policy)
    }

    fn bindings() -> Vec<(String, Value)> {
        vec![("MyUId".to_string(), Value::Int(1))]
    }

    #[test]
    fn example_2_1_full_scenario() {
        let c = checker();
        let mut trace = Trace::new();

        // Q1 is allowed in isolation (covered by V1).
        let q1 = parse_query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").unwrap();
        let d1 = c.check_concrete(&q1, &bindings(), &trace);
        assert!(d1.is_allowed(), "{d1:?}");

        // Q2 is blocked in isolation.
        let q2 = parse_query("SELECT * FROM Events WHERE EId = 2").unwrap();
        let d2 = c.check_concrete(&q2, &bindings(), &trace);
        assert!(!d2.is_allowed(), "Q2 must be blocked without history");

        // Record Q1 returning one row; Q2 becomes allowed.
        let cq1 = c
            .translate(&q1)
            .unwrap()
            .disjuncts
            .remove(0)
            .instantiate(&bindings());
        trace.record(cq1, Observation::NonEmpty);
        let d2b = c.check_concrete(&q2, &bindings(), &trace);
        assert!(
            d2b.is_allowed(),
            "Q2 must be allowed given Q1's result: {d2b:?}"
        );
    }

    #[test]
    fn template_level_decision() {
        let c = checker();
        // Q1's template (any user, any event) is allowed for all sessions:
        // V1 covers the probe for the session's own user id.
        let q1t =
            parse_query("SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?arg0").unwrap();
        assert!(c.check_template(&q1t).is_allowed());

        // Q2's template is not allowed unconditionally.
        let q2t = parse_query("SELECT * FROM Events WHERE EId = ?arg0").unwrap();
        assert!(!c.check_template(&q2t).is_allowed());
    }

    #[test]
    fn probing_other_users_is_blocked() {
        let c = checker();
        let trace = Trace::new();
        // User 1 probing user 2's attendance must be blocked.
        let q = parse_query("SELECT 1 FROM Attendance WHERE UId = 2 AND EId = 5").unwrap();
        assert!(!c.check_concrete(&q, &bindings(), &trace).is_allowed());
    }

    #[test]
    fn out_of_fragment_blocks_conservatively() {
        let c = checker();
        let trace = Trace::new();
        let q = parse_query("SELECT COUNT(*) FROM Events").unwrap();
        let d = c.check_concrete(&q, &bindings(), &trace);
        assert!(matches!(
            d.deny_reason(),
            Some(DenyReason::OutOfFragment(_))
        ));
    }

    #[test]
    fn union_query_needs_all_disjuncts() {
        let c = checker();
        let trace = Trace::new();
        // EId IN (my events ∪ arbitrary probe): the second disjunct is the
        // blocked one, so the whole union is blocked.
        let q = parse_query("SELECT 1 FROM Attendance WHERE UId = 1 AND (EId = 2 OR Notes = 'x')")
            .unwrap();
        // Both disjuncts are within V1's coverage? The Notes = 'x' disjunct
        // constrains an unexported column — blocked.
        let d = c.check_concrete(&q, &bindings(), &trace);
        assert!(!d.is_allowed());
    }

    #[test]
    fn unsatisfiable_query_is_allowed() {
        let c = checker();
        let trace = Trace::new();
        let q = parse_query("SELECT 1 FROM Events WHERE EId = 1 AND EId = 2").unwrap();
        assert!(c.check_concrete(&q, &bindings(), &trace).is_allowed());
    }
}
