//! Write-path enforcement: deciding whether a mutation's written rows are
//! contained in an updatable policy view.
//!
//! The read path asks "is this query's *answer* determined by the views?";
//! the write path asks the dual question: "are the rows this statement
//! writes (or deletes) *contained* in a view the session may write
//! through?" Containment is decided by CQ reasoning over the hypothetical
//! post-state — the trace's known facts plus the written rows themselves —
//! reusing the same homomorphism engine the read path runs on.
//!
//! Like reads, writes are decided at two levels:
//!
//! * **template** — parameters stay symbolic. A template-level `Allowed`
//!   holds for every session and every history (the proof only equates
//!   terms that are identical under any instantiation), so it is cached in
//!   the compiled plan and write traffic pays no per-request solver cost.
//!   A template-level `NeverCovered` is equally session-independent: the
//!   failing positions are constants or hidden columns no binding or trace
//!   fact can repair.
//! * **concrete** — parameters are instantiated with session bindings and
//!   the trace's facts join the containment target. Runs only when the
//!   template was `Undecidable`.
//!
//! The model is conservative where it must be: columns a statement does not
//! determine (unassigned `UPDATE` columns, non-literal expressions) become
//! fresh variables that unify only with view columns the policy leaves
//! free. "Cannot prove" means "block", exactly as on the read path.

use crate::policy::ViewDef;
use qlogic::cq::apply_atom;
use qlogic::sym::Sym;
use qlogic::{
    find_homomorphism, Atom, CmpContext, Comparison, Cq, HomProblem, RelSchema, Subst, Term,
};
use sqlir::{BinaryOp, Expr, Param, Statement, Value};

/// Prefix for variables standing in for values a mutation does not
/// determine. `!` cannot begin a SQL identifier or a `sk` trace null, so
/// fresh variables can never collide with either namespace.
const FRESH_PREFIX: &str = "!w";

/// The session-independent verdict for a write template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteTemplateVerdict {
    /// Every instantiation's written rows are covered: allow without any
    /// per-request proof.
    Allowed,
    /// Coverage depends on session bindings or trace facts: decide
    /// concretely per request.
    Undecidable,
    /// No binding or history can cover the written rows (a constant
    /// mismatch or a hidden column): deny without a per-request proof.
    NeverCovered,
}

/// A compiled write template: the extracted written atoms and everything
/// the concrete tier needs to finish the decision.
#[derive(Debug, Clone)]
pub struct WriteTemplate {
    /// One atom per written (or deleted) row pattern, parameters symbolic,
    /// arguments in schema column order.
    pub atoms: Vec<Atom>,
    /// Fresh variables minted during extraction (pinned to themselves in
    /// containment proofs — they stand for one unknown value each).
    pub fresh: Vec<Sym>,
    /// Per written atom: indices of policy views with at least one body
    /// atom over the same relation (the only possible covers).
    pub candidates: Vec<Vec<usize>>,
    /// The template-level verdict.
    pub verdict: WriteTemplateVerdict,
    /// When `NeverCovered`: the index of the first uncoverable atom.
    pub uncovered: Option<usize>,
}

impl WriteTemplate {
    /// The uncovered written row as a CQ (for deny reasons / diagnosis).
    pub fn uncovered_query(&self) -> Option<Cq> {
        self.uncovered.map(|i| atom_query(&self.atoms[i]))
    }

    /// Approximate heap footprint, for plan-cache budgeting.
    pub fn heap_bytes(&self) -> usize {
        let atoms: usize = self
            .atoms
            .iter()
            .map(|a| std::mem::size_of::<Atom>() + a.args.len() * std::mem::size_of::<Term>())
            .sum();
        let cands: usize = self
            .candidates
            .iter()
            .map(|c| std::mem::size_of::<Vec<usize>>() + c.len() * std::mem::size_of::<usize>())
            .sum();
        atoms + cands + self.fresh.len() * std::mem::size_of::<Sym>()
    }
}

/// Wraps a written atom as a boolean-style CQ: head = the row's terms,
/// body = the atom itself.
pub fn atom_query(atom: &Atom) -> Cq {
    Cq::new(atom.args.clone(), vec![atom.clone()], Vec::new())
}

/// Extraction or classification failure; denied as out-of-fragment.
pub type WriteError = String;

// ---------------------------------------------------------------------------
// Extraction: Statement -> written atoms
// ---------------------------------------------------------------------------

struct FreshVars {
    counter: usize,
    minted: Vec<Sym>,
}

impl FreshVars {
    fn new() -> FreshVars {
        FreshVars {
            counter: 0,
            minted: Vec::new(),
        }
    }

    fn next(&mut self) -> Term {
        let sym = Sym::new(&format!("{FRESH_PREFIX}{}", self.counter));
        self.counter += 1;
        self.minted.push(sym);
        Term::Var(sym)
    }
}

/// The term a mutation expression determines, or a fresh variable when the
/// value is not statically known (arithmetic, subqueries, positional
/// parameters).
fn term_of_expr(expr: &Expr, fresh: &mut FreshVars) -> Term {
    match expr {
        Expr::Literal(v) => Term::constant(v),
        Expr::Param(Param::Named(name)) => Term::param(name.as_str()),
        _ => fresh.next(),
    }
}

/// Equality pins from a WHERE clause: `col = rigid` (either orientation)
/// among the top-level conjuncts. Non-equality predicates only narrow the
/// affected rows, so ignoring them over-approximates — sound.
fn where_pins(where_clause: &Option<Expr>, fresh: &mut FreshVars) -> Vec<(String, Term)> {
    let mut pins = Vec::new();
    let Some(clause) = where_clause else {
        return pins;
    };
    for conjunct in clause.conjuncts() {
        let Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } = conjunct
        else {
            continue;
        };
        let (col, value) = match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Column(c), v) if !matches!(v, Expr::Column(_)) => (&c.column, v),
            (v, Expr::Column(c)) if !matches!(v, Expr::Column(_)) => (&c.column, v),
            _ => continue,
        };
        let term = term_of_expr(value, fresh);
        // A fresh term pins nothing; leave the column fresh instead.
        if term.is_rigid() {
            pins.push((col.clone(), term));
        }
    }
    pins
}

/// Extracts the written-row atoms of a mutation. Arguments follow schema
/// column order. Errors (unknown table/column, arity mismatch) deny the
/// statement as out-of-fragment.
pub fn extract_written_atoms(
    stmt: &Statement,
    schema: &RelSchema,
) -> Result<(Vec<Atom>, Vec<Sym>), WriteError> {
    let mut fresh = FreshVars::new();
    let atoms = match stmt {
        Statement::Insert(ins) => {
            let columns = schema
                .columns(&ins.table)
                .map_err(|e| format!("INSERT target: {e}"))?;
            let explicit: Vec<&str> = if ins.columns.is_empty() {
                columns.iter().map(|c| c.as_str()).collect()
            } else {
                for c in &ins.columns {
                    if !columns.iter().any(|s| s == c) {
                        return Err(format!("INSERT column {c} not in table {}", ins.table));
                    }
                }
                ins.columns.iter().map(|c| c.as_str()).collect()
            };
            let mut atoms = Vec::with_capacity(ins.rows.len());
            for row in &ins.rows {
                if row.len() != explicit.len() {
                    return Err(format!(
                        "INSERT row has {} values for {} columns",
                        row.len(),
                        explicit.len()
                    ));
                }
                let args = columns
                    .iter()
                    .map(|col| match explicit.iter().position(|c| c == col) {
                        Some(i) => term_of_expr(&row[i], &mut fresh),
                        // Unlisted columns are stored as NULL.
                        None => Term::constant(&Value::Null),
                    })
                    .collect();
                atoms.push(Atom::new(ins.table.as_str(), args));
            }
            atoms
        }
        Statement::Update(upd) => {
            let columns = schema
                .columns(&upd.table)
                .map_err(|e| format!("UPDATE target: {e}"))?;
            for a in &upd.assignments {
                if !columns.contains(&a.column) {
                    return Err(format!(
                        "UPDATE column {} not in table {}",
                        a.column, upd.table
                    ));
                }
            }
            let pins = where_pins(&upd.where_clause, &mut fresh);
            let args = columns
                .iter()
                .map(|col| {
                    // Post-state value: the assignment if the column is
                    // assigned, else the (unchanged) WHERE-pinned value,
                    // else unknown.
                    if let Some(a) = upd.assignments.iter().find(|a| a.column == *col) {
                        term_of_expr(&a.value, &mut fresh)
                    } else if let Some((_, t)) = pins.iter().find(|(c, _)| c == col) {
                        *t
                    } else {
                        fresh.next()
                    }
                })
                .collect();
            vec![Atom::new(upd.table.as_str(), args)]
        }
        Statement::Delete(del) => {
            let columns = schema
                .columns(&del.table)
                .map_err(|e| format!("DELETE target: {e}"))?;
            let pins = where_pins(&del.where_clause, &mut fresh);
            let args = columns
                .iter()
                .map(|col| match pins.iter().find(|(c, _)| c == col) {
                    Some((_, t)) => *t,
                    None => fresh.next(),
                })
                .collect();
            vec![Atom::new(del.table.as_str(), args)]
        }
        Statement::Select(_) | Statement::CreateTable(_) => {
            return Err("not a row mutation".to_string());
        }
    };
    Ok((atoms, fresh.minted))
}

// ---------------------------------------------------------------------------
// Coverage: written atom vs. policy view
// ---------------------------------------------------------------------------

/// Outcome of trying to cover one written atom with one view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Cover {
    /// No binding or fact can make this view cover the atom.
    Dead,
    /// Might cover under some instantiation or with trace facts
    /// (template level only).
    Maybe,
    /// Proven covered.
    Covered,
}

/// Whether a term mismatch could still resolve at instantiation time:
/// only if both sides are rigid and a parameter is involved (two
/// parameters, or a parameter and a constant, may coincide once bound). A
/// fresh variable stands for an unprovable unknown — always hard.
fn mismatch_is_soft(a: &Term, b: &Term) -> bool {
    a.is_rigid() && b.is_rigid() && (matches!(a, Term::Param(_)) || matches!(b, Term::Param(_)))
}

/// Tries to cover `written` with view `view` (its CQ and exported head
/// variables), given the containment target `target` (known facts plus all
/// written atoms) and the identity pins for fresh variables.
///
/// `symbolic` selects the template level: mismatches involving parameters
/// and failed fact-implications degrade to [`Cover::Maybe`] instead of
/// failing outright.
fn cover_with_view(
    written: &Atom,
    view: &Cq,
    head_vars: &[Sym],
    target: &[Atom],
    target_ctx: &CmpContext,
    pins: &Subst,
    symbolic: bool,
) -> Cover {
    let mut best = Cover::Dead;
    'body: for (idx, body) in view.atoms.iter().enumerate() {
        if body.relation != written.relation || body.args.len() != written.args.len() {
            continue;
        }
        // Positional unification of the view's body atom with the written
        // row, building a substitution over the view's variables.
        let mut theta = Subst::new();
        let mut soft = false;
        for (v, w) in body.args.iter().zip(written.args.iter()) {
            let resolved = match v {
                Term::Var(x) => theta.get(x).copied(),
                _ => Some(*v),
            };
            match resolved {
                None => {
                    let Term::Var(x) = v else { unreachable!() };
                    // Head export: a column the writer determines must be
                    // visible through the view; hidden columns accept only
                    // undetermined (fresh) values.
                    if w.is_rigid() && !head_vars.contains(x) {
                        continue 'body;
                    }
                    theta.insert(*x, *w);
                }
                Some(prev) if prev == *w => {}
                Some(prev) => {
                    if symbolic && mismatch_is_soft(&prev, w) {
                        soft = true;
                    } else {
                        continue 'body;
                    }
                }
            }
        }
        if soft {
            best = best.max(Cover::Maybe);
            continue;
        }
        // The rest of the view's body must hold in the target under theta.
        let remaining: Vec<Atom> = view
            .atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, a)| apply_atom(a, &theta))
            .collect();
        let comparisons: Vec<Comparison> = view
            .comparisons
            .iter()
            .map(|c| qlogic::cq::apply_comparison(c, &theta))
            .collect();
        if symbolic
            && comparisons
                .iter()
                .any(|c| matches!(c.lhs, Term::Param(_)) || matches!(c.rhs, Term::Param(_)))
        {
            // A parameterized comparison can only be evaluated once bound.
            best = best.max(Cover::Maybe);
            continue;
        }
        if remaining.is_empty() && comparisons.is_empty() {
            return Cover::Covered;
        }
        let problem = HomProblem {
            source_atoms: &remaining,
            source_comparisons: &comparisons,
            target_atoms: target,
            target_ctx,
            initial: pins.clone(),
        };
        if find_homomorphism(&problem).is_some() {
            return Cover::Covered;
        }
        if symbolic {
            // Trace facts (absent at the template level) might discharge
            // the remainder concretely.
            best = best.max(Cover::Maybe);
        }
    }
    best
}

/// Identity pins for fresh variables: each stands for one unknown value,
/// shared between the containment source and the written atoms in the
/// target.
fn fresh_pins(fresh: &[Sym]) -> Subst {
    let mut pins = Subst::with_capacity(fresh.len());
    for f in fresh {
        pins.insert(*f, Term::Var(*f));
    }
    pins
}

// ---------------------------------------------------------------------------
// Template compilation
// ---------------------------------------------------------------------------

/// Compiles a mutation into a [`WriteTemplate`]: extracts the written
/// atoms, prunes candidate views by relation, and attempts the
/// session-independent proof.
pub fn compile_write_template(
    stmt: &Statement,
    views: &[ViewDef],
    schema: &RelSchema,
) -> Result<WriteTemplate, WriteError> {
    let (atoms, fresh) = extract_written_atoms(stmt, schema)?;
    let candidates: Vec<Vec<usize>> = atoms
        .iter()
        .map(|w| {
            views
                .iter()
                .enumerate()
                .filter(|(_, v)| {
                    v.cq.atoms
                        .iter()
                        .any(|a| a.relation == w.relation && a.args.len() == w.args.len())
                })
                .map(|(i, _)| i)
                .collect()
        })
        .collect();

    let pins = fresh_pins(&fresh);
    let ctx = CmpContext::new(&[]);
    let mut verdict = WriteTemplateVerdict::Allowed;
    let mut uncovered = None;
    for (i, written) in atoms.iter().enumerate() {
        let mut best = Cover::Dead;
        for &vi in &candidates[i] {
            let view = &views[vi];
            let head = view.cq.head_vars();
            best = best.max(cover_with_view(
                written, &view.cq, &head, &atoms, &ctx, &pins, true,
            ));
            if best == Cover::Covered {
                break;
            }
        }
        match best {
            Cover::Covered => {}
            Cover::Maybe => {
                if verdict == WriteTemplateVerdict::Allowed {
                    verdict = WriteTemplateVerdict::Undecidable;
                }
            }
            Cover::Dead => {
                verdict = WriteTemplateVerdict::NeverCovered;
                uncovered = Some(i);
                break;
            }
        }
    }
    Ok(WriteTemplate {
        atoms,
        fresh,
        candidates,
        verdict,
        uncovered,
    })
}

// ---------------------------------------------------------------------------
// Concrete decision
// ---------------------------------------------------------------------------

/// Instantiates the named parameters of an atom with session bindings.
fn instantiate_atom(atom: &Atom, bindings: &[(String, Value)]) -> Atom {
    let args = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Param(p) => bindings
                .iter()
                .find(|(n, _)| Sym::new(n).id() == p.id())
                .map(|(_, v)| Term::constant(v))
                .unwrap_or(*t),
            _ => *t,
        })
        .collect();
    Atom {
        relation: atom.relation,
        args,
    }
}

/// The concrete write decision: every written atom must be covered by some
/// candidate view, with parameters instantiated and the trace's known
/// facts joining the containment target. Returns the first uncovered
/// written row (instantiated) on failure.
pub fn check_write_concrete(
    template: &WriteTemplate,
    views: &[ViewDef],
    bindings: &[(String, Value)],
    facts: &[Atom],
) -> Result<(), Cq> {
    let atoms: Vec<Atom> = template
        .atoms
        .iter()
        .map(|a| instantiate_atom(a, bindings))
        .collect();
    let mut target: Vec<Atom> = Vec::with_capacity(facts.len() + atoms.len());
    target.extend_from_slice(facts);
    target.extend(atoms.iter().cloned());
    let pins = fresh_pins(&template.fresh);
    let ctx = CmpContext::new(&[]);
    for (i, written) in atoms.iter().enumerate() {
        let mut covered = false;
        for &vi in &template.candidates[i] {
            let view = views[vi].cq.instantiate(bindings);
            let head = view.head_vars();
            if cover_with_view(written, &view, &head, &target, &ctx, &pins, false) == Cover::Covered
            {
                covered = true;
                break;
            }
        }
        if !covered {
            return Err(atom_query(written));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use sqlir::parse_statement;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    fn policy(s: &RelSchema) -> Policy {
        let mut p = Policy::empty();
        p.add_view(
            s,
            "VMine",
            "SELECT UId, EId, Notes FROM Attendance WHERE UId = ?MyUId",
        )
        .unwrap();
        p.add_view(
            s,
            "VEvents",
            "SELECT EId, Title FROM Events WHERE Kind = 'public'",
        )
        .unwrap();
        p
    }

    fn template(sql: &str) -> WriteTemplate {
        let s = schema();
        let p = policy(&s);
        let stmt = parse_statement(sql).unwrap();
        compile_write_template(&stmt, p.views(), &s).unwrap()
    }

    #[test]
    fn parameter_bound_insert_is_template_allowed() {
        let t = template("INSERT INTO Attendance (UId, EId, Notes) VALUES (?MyUId, ?eid, ?notes)");
        assert_eq!(t.verdict, WriteTemplateVerdict::Allowed);
    }

    #[test]
    fn other_users_row_is_denied_concretely() {
        let s = schema();
        let p = policy(&s);
        let stmt =
            parse_statement("INSERT INTO Attendance (UId, EId, Notes) VALUES (7, 1, 'x')").unwrap();
        let t = compile_write_template(&stmt, p.views(), &s).unwrap();
        // Template level: the constant 7 might equal ?MyUId for some session.
        assert_eq!(t.verdict, WriteTemplateVerdict::Undecidable);
        let me = vec![("MyUId".to_string(), Value::Int(7))];
        assert!(check_write_concrete(&t, p.views(), &me, &[]).is_ok());
        let other = vec![("MyUId".to_string(), Value::Int(8))];
        let denied = check_write_concrete(&t, p.views(), &other, &[]).unwrap_err();
        assert_eq!(denied.atoms.len(), 1);
    }

    #[test]
    fn hidden_column_write_is_never_covered() {
        // VEvents hides Kind (it is not in the head): determining Kind
        // through the view is impossible for any session.
        let t = template("INSERT INTO Events (EId, Title, Kind) VALUES (1, 'x', 'private')");
        assert_eq!(t.verdict, WriteTemplateVerdict::NeverCovered);
        assert!(t.uncovered_query().is_some());
    }

    #[test]
    fn view_constant_column_must_match() {
        // Kind = 'public' is folded into the view atom as a constant; a
        // matching INSERT is covered at the template level.
        let t = template("INSERT INTO Events (EId, Title, Kind) VALUES (1, 'x', 'public')");
        assert_eq!(t.verdict, WriteTemplateVerdict::Allowed);
    }

    #[test]
    fn update_pinned_to_session_is_allowed() {
        let t = template("UPDATE Attendance SET Notes = ?n WHERE UId = ?MyUId");
        assert_eq!(t.verdict, WriteTemplateVerdict::Allowed);
    }

    #[test]
    fn update_without_pin_is_never_covered() {
        // UId is unknown post-state; VMine needs it equal to ?MyUId, and a
        // fresh variable can never be proven equal to a parameter.
        let t = template("UPDATE Attendance SET Notes = 'x' WHERE EId = 3");
        assert_eq!(t.verdict, WriteTemplateVerdict::NeverCovered);
    }

    #[test]
    fn delete_pinned_to_session_is_allowed() {
        let t = template("DELETE FROM Attendance WHERE UId = ?MyUId");
        assert_eq!(t.verdict, WriteTemplateVerdict::Allowed);
    }

    #[test]
    fn delete_other_user_denied_concretely() {
        let s = schema();
        let p = policy(&s);
        let stmt = parse_statement("DELETE FROM Attendance WHERE UId = 9").unwrap();
        let t = compile_write_template(&stmt, p.views(), &s).unwrap();
        assert_eq!(t.verdict, WriteTemplateVerdict::Undecidable);
        let other = vec![("MyUId".to_string(), Value::Int(3))];
        assert!(check_write_concrete(&t, p.views(), &other, &[]).is_err());
        let me = vec![("MyUId".to_string(), Value::Int(9))];
        assert!(check_write_concrete(&t, p.views(), &me, &[]).is_ok());
    }

    #[test]
    fn unknown_table_is_an_extraction_error() {
        let s = schema();
        let stmt = parse_statement("INSERT INTO Nope (A) VALUES (1)").unwrap();
        assert!(compile_write_template(&stmt, &[], &s).is_err());
    }

    #[test]
    fn multi_row_insert_requires_every_row_covered() {
        let s = schema();
        let p = policy(&s);
        let stmt = parse_statement(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (?MyUId, 1, 'a'), (5, 2, 'b')",
        )
        .unwrap();
        let t = compile_write_template(&stmt, p.views(), &s).unwrap();
        assert_eq!(t.atoms.len(), 2);
        assert_eq!(t.verdict, WriteTemplateVerdict::Undecidable);
        let me = vec![("MyUId".to_string(), Value::Int(5))];
        assert!(check_write_concrete(&t, p.views(), &me, &[]).is_ok());
        let other = vec![("MyUId".to_string(), Value::Int(6))];
        assert!(check_write_concrete(&t, p.views(), &other, &[]).is_err());
    }
}
