//! Warm-start snapshots: persisted template verdicts, verification-gated.
//!
//! A cold proxy pays one symbolic proof per distinct template before it
//! reaches steady-state throughput. This module serializes the plan
//! cache's compiled certificates and verdicts to a versioned, checksummed
//! file at drain time, and re-installs them on the next start — after
//! pushing every entry back through the *same mutual-containment check
//! certificate replay uses*. The gate is the point: a snapshot is a hint,
//! never an authority. A corrupt file, a format-version bump, a changed
//! policy fingerprint, or a single entry whose certificate no longer
//! verifies all degrade to a cold start (whole-file or per-entry), never
//! to a wrong decision.
//!
//! Symbols are interner ids and thus process-local, so everything is
//! serialized by *name* and re-interned at load; the policy fingerprint
//! likewise hashes the canonical `Display` rendering of each view, never
//! ids. The file layout is length-prefixed little-endian with a trailing
//! FNV-1a checksum over every preceding byte:
//!
//! ```text
//! magic "BEPSNAP1" | version u32 | policy_fp u64 | entry_count u32
//!   entry*: sql str | verdict u8 (0 undecidable, 1 allowed)
//!           [cert_count u32, cert*: rewriting Cq | has_expansion u8]
//! checksum u64
//! ```
//!
//! Expansions are *not* stored: they are recomputed over the live policy
//! at load, which both shrinks the file and guarantees the verified
//! expansion is internally consistent with the views actually in force.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

use qlogic::{intern, Atom, CVal, CmpOp, Comparison, Cq, Term};

use crate::checker::ComplianceChecker;
use crate::error::CoreError;
use crate::obs::template_hash;
use crate::plan::{compile_plan, Certificate, PlanBody, TemplatePlan, TemplateVerdict};

/// Snapshot format version; bump on any layout change.
const VERSION: u32 = 1;
/// File magic (8 bytes).
const MAGIC: &[u8; 8] = b"BEPSNAP1";

/// Why a snapshot failed to load or save. Every load-side variant means
/// "cold start", never "wrong decision" — the caller logs it and serves
/// traffic unwarmed.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error reading or writing the snapshot.
    Io(io::Error),
    /// The file is not a snapshot, or is truncated/garbled.
    Corrupt(String),
    /// The trailing checksum does not match the bytes read.
    ChecksumMismatch,
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The policy fingerprint differs: the snapshot was taken under a
    /// different policy, so none of its verdicts may be trusted wholesale.
    PolicyMismatch,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "snapshot corrupt: {m}"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::VersionMismatch { found } => {
                write!(f, "snapshot format version {found} (expected {VERSION})")
            }
            SnapshotError::PolicyMismatch => {
                write!(f, "snapshot policy fingerprint mismatch")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// Outcome of a successful save.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotSaveReport {
    /// Template entries written.
    pub entries: usize,
    /// File size in bytes.
    pub bytes: u64,
}

/// Outcome of a successful (possibly partially rejected) load.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnapshotLoadReport {
    /// Entries that passed the verification gate and were installed.
    pub loaded: usize,
    /// Entries rejected by the gate (skipped; those templates start cold).
    pub rejected: usize,
    /// File size in bytes.
    pub bytes: u64,
}

/// FNV-1a, the repo's standing content hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of the active policy: FNV-1a over each view's name, SQL,
/// and the canonical rendering of its CQ (symbol *names*, never interner
/// ids, so the fingerprint is stable across processes).
pub fn policy_fingerprint(checker: &ComplianceChecker) -> u64 {
    let mut h = Fnv::new();
    for v in checker.policy().views() {
        h.write(v.name.as_bytes());
        h.write(&[0]);
        h.write(v.sql.as_bytes());
        h.write(&[0]);
        h.write(format!("{}", v.cq).as_bytes());
        h.write(&[0xff]);
    }
    h.finish()
}

// ---- byte-level writer ------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        let mut e = Enc { buf: Vec::new() };
        e.buf.extend_from_slice(MAGIC);
        e
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn term(&mut self, t: &Term) {
        match t {
            Term::Var(s) => {
                self.u8(0);
                self.str(s.as_str());
            }
            Term::Param(s) => {
                self.u8(1);
                self.str(s.as_str());
            }
            Term::Const(c) => {
                self.u8(2);
                match c {
                    CVal::Null => self.u8(0),
                    CVal::Int(i) => {
                        self.u8(1);
                        self.i64(*i);
                    }
                    CVal::Str(s) => {
                        self.u8(2);
                        self.str(s.as_str());
                    }
                    CVal::Bool(b) => {
                        self.u8(3);
                        self.u8(*b as u8);
                    }
                }
            }
        }
    }
    fn cq(&mut self, q: &Cq) {
        match q.name {
            Some(n) => {
                self.u8(1);
                self.str(n.as_str());
            }
            None => self.u8(0),
        }
        self.u32(q.head.len() as u32);
        for t in &q.head {
            self.term(t);
        }
        self.u32(q.atoms.len() as u32);
        for a in &q.atoms {
            self.str(a.relation.as_str());
            self.u32(a.args.len() as u32);
            for t in &a.args {
                self.term(t);
            }
        }
        self.u32(q.comparisons.len() as u32);
        for c in &q.comparisons {
            self.term(&c.lhs);
            self.u8(cmp_op_code(c.op));
            self.term(&c.rhs);
        }
    }
    fn seal(mut self) -> Vec<u8> {
        let mut h = Fnv::new();
        h.write(&self.buf);
        let sum = h.finish();
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

fn cmp_op_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_op_of(code: u8) -> Result<CmpOp, SnapshotError> {
    Ok(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return Err(SnapshotError::Corrupt(format!("bad cmp op {other}"))),
    })
}

// ---- byte-level reader ------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SnapshotError::Corrupt("truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| SnapshotError::Corrupt("non-utf8 string".into()))
    }
    fn term(&mut self) -> Result<Term, SnapshotError> {
        Ok(match self.u8()? {
            0 => Term::Var(intern(self.str()?)),
            1 => Term::Param(intern(self.str()?)),
            2 => Term::Const(match self.u8()? {
                0 => CVal::Null,
                1 => CVal::Int(self.i64()?),
                2 => CVal::Str(intern(self.str()?)),
                3 => CVal::Bool(self.u8()? != 0),
                other => return Err(SnapshotError::Corrupt(format!("bad const tag {other}"))),
            }),
            other => return Err(SnapshotError::Corrupt(format!("bad term tag {other}"))),
        })
    }
    fn cq(&mut self) -> Result<Cq, SnapshotError> {
        let name = match self.u8()? {
            0 => None,
            1 => Some(intern(self.str()?)),
            other => return Err(SnapshotError::Corrupt(format!("bad name tag {other}"))),
        };
        let nh = self.u32()? as usize;
        let mut head = Vec::with_capacity(nh.min(1024));
        for _ in 0..nh {
            head.push(self.term()?);
        }
        let na = self.u32()? as usize;
        let mut atoms = Vec::with_capacity(na.min(1024));
        for _ in 0..na {
            let rel = intern(self.str()?);
            let nargs = self.u32()? as usize;
            let mut args = Vec::with_capacity(nargs.min(1024));
            for _ in 0..nargs {
                args.push(self.term()?);
            }
            atoms.push(Atom {
                relation: rel,
                args,
            });
        }
        let nc = self.u32()? as usize;
        let mut comparisons = Vec::with_capacity(nc.min(1024));
        for _ in 0..nc {
            let lhs = self.term()?;
            let op = cmp_op_of(self.u8()?)?;
            let rhs = self.term()?;
            comparisons.push(Comparison::new(lhs, op, rhs));
        }
        let mut q = Cq::new(head, atoms, comparisons);
        q.name = name;
        Ok(q)
    }
}

/// One deserialized (unverified) snapshot entry.
struct RawEntry {
    sql: String,
    /// `None` = undecidable verdict; `Some` = allowed with these
    /// per-disjunct `(rewriting, has_expansion)` certificates.
    certs: Option<Vec<(Cq, bool)>>,
}

/// Serializes every compiled plan carrying a template verdict. The write
/// is atomic (`path.tmp` then rename), so a crash mid-save leaves any
/// previous snapshot intact.
pub fn save_snapshot_file(
    checker: &ComplianceChecker,
    plans: &[Arc<TemplatePlan>],
    path: &Path,
) -> Result<SnapshotSaveReport, SnapshotError> {
    let mut enc = Enc::new();
    enc.u32(VERSION);
    enc.u64(policy_fingerprint(checker));
    let entries: Vec<&Arc<TemplatePlan>> = plans
        .iter()
        .filter(|p| matches!(p.body(), PlanBody::Select(sp) if sp.template.is_some()))
        .collect();
    enc.u32(entries.len() as u32);
    for plan in &entries {
        let sp = plan.select().expect("filtered to selects");
        enc.str(plan.sql());
        match sp.template.as_ref().expect("filtered to verdicts") {
            TemplateVerdict::Undecidable => enc.u8(0),
            TemplateVerdict::Allowed(certs) => {
                enc.u8(1);
                enc.u32(certs.len() as u32);
                for c in certs {
                    enc.cq(&c.rewriting);
                    enc.u8(c.expansion.is_some() as u8);
                }
            }
        }
    }
    let bytes = enc.seal();
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(SnapshotSaveReport {
        entries: entries.len(),
        bytes: bytes.len() as u64,
    })
}

/// Reads, integrity-checks, and *verification-gates* a snapshot.
///
/// Whole-file gates (magic, version, checksum, policy fingerprint) reject
/// with a typed error — the caller cold-starts. Per-entry gates re-derive
/// the template's translation from the live checker and re-prove each
/// stored certificate with the same mutual-containment check certificate
/// replay uses ([`ComplianceChecker::replay_certificate`] semantics);
/// entries that fail are skipped and counted, never installed. Returns
/// the verified plans (ready for `PlanCache::insert_compiled`) and the
/// rejected count.
pub fn load_snapshot_file(
    checker: &ComplianceChecker,
    path: &Path,
) -> Result<(Vec<Arc<TemplatePlan>>, SnapshotLoadReport), SnapshotError> {
    let bytes = fs::read(path)?;
    if bytes.len() < MAGIC.len() + 4 + 8 + 4 + 8 {
        return Err(SnapshotError::Corrupt("file too short".into()));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored_sum = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let mut h = Fnv::new();
    h.write(body);
    if h.finish() != stored_sum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let mut d = Dec { buf: body, pos: 0 };
    if d.take(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let version = d.u32()?;
    if version != VERSION {
        return Err(SnapshotError::VersionMismatch { found: version });
    }
    if d.u64()? != policy_fingerprint(checker) {
        return Err(SnapshotError::PolicyMismatch);
    }
    let count = d.u32()? as usize;
    let mut raw = Vec::with_capacity(count.min(65_536));
    for _ in 0..count {
        let sql = d.str()?.to_string();
        let certs = match d.u8()? {
            0 => None,
            1 => {
                let n = d.u32()? as usize;
                let mut cs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let rw = d.cq()?;
                    let has_expansion = d.u8()? != 0;
                    cs.push((rw, has_expansion));
                }
                Some(cs)
            }
            other => return Err(SnapshotError::Corrupt(format!("bad verdict tag {other}"))),
        };
        raw.push(RawEntry { sql, certs });
    }
    if d.pos != body.len() {
        return Err(SnapshotError::Corrupt("trailing bytes".into()));
    }

    let mut report = SnapshotLoadReport {
        bytes: bytes.len() as u64,
        ..SnapshotLoadReport::default()
    };
    let mut plans = Vec::with_capacity(raw.len());
    for entry in raw {
        match verify_entry(checker, &entry) {
            Some(plan) => {
                plans.push(Arc::new(plan));
                report.loaded += 1;
            }
            None => report.rejected += 1,
        }
    }
    Ok((plans, report))
}

/// The per-entry verification gate. `None` = reject (cold-start this
/// template); `Some` = a freshly compiled plan with the re-verified
/// verdict installed.
fn verify_entry(checker: &ComplianceChecker, entry: &RawEntry) -> Option<TemplatePlan> {
    let hash = template_hash(&entry.sql);
    // Recompile parse/translate/prune from the live checker — the snapshot
    // contributes only the *verdict*, everything else is current truth.
    let plan = compile_plan(checker, &entry.sql, hash, false, &mut |_| {});
    let sp = plan.select()?;
    let verdict = match &entry.certs {
        // An undecidable verdict is cost-only (the concrete path still
        // decides every request), so with the policy fingerprint already
        // matched it installs without further proof.
        None => TemplateVerdict::Undecidable,
        Some(stored) => {
            let disjuncts = sp.translation.as_ref().ok()?;
            if disjuncts.len() != stored.len() {
                return None;
            }
            let mut certs = Vec::with_capacity(stored.len());
            for (d, (rw, has_expansion)) in disjuncts.iter().zip(stored) {
                if *has_expansion {
                    // Recompute the expansion over the views actually in
                    // force, then demand mutual containment with the live
                    // disjunct — exactly the certificate-replay check.
                    let views = checker.policy().symbolic_subset(&d.view_indices);
                    let expansion = qlogic::expand(rw, &views).ok()?;
                    checker.replay_certificate(&d.template, rw.clone(), &expansion, &[])?;
                    certs.push(Certificate {
                        rewriting: rw.clone(),
                        expansion: Some(expansion),
                    });
                } else {
                    // Unsatisfiability certificate: the disjunct itself
                    // must still be unsatisfiable.
                    if qlogic::satisfiable(&d.template) {
                        return None;
                    }
                    certs.push(Certificate {
                        rewriting: rw.clone(),
                        expansion: None,
                    });
                }
            }
            TemplateVerdict::Allowed(certs)
        }
    };
    Some(plan.with_template_verdict(verdict))
}

/// Convenience: `Io(NotFound)` recognizer so callers can distinguish "no
/// snapshot yet" (silent cold start) from real failures (warn).
pub fn is_not_found(e: &SnapshotError) -> bool {
    matches!(e, SnapshotError::Io(io) if io.kind() == io::ErrorKind::NotFound)
}

impl From<SnapshotError> for CoreError {
    fn from(e: SnapshotError) -> CoreError {
        CoreError::Internal(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::template_hash;
    use crate::policy::{schema_of_database, Policy};
    use minidb::Database;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Template the symbolic proof allows outright (rewrites over `V1`).
    const ALLOWED_SQL: &str = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
    /// Template only the concrete (trace-aware) path can decide.
    const UNDECIDABLE_SQL: &str = "SELECT * FROM Events WHERE EId = ?event";

    fn calendar_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
        )
        .unwrap();
        db
    }

    fn checker_with_views(views: &[(&str, &str)]) -> ComplianceChecker {
        let schema = schema_of_database(&calendar_db());
        let policy = Policy::from_sql(&schema, views).unwrap();
        ComplianceChecker::new(schema, policy)
    }

    fn checker() -> ComplianceChecker {
        checker_with_views(&[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ])
    }

    fn compiled(checker: &ComplianceChecker, sql: &str) -> Arc<TemplatePlan> {
        Arc::new(compile_plan(
            checker,
            sql,
            template_hash(sql),
            true,
            &mut |_| {},
        ))
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "bep-snap-{}-{}-{tag}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn verdict_of(plan: &TemplatePlan) -> &TemplateVerdict {
        plan.select().unwrap().template.as_ref().unwrap()
    }

    #[test]
    fn roundtrip_reinstalls_verified_verdicts() {
        let c = checker();
        let allowed = compiled(&c, ALLOWED_SQL);
        let undecidable = compiled(&c, UNDECIDABLE_SQL);
        assert!(matches!(verdict_of(&allowed), TemplateVerdict::Allowed(_)));
        assert!(matches!(
            verdict_of(&undecidable),
            TemplateVerdict::Undecidable
        ));

        let path = tmp_path("roundtrip");
        let save = save_snapshot_file(&c, &[allowed.clone(), undecidable], &path).unwrap();
        assert_eq!(save.entries, 2);
        assert_eq!(save.bytes, fs::metadata(&path).unwrap().len());

        // A second process: fresh checker, same policy.
        let c2 = checker();
        let (plans, report) = load_snapshot_file(&c2, &path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.rejected, 0);
        let by_sql = |sql: &str| {
            plans
                .iter()
                .find(|p| p.sql() == sql)
                .unwrap_or_else(|| panic!("missing {sql}"))
        };
        let warm = by_sql(ALLOWED_SQL);
        match (verdict_of(&allowed), verdict_of(warm)) {
            (TemplateVerdict::Allowed(orig), TemplateVerdict::Allowed(got)) => {
                assert_eq!(orig.len(), got.len());
                for (o, g) in orig.iter().zip(got) {
                    assert_eq!(o.rewriting, g.rewriting, "rewriting survives roundtrip");
                    assert_eq!(
                        o.expansion, g.expansion,
                        "recomputed expansion matches the saved plan's"
                    );
                }
            }
            other => panic!("verdicts changed across roundtrip: {other:?}"),
        }
        assert!(matches!(
            verdict_of(by_sql(UNDECIDABLE_SQL)),
            TemplateVerdict::Undecidable
        ));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn plans_without_verdicts_are_not_persisted() {
        let c = checker();
        // Compiled with the template proof off: nothing worth snapshotting.
        let bare = Arc::new(compile_plan(
            &c,
            ALLOWED_SQL,
            template_hash(ALLOWED_SQL),
            false,
            &mut |_| {},
        ));
        // Non-SELECT bodies have no verdict either.
        let dml = compiled(
            &c,
            "INSERT INTO Events (EId, Title, Kind) VALUES (9, 'x', 'y')",
        );
        let path = tmp_path("no-verdicts");
        let save = save_snapshot_file(&c, &[bare, dml], &path).unwrap();
        assert_eq!(save.entries, 0);
        let (plans, report) = load_snapshot_file(&c, &path).unwrap();
        assert!(plans.is_empty());
        assert_eq!(report.loaded + report.rejected, 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_recognizably_not_found() {
        let c = checker();
        let err = load_snapshot_file(&c, &tmp_path("missing")).unwrap_err();
        assert!(is_not_found(&err), "{err}");
    }

    #[test]
    fn corrupt_byte_fails_the_checksum() {
        let c = checker();
        let path = tmp_path("corrupt");
        save_snapshot_file(&c, &[compiled(&c, ALLOWED_SQL)], &path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = load_snapshot_file(&c, &path).unwrap_err();
        assert!(matches!(err, SnapshotError::ChecksumMismatch), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_corrupt_not_a_panic() {
        let c = checker();
        let path = tmp_path("truncated");
        save_snapshot_file(&c, &[compiled(&c, ALLOWED_SQL)], &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let err = load_snapshot_file(&c, &path).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Corrupt(_) | SnapshotError::ChecksumMismatch
            ),
            "{err}"
        );
        fs::remove_file(&path).ok();
    }

    /// Patches the version field and re-seals the checksum, so the version
    /// gate (not the checksum) must reject.
    #[test]
    fn future_format_version_is_rejected() {
        let c = checker();
        let path = tmp_path("version");
        save_snapshot_file(&c, &[compiled(&c, ALLOWED_SQL)], &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
        let mut h = Fnv::new();
        h.write(&body);
        body.extend_from_slice(&h.finish().to_le_bytes());
        fs::write(&path, &body).unwrap();
        let err = load_snapshot_file(&c, &path).unwrap_err();
        assert!(
            matches!(err, SnapshotError::VersionMismatch { found: 99 }),
            "{err}"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn policy_change_rejects_the_whole_file() {
        let c = checker();
        let path = tmp_path("policy");
        save_snapshot_file(&c, &[compiled(&c, ALLOWED_SQL)], &path).unwrap();
        // Same first view, but the policy as a whole differs.
        let shrunk = checker_with_views(&[("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId")]);
        let err = load_snapshot_file(&shrunk, &path).unwrap_err();
        assert!(matches!(err, SnapshotError::PolicyMismatch), "{err}");
        fs::remove_file(&path).ok();
    }

    /// A validly-sealed snapshot whose certificate is wrong (an extra
    /// comparison smuggled into the rewriting) must fail the replay gate:
    /// the entry is skipped, nothing is installed, the load succeeds.
    #[test]
    fn tampered_certificate_is_rejected_not_installed() {
        let c = checker();
        let x = intern("X");
        let mut bogus = Cq::new(
            vec![Term::Var(x)],
            vec![Atom::new("V1", vec![Term::Var(x)])],
            vec![Comparison::new(
                Term::Var(x),
                CmpOp::Gt,
                Term::Const(CVal::Int(5)),
            )],
        );
        bogus.name = Some(intern("q"));

        let mut enc = Enc::new();
        enc.u32(VERSION);
        enc.u64(policy_fingerprint(&c));
        enc.u32(1);
        enc.str(ALLOWED_SQL);
        enc.u8(1); // allowed verdict
        enc.u32(1); // one certificate, matching the single disjunct
        enc.cq(&bogus);
        enc.u8(1); // has_expansion
        let path = tmp_path("tampered");
        fs::write(&path, enc.seal()).unwrap();

        let (plans, report) = load_snapshot_file(&c, &path).unwrap();
        assert!(plans.is_empty(), "tampered certificate must not install");
        assert_eq!(report.loaded, 0);
        assert_eq!(report.rejected, 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_is_stable_and_policy_sensitive() {
        assert_eq!(
            policy_fingerprint(&checker()),
            policy_fingerprint(&checker())
        );
        let shrunk = checker_with_views(&[("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId")]);
        assert_ne!(policy_fingerprint(&checker()), policy_fingerprint(&shrunk));
    }
}
