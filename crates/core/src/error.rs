//! Error types for the enforcement core.

use std::fmt;

/// Errors raised while building policies or operating the proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A view's SQL failed to parse.
    Parse(String),
    /// A view fell outside the conjunctive fragment.
    OutOfFragment(String),
    /// Duplicate view name in a policy.
    DuplicateView(String),
    /// The referenced session does not exist.
    NoSuchSession(u64),
    /// A database error surfaced through the proxy.
    Db(String),
    /// An internal invariant failed.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Parse(msg) => write!(f, "policy parse error: {msg}"),
            CoreError::OutOfFragment(msg) => write!(f, "view outside supported fragment: {msg}"),
            CoreError::DuplicateView(name) => write!(f, "duplicate view name: {name}"),
            CoreError::NoSuchSession(id) => write!(f, "no such session: {id}"),
            CoreError::Db(msg) => write!(f, "database error: {msg}"),
            CoreError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<minidb::DbError> for CoreError {
    fn from(e: minidb::DbError) -> CoreError {
        CoreError::Db(e.to_string())
    }
}

impl From<qlogic::LogicError> for CoreError {
    fn from(e: qlogic::LogicError) -> CoreError {
        CoreError::OutOfFragment(e.to_string())
    }
}
