//! Lock-free per-decision latency histogram.
//!
//! [`LatencyHistogram`] is a fixed array of log-bucketed `AtomicU64`
//! counters: recording a sample is one `leading_zeros`, one relaxed
//! `fetch_add`, and one relaxed `fetch_max` — cheap enough for the
//! `execute` hot path, and wait-free so concurrent sessions never contend.
//! Bucket `i` counts samples whose duration in nanoseconds lies in
//! `[2^i, 2^(i+1))`; percentile queries walk the cumulative counts and
//! report the geometric midpoint of the bucket holding the requested rank,
//! so a reported p99 is exact to within one octave (a factor of √2 around
//! the midpoint) — plenty for the throughput/latency tables.
//!
//! The histogram is the single source of latency truth: the proxy records
//! into it on every `execute`, and both the in-process benches (T7/T8) and
//! the server's `Stats` wire response read percentiles from the same
//! snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log buckets. Bucket 39 covers up to `2^40` ns ≈ 18 minutes;
/// anything slower saturates into the last bucket.
const BUCKETS: usize = 40;

/// Fixed log-bucketed latency counters. All methods take `&self`.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// The bucket for a duration of `ns` nanoseconds: `floor(log2(ns))`,
/// clamped to the table (0 ns lands in bucket 0).
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The representative value reported for a bucket: its geometric midpoint
/// `2^i * 1.5` (for bucket 0, 1 ns).
fn bucket_mid_ns(i: usize) -> u64 {
    if i == 0 {
        1
    } else {
        (1u64 << i) + (1u64 << (i - 1))
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample. Wait-free; `Relaxed` ordering — the counters
    /// carry no synchronization duties.
    pub fn record(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot: counts are individually exact and
    /// monotone; under live traffic the percentiles lag by whatever arrived
    /// during the walk.
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Acquire))
            .collect();
        let count: u64 = counts.iter().sum();
        let percentile = |pct: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            // 1-based nearest-rank, in exact integer arithmetic. (The
            // previous float form `ceil(p/100 * count)` overshot at exact
            // boundaries — 0.95 * 20 is 19.000000000000004 in binary
            // floating point, whose ceiling is 20, one whole rank high.)
            let rank = ((u128::from(count) * u128::from(pct)).div_ceil(100) as u64).clamp(1, count);
            let mut cumulative = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cumulative += c;
                if cumulative >= rank {
                    return bucket_mid_ns(i);
                }
            }
            bucket_mid_ns(BUCKETS - 1)
        };
        LatencySnapshot {
            count,
            sum_ns: self.sum_ns.load(Ordering::Acquire),
            max_ns: self.max_ns.load(Ordering::Acquire),
            p50_ns: percentile(50),
            p95_ns: percentile(95),
            p99_ns: percentile(99),
        }
    }
}

/// A point-in-time summary of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Total nanoseconds across all samples.
    pub sum_ns: u64,
    /// Largest single sample, exact (not bucketed).
    pub max_ns: u64,
    /// Median, as the midpoint of its log bucket.
    pub p50_ns: u64,
    /// 95th percentile, as the midpoint of its log bucket.
    pub p95_ns: u64,
    /// 99th percentile, as the midpoint of its log bucket.
    pub p99_ns: u64,
}

impl LatencySnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Median in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.p50_ns as f64 / 1e3
    }

    /// 95th percentile in microseconds.
    pub fn p95_us(&self) -> f64 {
        self.p95_ns as f64 / 1e3
    }

    /// 99th percentile in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_ns as f64 / 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_snapshots_zero() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s, LatencySnapshot::default());
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_are_octave_accurate() {
        let h = LatencyHistogram::new();
        // 90 fast samples at ~1 µs, 10 slow at ~1 ms.
        for _ in 0..90 {
            h.record(Duration::from_nanos(1_100));
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_050_000));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 within the 1024–2048 ns bucket, p99 within 1.05e6's bucket.
        assert_eq!(s.p50_ns, bucket_mid_ns(bucket_of(1_100)));
        assert_eq!(s.p99_ns, bucket_mid_ns(bucket_of(1_050_000)));
        assert!(s.p50_ns < s.p95_ns || s.p95_ns == s.p50_ns);
        assert_eq!(s.max_ns, 1_050_000);
        assert_eq!(s.mean_ns(), (90 * 1_100 + 10 * 1_050_000) / 100);
    }

    #[test]
    fn p100_is_last_nonempty_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(7));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ns, s.p99_ns);
    }

    #[test]
    fn nearest_rank_is_exact_at_boundaries() {
        // 19 fast + 1 slow samples: p95's nearest rank is ceil(0.95·20) =
        // 19, which is still a fast sample. The old float-based rank
        // computed ceil(19.000000000000004) = 20 and jumped to the slow
        // bucket — a whole-octave error at an exact boundary.
        let h = LatencyHistogram::new();
        for _ in 0..19 {
            h.record(Duration::from_nanos(1_100));
        }
        h.record(Duration::from_nanos(1_050_000));
        let s = h.snapshot();
        assert_eq!(s.p95_ns, bucket_mid_ns(bucket_of(1_100)));
        assert_eq!(s.p99_ns, bucket_mid_ns(bucket_of(1_050_000)));
    }

    #[test]
    fn single_sample_percentiles_coincide() {
        // With one sample every percentile has rank 1: all three report
        // the same bucket and the mean is the sample itself.
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(777));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_ns, s.p95_ns);
        assert_eq!(s.p95_ns, s.p99_ns);
        assert_eq!(s.mean_ns(), 777);
        assert_eq!(s.max_ns, 777);
    }

    #[test]
    fn zero_duration_samples_are_counted_not_lost() {
        let h = LatencyHistogram::new();
        for _ in 0..3 {
            h.record(Duration::from_nanos(0));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.p50_ns, bucket_mid_ns(0));
        assert_eq!(s.p99_ns, bucket_mid_ns(0));
    }

    #[test]
    fn percentiles_are_monotone_under_random_workloads() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let h = LatencyHistogram::new();
            let n = rng.gen_range(1usize..400);
            for _ in 0..n {
                // Spread samples across many octaves, including 0.
                let shift = rng.gen_range(0u32..40);
                let ns = rng.gen_range(0u64..1 << shift);
                h.record(Duration::from_nanos(ns));
            }
            let s = h.snapshot();
            assert_eq!(s.count, n as u64, "seed {seed}");
            assert!(
                s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns,
                "seed {seed}: p50 {} ≤ p95 {} ≤ p99 {} violated",
                s.p50_ns,
                s.p95_ns,
                s.p99_ns
            );
            assert!(
                s.p99_ns <= s.max_ns.max(bucket_mid_ns(bucket_of(s.max_ns))),
                "seed {seed}: p99 beyond the max sample's bucket midpoint"
            );
            assert!(s.mean_ns() <= s.max_ns, "seed {seed}");
        }
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
    }
}
