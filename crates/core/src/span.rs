//! Hierarchical decision micro-spans.
//!
//! [`PhaseTimer`](crate::obs::PhaseTimer) attributes a decision's wall
//! time to six flat phases. This module goes one level deeper: a bounded
//! span *tree* per decision, where each node is one unit of solver work
//! (a disjunct proof, a certificate replay, a fallback search) annotated
//! with the [`SolverCounters`] delta — rewrite iterations, containment
//! calls, homomorphism nodes/backtracks — that accrued while it was the
//! innermost open span.
//!
//! # Design constraints
//!
//! * **No allocation on the happy path.** The tree lives in a
//!   thread-local arena of at most [`SPAN_ARENA_CAPACITY`] nodes whose
//!   backing `Vec`s are cleared (capacity retained) between decisions;
//!   only a *sampled* decision clones the arena out. Spans past the
//!   capacity are counted, not stored, and the summary says so.
//! * **No signature changes.** `enter`/`exit` are free functions on
//!   thread-local state, so deep layers (plan compilation, the concrete
//!   prover's closures) add spans without threading a handle through
//!   every call — and without fighting the borrow checker across the
//!   prover's `&mut` provenance. The decision path runs on one thread,
//!   which is the invariant that makes thread-local state exact.
//! * **Near-zero cost when off.** Every hook first reads one
//!   thread-local `Cell<bool>`; with spans disabled that is the entire
//!   cost.
//!
//! The summary ([`SpanSummary`]) is 3 words and rides on every
//! [`DecisionEvent`](crate::obs::DecisionEvent); the full tree
//! ([`SpanRecord`]s) is captured 1-in-N (`span_sample_every`) or when a
//! decision qualifies as a slow-decision exemplar.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use qlogic::probe::{self, SolverCounters};

/// Maximum nodes retained per decision tree. 64 comfortably covers a
/// multi-disjunct decision (a handful of disjuncts, each with a replay
/// and possibly a fallback) while bounding the arena at a few KiB;
/// overflow is counted in [`SpanSummary::truncated`].
pub const SPAN_ARENA_CAPACITY: usize = 64;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// The whole decision (the tree's root).
    Decision = 0,
    /// Template compilation: parse + translate + candidate pruning.
    Compile = 1,
    /// The compile-time symbolic proof of one disjunct.
    TemplateProof = 2,
    /// Concrete proof of one disjunct at decision time.
    Disjunct = 3,
    /// Verification-only replay of a compiled certificate.
    CertReplay = 4,
    /// Full rewriting search after a certificate failed to replay.
    CertFallback = 5,
}

impl SpanKind {
    /// All kinds, in discriminant order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Decision,
        SpanKind::Compile,
        SpanKind::TemplateProof,
        SpanKind::Disjunct,
        SpanKind::CertReplay,
        SpanKind::CertFallback,
    ];

    /// Stable label (metrics/exposition vocabulary).
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Decision => "decision",
            SpanKind::Compile => "compile",
            SpanKind::TemplateProof => "template-proof",
            SpanKind::Disjunct => "disjunct",
            SpanKind::CertReplay => "cert-replay",
            SpanKind::CertFallback => "cert-fallback",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// One node of a captured span tree, in pre-order arena position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// What this span measures.
    pub kind: SpanKind,
    /// Nesting depth; the root `Decision` span is 0.
    pub depth: u8,
    /// Start offset from the decision's begin, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Solver work attributed to this span while it was innermost
    /// (piecewise: a parent's own counters exclude its children's).
    pub counters: SolverCounters,
}

/// Compact per-decision roll-up of the span tree: total solver work,
/// certificate replay outcomes, and tree shape. Rides on every
/// [`DecisionEvent`](crate::obs::DecisionEvent) (3 words); all-zero when
/// spans are disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanSummary {
    /// Total MiniCon enumeration steps.
    pub rewrite_iterations: u32,
    /// Total containment checks.
    pub containment_checks: u32,
    /// Total homomorphism-search candidate visits.
    pub hom_nodes: u32,
    /// Total homomorphism-search backtracks.
    pub hom_backtracks: u32,
    /// Disjuncts decided by replaying a compiled certificate.
    pub cert_replays: u16,
    /// Disjuncts that fell back to the full rewriting search.
    pub cert_fallbacks: u16,
    /// Nodes in the span tree (including the root).
    pub spans: u16,
    /// `true` if the arena overflowed and spans were dropped.
    pub truncated: bool,
}

impl SpanSummary {
    /// Packs the summary into 3 little-endian-bitfield words (the journal
    /// slot encoding).
    pub fn to_words(&self) -> [u64; 3] {
        [
            self.rewrite_iterations as u64 | (self.containment_checks as u64) << 32,
            self.hom_nodes as u64 | (self.hom_backtracks as u64) << 32,
            self.cert_replays as u64
                | (self.cert_fallbacks as u64) << 16
                | (self.spans as u64) << 32
                | (self.truncated as u64) << 48,
        ]
    }

    /// Inverse of [`to_words`](Self::to_words).
    pub fn from_words(w: [u64; 3]) -> SpanSummary {
        SpanSummary {
            rewrite_iterations: w[0] as u32,
            containment_checks: (w[0] >> 32) as u32,
            hom_nodes: w[1] as u32,
            hom_backtracks: (w[1] >> 32) as u32,
            cert_replays: w[2] as u16,
            cert_fallbacks: (w[2] >> 16) as u16,
            spans: (w[2] >> 32) as u16,
            truncated: (w[2] >> 48) & 1 == 1,
        }
    }

    /// `true` if no field is set (the disabled-spans value).
    pub fn is_empty(&self) -> bool {
        *self == SpanSummary::default()
    }
}

/// The thread-local arena. `stack` holds arena indices of open spans
/// (`-1` marks an overflowed span, so enter/exit still pair up).
struct Tree {
    origin: Option<Instant>,
    nodes: Vec<SpanRecord>,
    stack: Vec<i32>,
    truncated: u32,
    cert_replays: u32,
    cert_fallbacks: u32,
}

impl Tree {
    const fn new() -> Tree {
        Tree {
            origin: None,
            nodes: Vec::new(),
            stack: Vec::new(),
            truncated: 0,
            cert_replays: 0,
            cert_fallbacks: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin
            .map(|o| o.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// Attributes the solver-counter delta since the previous boundary to
    /// the innermost *stored* open span.
    fn flush_counters(&mut self) {
        let delta = probe::take();
        if delta.is_zero() {
            return;
        }
        if let Some(&idx) = self.stack.iter().rev().find(|&&i| i >= 0) {
            self.nodes[idx as usize].counters.add(delta);
        }
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static TREE: RefCell<Tree> = const { RefCell::new(Tree::new()) };
}

/// `true` while a span tree is being collected on this thread.
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Starts a fresh tree for one decision: clears the arena (capacity
/// retained — no allocation after the first decision on a thread), resets
/// the solver counters, and opens the root `Decision` span.
pub fn begin() {
    TREE.with(|t| {
        let mut t = t.borrow_mut();
        t.origin = Some(Instant::now());
        t.nodes.clear();
        t.stack.clear();
        t.truncated = 0;
        t.cert_replays = 0;
        t.cert_fallbacks = 0;
        probe::take(); // discard work accumulated outside any tree
        t.nodes.push(SpanRecord {
            kind: SpanKind::Decision,
            depth: 0,
            start_ns: 0,
            dur_ns: 0,
            counters: SolverCounters::default(),
        });
        t.stack.push(0);
    });
    ACTIVE.with(|a| a.set(true));
}

/// Opens a child span. No-op unless a tree is active on this thread.
pub fn enter(kind: SpanKind) {
    if !active() {
        return;
    }
    TREE.with(|t| {
        let mut t = t.borrow_mut();
        let now = t.now_ns();
        t.flush_counters();
        if t.nodes.len() >= SPAN_ARENA_CAPACITY {
            t.truncated += 1;
            t.stack.push(-1);
            return;
        }
        let depth = (t.stack.len()).min(u8::MAX as usize) as u8;
        let idx = t.nodes.len() as i32;
        t.nodes.push(SpanRecord {
            kind,
            depth,
            start_ns: now,
            dur_ns: 0,
            counters: SolverCounters::default(),
        });
        t.stack.push(idx);
    });
}

/// Closes the innermost open span. No-op when inactive; the root span is
/// only closed by [`finish`].
pub fn exit() {
    if !active() {
        return;
    }
    TREE.with(|t| {
        let mut t = t.borrow_mut();
        if t.stack.len() <= 1 {
            return; // unbalanced exit; keep the root open
        }
        let now = t.now_ns();
        t.flush_counters();
        if let Some(idx) = t.stack.pop() {
            if idx >= 0 {
                let n = &mut t.nodes[idx as usize];
                n.dur_ns = now.saturating_sub(n.start_ns);
            }
        }
    });
}

/// RAII span: [`exit`]s on drop. For functions with multiple returns.
pub struct SpanGuard {
    _priv: (),
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        exit();
    }
}

/// [`enter`]s a span and returns a guard that [`exit`]s it on drop.
pub fn guard(kind: SpanKind) -> SpanGuard {
    enter(kind);
    SpanGuard { _priv: () }
}

/// Records that one disjunct was decided by certificate replay.
pub fn note_cert_replay() {
    if active() {
        TREE.with(|t| t.borrow_mut().cert_replays += 1);
    }
}

/// Records that one disjunct fell back to the full rewriting search.
pub fn note_cert_fallback() {
    if active() {
        TREE.with(|t| t.borrow_mut().cert_fallbacks += 1);
    }
}

/// Ends the tree: closes every open span (root included), rolls the
/// counters up into a [`SpanSummary`], and — only if `capture` — clones
/// the arena into a `Vec<SpanRecord>` (empty otherwise, no allocation).
/// Returns `None` if no tree was active.
pub fn finish(capture: bool) -> Option<(SpanSummary, Vec<SpanRecord>)> {
    if !active() {
        return None;
    }
    ACTIVE.with(|a| a.set(false));
    TREE.with(|t| {
        let mut t = t.borrow_mut();
        let now = t.now_ns();
        t.flush_counters();
        while let Some(idx) = t.stack.pop() {
            if idx >= 0 {
                let n = &mut t.nodes[idx as usize];
                n.dur_ns = now.saturating_sub(n.start_ns);
            }
        }
        let mut totals = SolverCounters::default();
        for n in &t.nodes {
            totals.add(n.counters);
        }
        let clamp32 = |v: u64| v.min(u32::MAX as u64) as u32;
        let clamp16 = |v: u32| v.min(u16::MAX as u32) as u16;
        let summary = SpanSummary {
            rewrite_iterations: clamp32(totals.rewrite_iterations),
            containment_checks: clamp32(totals.containment_checks),
            hom_nodes: clamp32(totals.hom_nodes),
            hom_backtracks: clamp32(totals.hom_backtracks),
            cert_replays: clamp16(t.cert_replays),
            cert_fallbacks: clamp16(t.cert_fallbacks),
            spans: clamp16(t.nodes.len() as u32),
            truncated: t.truncated > 0,
        };
        let records = if capture { t.nodes.clone() } else { Vec::new() };
        Some((summary, records))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_words_round_trip() {
        let s = SpanSummary {
            rewrite_iterations: 0xDEAD_BEEF,
            containment_checks: 17,
            hom_nodes: u32::MAX,
            hom_backtracks: 42,
            cert_replays: 3,
            cert_fallbacks: u16::MAX,
            spans: 64,
            truncated: true,
        };
        assert_eq!(SpanSummary::from_words(s.to_words()), s);
        let zero = SpanSummary::default();
        assert_eq!(SpanSummary::from_words(zero.to_words()), zero);
        assert!(zero.is_empty());
    }

    #[test]
    fn tree_collects_nested_spans_and_counters() {
        begin();
        assert!(active());
        enter(SpanKind::Disjunct);
        enter(SpanKind::CertReplay);
        qlogic::probe::take(); // ensure a clean slate, then fake work
        for _ in 0..5 {
            // drive real counters through a real containment call
            let q = qlogic::Cq::new(
                vec![],
                vec![qlogic::Atom::new("R", vec![qlogic::Term::int(1)])],
                vec![],
            );
            assert!(qlogic::contained(&q, &q));
        }
        exit(); // CertReplay
        note_cert_replay();
        exit(); // Disjunct
        let (summary, records) = finish(true).expect("tree was active");
        assert!(!active());
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.cert_replays, 1);
        assert_eq!(summary.cert_fallbacks, 0);
        assert!(summary.containment_checks >= 5, "{summary:?}");
        assert!(!summary.truncated);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, SpanKind::Decision);
        assert_eq!(records[0].depth, 0);
        assert_eq!(records[1].kind, SpanKind::Disjunct);
        assert_eq!(records[1].depth, 1);
        assert_eq!(records[2].kind, SpanKind::CertReplay);
        assert_eq!(records[2].depth, 2);
        // The solver work ran inside CertReplay, so it is attributed
        // there, not to its ancestors.
        assert!(records[2].counters.containment_checks >= 5);
        assert_eq!(records[1].counters.containment_checks, 0);
        // Durations nest: the root covers its children.
        assert!(records[0].dur_ns >= records[1].dur_ns);
        assert!(records[1].dur_ns >= records[2].dur_ns);
    }

    #[test]
    fn arena_overflow_truncates_and_counts() {
        begin();
        for _ in 0..(SPAN_ARENA_CAPACITY + 10) {
            enter(SpanKind::Disjunct);
            exit();
        }
        let (summary, records) = finish(true).unwrap();
        assert!(summary.truncated);
        assert_eq!(summary.spans as usize, SPAN_ARENA_CAPACITY);
        assert_eq!(records.len(), SPAN_ARENA_CAPACITY);
    }

    #[test]
    fn hooks_are_inert_without_begin() {
        assert!(!active());
        enter(SpanKind::Disjunct);
        note_cert_fallback();
        exit();
        assert!(finish(true).is_none());
    }

    #[test]
    fn capture_false_returns_no_records() {
        begin();
        enter(SpanKind::Disjunct);
        exit();
        let (summary, records) = finish(false).unwrap();
        assert_eq!(summary.spans, 2);
        assert!(records.is_empty());
    }

    #[test]
    fn unbalanced_exits_never_pop_the_root() {
        begin();
        exit();
        exit();
        let (summary, _) = finish(false).unwrap();
        assert_eq!(summary.spans, 1);
    }
}
