//! The enforcement setting of "Access Control for Database Applications:
//! Beyond Policy Enforcement" (HotOS '23): view-based policies, query
//! traces, a trace-aware compliance checker, and an enforcing SQL proxy.
//!
//! This crate is the workspace's reconstruction of the Blockaid-style system
//! the paper frames its three proposals around (§2.2):
//!
//! * [`Policy`] — SQL views parameterized by session values (`?MyUId`);
//! * [`Trace`] — per-session query history and the ground facts it
//!   witnesses;
//! * [`ComplianceChecker`] — decides whether a query's answer is determined
//!   by the views plus the trace (equivalent-rewriting certificates);
//! * [`SqlProxy`] — intercepts queries, allows or blocks them *unmodified*,
//!   and amortizes decisions through template- and session-level caches.
//!
//! The crate reproduces Example 2.1 of the paper exactly: `Q1` is allowed by
//! `V1`; `Q2` alone is blocked; `Q2` after `Q1` returned a row is allowed.
//! See `checker::tests::example_2_1_full_scenario`.

#![warn(missing_docs)]

pub mod cache;
pub mod checker;
pub mod classify;
pub mod decision;
pub mod error;
pub mod exemplar;
pub mod latency;
pub mod lint;
pub mod mem;
pub mod obs;
pub mod plan;
pub mod policy;
pub mod proxy;
pub mod snapshot;
pub mod span;
pub mod trace;
pub mod write;

pub use cache::BoundedCache;
pub use checker::ComplianceChecker;
pub use classify::{AccessMode, StatementClass};
pub use decision::{Decision, DecisionSource, DenyReason};
pub use error::CoreError;
pub use exemplar::{Exemplar, ExemplarStore};
pub use latency::{LatencyHistogram, LatencySnapshot};
pub use lint::{lint_template, lint_templates};
pub use mem::HeapUsage;
pub use obs::{
    read_process_memory, template_hash, CacheTier, Counter, DecisionEvent, EventJournal, Gauge,
    JournalCursor, MemoryGauges, MetricsRegistry, Phase, PhaseTimer, ProcessMemory, Verdict,
    PHASE_COUNT,
};
pub use plan::{
    compile_plan, DisjunctPlan, PlanBody, PlanCache, SelectPlan, TemplatePlan, TemplateVerdict,
    WritePlan,
};
pub use policy::{schema_of_database, Policy, ViewDef};
pub use proxy::{BatchItem, BatchStmt, ProxyConfig, ProxyResponse, ProxyStats, SqlProxy};
pub use snapshot::{
    load_snapshot_file, policy_fingerprint, save_snapshot_file, SnapshotError, SnapshotLoadReport,
    SnapshotSaveReport,
};
pub use span::{SpanKind, SpanRecord, SpanSummary, SPAN_ARENA_CAPACITY};
pub use trace::{Observation, Trace, TraceEntry};
pub use write::{
    check_write_concrete, compile_write_template, WriteTemplate, WriteTemplateVerdict,
};
