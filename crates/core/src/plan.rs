//! Compiled template plans: the parse/translate/prune work of a query
//! template, done once and reused by every concrete decision.
//!
//! The paper's premise (§2.2) is that view-based enforcement is practical
//! only when the Blockaid-style decision procedure is amortized across
//! requests. The proxy's verdict caches amortize *decisions*; this module
//! amortizes the *work leading up to a decision*. A [`TemplatePlan`]
//! captures, per distinct SQL template:
//!
//! * the parsed [`Statement`] (skip tokenize/parse on every request),
//! * the canonical UCQ translation, one [`DisjunctPlan`] per disjunct
//!   (skip `sql_to_ucq` on every request),
//! * a per-disjunct *pruned candidate-view list* from
//!   [`qlogic::candidate_view_indices`] — the rewriting search then runs
//!   only over views that can possibly participate (see the soundness
//!   argument on that function: a view sharing no relation name with the
//!   disjunct contributes zero MiniCon descriptions, so dropping it is
//!   decision-identical for every binding, fact set, and search mode), and
//! * the template-level verdict, when the proxy attempts one.
//!
//! [`PlanCache`] is the sharded, hash-keyed home of compiled plans. Its
//! double-checked insert publishes an empty [`OnceLock`] cell under a
//! brief write lock and compiles *outside* all locks: concurrent misses on
//! the same template prove once (the losers block on the cell, not on a
//! shard lock), and no lock is ever held across a proof. Distinct
//! templates colliding on the 64-bit FNV hash chain under one key and are
//! told apart by full-SQL comparison, so a collision costs a string
//! compare, never a wrong plan.

use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use qlogic::{candidate_view_indices, Cq};
use sqlir::{parse_statement, Statement};

use crate::cache::BoundedCache;
use crate::checker::ComplianceChecker;
use crate::obs::{template_hash, Counter, Phase};
use crate::write::WriteTemplate;

/// Number of plan-cache shards (power of two; the shard index is the low
/// bits of the template hash, which FNV-1a mixes well).
const PLAN_SHARDS: usize = 16;

/// One disjunct of a template's UCQ translation, with the candidate views
/// that survived the relation-signature pre-filter.
#[derive(Debug, Clone)]
pub struct DisjunctPlan {
    /// The symbolic (parameters preserved) conjunctive form.
    pub template: Cq,
    /// Indices into the policy's view list of the views sharing at least
    /// one relation name with this disjunct — the only views the
    /// rewriting search needs to consider.
    pub view_indices: Vec<usize>,
}

/// A per-disjunct compliance certificate compiled into a template-allowed
/// plan: the symbolic rewriting over the policy views *and its expansion
/// over the view definitions*, both precomputed so a concrete replay needs
/// no view instantiation, no normalization, and no expansion — it
/// instantiates the two stored queries and checks mutual containment
/// against the instantiated disjunct.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// The rewriting over the views (what decisions surface as their
    /// compliance certificate).
    pub rewriting: Cq,
    /// `expand(rewriting)` over the symbolic views. `None` when the
    /// disjunct was proved by unsatisfiability (the "rewriting" is the
    /// disjunct itself, which has no view expansion); replay then relies
    /// on the concrete unsatisfiability check alone.
    pub expansion: Option<Cq>,
}

/// The template-level verdict compiled into a plan.
#[derive(Debug, Clone)]
pub enum TemplateVerdict {
    /// Proven compliant with parameters symbolic: valid for every session
    /// and history. Carries the per-disjunct certificates.
    Allowed(Vec<Certificate>),
    /// Not decidable at template level (or outside the fragment); every
    /// request needs a concrete check.
    Undecidable,
}

/// The compiled body of a `SELECT` template.
#[derive(Debug)]
pub struct SelectPlan {
    /// The parsed statement (always `Statement::Select`), kept whole so
    /// binding and execution reuse the existing statement machinery.
    pub stmt: Statement,
    /// The UCQ translation with pruned candidate views, or the
    /// out-of-fragment message replayed as the deny reason per request.
    pub translation: Result<Vec<DisjunctPlan>, String>,
    /// The template-level verdict. The proxy always compiles it: even with
    /// the template *tier* disabled, an `Allowed` verdict's certificates
    /// feed the concrete path's verify-first replay. `None` only when a
    /// caller compiled with `attempt_template` off.
    pub template: Option<TemplateVerdict>,
}

/// The compiled body of a row mutation (`INSERT`/`UPDATE`/`DELETE`).
#[derive(Debug)]
pub struct WritePlan {
    /// The parsed statement, kept whole for binding and execution.
    pub stmt: Statement,
    /// The extracted write template with its session-independent verdict,
    /// or the extraction error replayed as an out-of-fragment denial per
    /// request.
    pub template: Result<WriteTemplate, String>,
}

/// What a template compiles to.
#[derive(Debug)]
pub enum PlanBody {
    /// A `SELECT` with its decision plan.
    Select(SelectPlan),
    /// A row mutation with its write-coverage plan.
    Write(WritePlan),
    /// A non-row statement (DDL pass-through).
    Other(Statement),
    /// The SQL does not parse; the message is replayed per request.
    ParseError(String),
}

/// One compiled template: everything about a SQL template that does not
/// depend on the session, the bindings, or the trace.
#[derive(Debug)]
pub struct TemplatePlan {
    sql: String,
    hash: u64,
    body: PlanBody,
}

impl TemplatePlan {
    /// The template SQL this plan was compiled from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The 64-bit FNV-1a template hash ([`template_hash`]) — the plan's
    /// cache key and its identity in decision events.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The compiled body.
    pub fn body(&self) -> &PlanBody {
        &self.body
    }

    /// The select plan, if this template is a `SELECT`.
    pub fn select(&self) -> Option<&SelectPlan> {
        match &self.body {
            PlanBody::Select(s) => Some(s),
            _ => None,
        }
    }

    /// Injects a template verdict into a `SELECT` plan compiled with
    /// `attempt_template` off. Snapshot load uses this to install verdicts
    /// it has re-verified against the current policy, skipping the symbolic
    /// proof; non-`SELECT` bodies are returned unchanged.
    pub(crate) fn with_template_verdict(mut self, verdict: TemplateVerdict) -> TemplatePlan {
        if let PlanBody::Select(sp) = &mut self.body {
            sp.template = Some(verdict);
        }
        self
    }
}

/// Compiles one template. `attempt_template` runs the symbolic
/// (session-independent) proof over the pruned candidate views; the proxy
/// always passes `true` — an `Allowed` verdict doubles as the certificate
/// store for concrete-path replay — while tests pass `false` to compile
/// only the parse/translate/prune work.
///
/// `lap` receives phase boundaries so a proxy compiling on the decision
/// path can attribute the work: [`Phase::Parse`] after parsing, and
/// [`Phase::Proof`] after the symbolic proof (when attempted). Callers
/// compiling off the hot path pass a no-op.
pub fn compile_plan(
    checker: &ComplianceChecker,
    sql: &str,
    hash: u64,
    attempt_template: bool,
    lap: &mut dyn FnMut(Phase),
) -> TemplatePlan {
    let _span = crate::span::guard(crate::span::SpanKind::Compile);
    let parsed = parse_statement(sql);
    lap(Phase::Parse);
    let stmt = match parsed {
        Ok(s) => s,
        Err(e) => {
            return TemplatePlan {
                sql: sql.to_string(),
                hash,
                body: PlanBody::ParseError(e.to_string()),
            }
        }
    };
    let Statement::Select(q) = &stmt else {
        if crate::classify::StatementClass::of(&stmt) == crate::classify::StatementClass::Write {
            let template = {
                let _span = crate::span::guard(crate::span::SpanKind::TemplateProof);
                crate::write::compile_write_template(
                    &stmt,
                    checker.policy().views(),
                    checker.schema(),
                )
            };
            lap(Phase::Proof);
            return TemplatePlan {
                sql: sql.to_string(),
                hash,
                body: PlanBody::Write(WritePlan { stmt, template }),
            };
        }
        return TemplatePlan {
            sql: sql.to_string(),
            hash,
            body: PlanBody::Other(stmt),
        };
    };

    let translation = match (checker.translate(q), checker.symbolic_views()) {
        (Ok(ucq), Ok(symbolic)) => Ok(ucq
            .disjuncts
            .into_iter()
            .map(|d| {
                let view_indices = candidate_view_indices(&d, &symbolic);
                DisjunctPlan {
                    template: d,
                    view_indices,
                }
            })
            .collect::<Vec<_>>()),
        (Err(e), _) | (_, Err(e)) => Err(e.to_string()),
    };

    let template = if attempt_template {
        Some(match &translation {
            Ok(disjuncts) => {
                let mut certs = Vec::with_capacity(disjuncts.len());
                let mut verdict = None;
                for d in disjuncts {
                    let views = checker.policy().symbolic_subset(&d.view_indices);
                    let proved = {
                        let _span = crate::span::guard(crate::span::SpanKind::TemplateProof);
                        checker.prove_disjunct(&d.template, &views, &[])
                    };
                    match proved {
                        Some(rw) => {
                            let expansion = qlogic::expand(&rw, &views).ok();
                            certs.push(Certificate {
                                rewriting: rw,
                                expansion,
                            });
                        }
                        None => {
                            verdict = Some(TemplateVerdict::Undecidable);
                            break;
                        }
                    }
                }
                let v = verdict.unwrap_or(TemplateVerdict::Allowed(certs));
                lap(Phase::Proof);
                v
            }
            // Outside the fragment: the symbolic proof cannot run; the
            // concrete path replays the typed denial.
            Err(_) => TemplateVerdict::Undecidable,
        })
    } else {
        None
    };

    TemplatePlan {
        sql: sql.to_string(),
        hash,
        body: PlanBody::Select(SelectPlan {
            stmt,
            translation,
            template,
        }),
    }
}

/// One cache slot: the template's SQL (for exact matching under hash
/// collisions) and the prove-once cell its plan is published through.
struct PlanEntry {
    sql: String,
    cell: Arc<OnceLock<Arc<TemplatePlan>>>,
}

struct PlanShard {
    /// Collision chains keyed by template hash: distinct templates sharing
    /// a 64-bit hash live in one bucket and are told apart by full-SQL
    /// comparison. Bounded (count and bytes) with SIEVE eviction at bucket
    /// granularity — a hit is one visited-bit store under the read lock.
    chains: BoundedCache<u64, Vec<PlanEntry>>,
    /// Total entries across all chains in this shard.
    entries: usize,
    /// Buckets holding cells published but not yet compiled: their plan
    /// bytes are unknown at insert time, so they are re-accounted on the
    /// next write-lock acquisition ("lazy" because compilation happens
    /// outside all locks).
    pending: Vec<u64>,
}

/// Sharded, hash-keyed cache of compiled template plans with bounded
/// count *and* bytes (SIEVE eviction, scan-resistant) and prove-once
/// misses.
///
/// The lookup key is the 64-bit [`template_hash`] — computed without
/// allocating — and the warm path is one shard read lock plus one string
/// *comparison* (never a string allocation) plus one relaxed visited-bit
/// store. See the module docs for the insert protocol.
pub struct PlanCache {
    shards: Vec<RwLock<PlanShard>>,
    per_shard_capacity: usize,
    /// Optional eviction counter (`bep_cache_evictions_total{tier="plan"}`)
    /// bumped once per evicted template entry.
    evictions: Option<Arc<Counter>>,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("capacity", &(self.per_shard_capacity * self.shards.len()))
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache retaining at most `capacity` compiled templates
    /// (rounded up to a multiple of the shard count), with no byte budget
    /// and no eviction counter.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache::with_budget(capacity, 0, None)
    }

    /// Creates a cache bounded by `capacity` entries and `budget_bytes`
    /// resident bytes (`0` = count-bounded only; the budget is split evenly
    /// across shards), reporting evictions to `evictions` when given.
    pub fn with_budget(
        capacity: usize,
        budget_bytes: usize,
        evictions: Option<Arc<Counter>>,
    ) -> PlanCache {
        let per_shard_capacity = capacity.div_ceil(PLAN_SHARDS).max(1);
        let per_shard_budget = budget_bytes.div_ceil(PLAN_SHARDS);
        PlanCache {
            shards: (0..PLAN_SHARDS)
                .map(|_| {
                    RwLock::new(PlanShard {
                        // +1: BoundedCache evicts *after* insert, protecting
                        // the newcomer, so `> capacity` means at most
                        // `capacity` survivors — match the old semantics of
                        // "at most capacity retained".
                        chains: BoundedCache::new(per_shard_capacity, per_shard_budget),
                        entries: 0,
                        pending: Vec::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            evictions,
        }
    }

    fn shard(&self, hash: u64) -> &RwLock<PlanShard> {
        &self.shards[(hash as usize) & (PLAN_SHARDS - 1)]
    }

    /// Number of cached templates (including cells still being compiled).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().entries).sum()
    }

    /// `true` when no template is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of evicted template entries across all shards.
    pub fn evicted_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().chains.evicted_total())
            .sum()
    }

    /// Books evicted chains out of the shard's entry count and into the
    /// eviction counter.
    fn book_evictions(&self, s: &mut PlanShard, evicted: Vec<(u64, Vec<PlanEntry>)>) {
        for (_, chain) in evicted {
            s.entries -= chain.len();
            if let Some(c) = &self.evictions {
                c.add(chain.len() as u64);
            }
        }
    }

    /// Re-accounts buckets whose plans have compiled since insertion.
    /// Called with the shard write lock held; cheap when nothing is
    /// pending.
    fn sweep_pending(&self, s: &mut PlanShard) {
        if s.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut s.pending);
        for hash in pending {
            let Some(chain) = s.chains.peek(&hash) else {
                continue; // bucket evicted before it compiled
            };
            if chain.iter().any(|e| e.cell.get().is_none()) {
                s.pending.push(hash); // still compiling; try again later
                continue;
            }
            let bytes = chain_heap_bytes(chain);
            let evicted = s.chains.set_bytes(&hash, bytes);
            self.book_evictions(s, evicted);
        }
    }

    /// The prove-once cell for a template: `(cell, existed)`. When
    /// `existed` is false this call published a fresh empty cell and the
    /// caller is expected to `get_or_init` it (concurrent callers of
    /// `get_or_init` block on the cell — never on a shard lock — and
    /// exactly one compiles). The write lock is held only for the
    /// double-checked map insert, never across compilation.
    pub fn entry(&self, sql: &str) -> (Arc<OnceLock<Arc<TemplatePlan>>>, bool) {
        self.entry_hashed(template_hash(sql), sql)
    }

    /// [`PlanCache::entry`] with a caller-supplied hash. The proxy uses
    /// this to hash once per request; tests use it to force two distinct
    /// templates onto one hash and exercise the collision chain.
    pub fn entry_hashed(&self, hash: u64, sql: &str) -> (Arc<OnceLock<Arc<TemplatePlan>>>, bool) {
        let shard = self.shard(hash);
        {
            let s = shard.read();
            if let Some(chain) = s.chains.get(&hash) {
                if let Some(e) = chain.iter().find(|e| e.sql == sql) {
                    return (e.cell.clone(), true);
                }
            }
        }
        let mut s = shard.write();
        self.sweep_pending(&mut s);
        // Double-check: another thread may have inserted while we upgraded.
        if let Some(chain) = s.chains.get(&hash) {
            if let Some(e) = chain.iter().find(|e| e.sql == sql) {
                return (e.cell.clone(), true);
            }
        }
        let cell = Arc::new(OnceLock::new());
        let entry = PlanEntry {
            sql: sql.to_string(),
            cell: cell.clone(),
        };
        let evicted = match s.chains.get_mut(&hash) {
            Some(chain) => {
                chain.push(entry);
                let bytes = chain_heap_bytes(s.chains.peek(&hash).expect("just updated"));
                s.chains.set_bytes(&hash, bytes)
            }
            None => {
                let bytes = chain_heap_bytes(std::slice::from_ref(&entry));
                s.chains.insert(hash, vec![entry], bytes)
            }
        };
        s.entries += 1;
        s.pending.push(hash);
        self.book_evictions(&mut s, evicted);
        (cell, false)
    }

    /// Installs an already-compiled plan (warm-start snapshot load). The
    /// cell is published pre-filled, so readers never see an empty cell and
    /// nothing recompiles. A template already resident is left untouched.
    /// Returns how many entries the insertion evicted.
    pub fn insert_compiled(&self, plan: Arc<TemplatePlan>) -> usize {
        let hash = plan.hash();
        let shard = self.shard(hash);
        let mut s = shard.write();
        self.sweep_pending(&mut s);
        if let Some(chain) = s.chains.peek(&hash) {
            if chain.iter().any(|e| e.sql == plan.sql()) {
                return 0;
            }
        }
        let cell = Arc::new(OnceLock::new());
        let _ = cell.set(plan.clone());
        let entry = PlanEntry {
            sql: plan.sql().to_string(),
            cell,
        };
        let evicted = match s.chains.get_mut(&hash) {
            Some(chain) => {
                chain.push(entry);
                let bytes = chain_heap_bytes(s.chains.peek(&hash).expect("just updated"));
                s.chains.set_bytes(&hash, bytes)
            }
            None => {
                let bytes = chain_heap_bytes(std::slice::from_ref(&entry));
                s.chains.insert(hash, vec![entry], bytes)
            }
        };
        s.entries += 1;
        let n: usize = evicted.iter().map(|(_, c)| c.len()).sum();
        self.book_evictions(&mut s, evicted);
        n
    }

    /// Every fully compiled plan currently resident (a maintenance walk —
    /// does not touch visited bits). Snapshot save iterates this.
    pub fn compiled_plans(&self) -> Vec<Arc<TemplatePlan>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let s = shard.read();
            for (_, chain) in s.chains.iter() {
                for e in chain {
                    if let Some(plan) = e.cell.get() {
                        out.push(plan.clone());
                    }
                }
            }
        }
        out
    }

    /// The cached plan for a template, if present and fully compiled.
    pub fn get(&self, sql: &str) -> Option<Arc<TemplatePlan>> {
        let hash = template_hash(sql);
        let s = self.shard(hash).read();
        s.chains
            .get(&hash)?
            .iter()
            .find(|e| e.sql == sql)
            .and_then(|e| e.cell.get().cloned())
    }
}

/// Accounted heap bytes of one collision chain: entry slots, template SQL,
/// and each compiled plan (uncompiled cells count their SQL only; the
/// pending sweep re-accounts them once compiled).
fn chain_heap_bytes(chain: &[PlanEntry]) -> usize {
    std::mem::size_of_val(chain)
        + chain
            .iter()
            .map(|e| {
                e.sql.capacity() + e.cell.get().map(|p| plan_heap_bytes(p)).unwrap_or_default()
            })
            .sum::<usize>()
}

/// Heap bytes owned by one compiled plan. The parsed [`Statement`] is
/// opaque to this crate, so it is approximated by the template's source
/// text (an AST over interned operators is the same order of magnitude as
/// its source); everything else — translation CQs, candidate-view lists,
/// certificates — is counted exactly from vector capacities.
pub(crate) fn plan_heap_bytes(plan: &TemplatePlan) -> usize {
    use crate::mem::cq_heap_bytes;
    use std::mem::size_of;
    let mut b = size_of::<TemplatePlan>() + plan.sql.capacity();
    match &plan.body {
        PlanBody::ParseError(m) => b += m.capacity(),
        PlanBody::Other(_) => b += plan.sql.len(),
        PlanBody::Write(wp) => {
            b += plan.sql.len(); // the parsed Statement, approximated
            match &wp.template {
                Ok(t) => b += t.heap_bytes(),
                Err(m) => b += m.capacity(),
            }
        }
        PlanBody::Select(sp) => {
            b += plan.sql.len(); // the parsed Statement, approximated
            match &sp.translation {
                Ok(ds) => {
                    b += ds.capacity() * size_of::<DisjunctPlan>();
                    for d in ds {
                        b += cq_heap_bytes(&d.template)
                            + d.view_indices.capacity() * size_of::<usize>();
                    }
                }
                Err(m) => b += m.capacity(),
            }
            if let Some(TemplateVerdict::Allowed(certs)) = &sp.template {
                b += certs.capacity() * size_of::<Certificate>();
                for c in certs {
                    b += cq_heap_bytes(&c.rewriting)
                        + c.expansion.as_ref().map(cq_heap_bytes).unwrap_or(0);
                }
            }
        }
    }
    b
}

impl crate::mem::HeapUsage for PlanCache {
    /// Walks every shard under its read lock: entry chains, template SQL,
    /// and each compiled plan's translation and certificates. This is the
    /// exact walk; the per-shard `BoundedCache` accounting it cross-checks
    /// may briefly lag for plans compiled but not yet swept.
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = 0;
        for shard in &self.shards {
            let s = shard.read();
            total += s.pending.capacity() * size_of::<u64>();
            for (_, chain) in s.chains.iter() {
                total += chain.capacity() * size_of::<PlanEntry>();
                for e in chain {
                    total += e.sql.capacity();
                    if let Some(plan) = e.cell.get() {
                        total += plan_heap_bytes(plan);
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use qlogic::RelSchema;

    fn checker() -> ComplianceChecker {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s.add_table("Lonely", ["X"]);
        let policy = Policy::from_sql(
            &s,
            &[
                ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
                (
                    "V2",
                    "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                     WHERE a.UId = ?MyUId",
                ),
                ("VL", "SELECT X FROM Lonely"),
            ],
        )
        .unwrap();
        ComplianceChecker::new(s, policy)
    }

    fn compile(c: &ComplianceChecker, sql: &str, attempt: bool) -> TemplatePlan {
        compile_plan(c, sql, template_hash(sql), attempt, &mut |_| {})
    }

    #[test]
    fn select_plan_prunes_candidate_views() {
        let c = checker();
        let plan = compile(&c, "SELECT * FROM Events WHERE EId = ?e", true);
        let select = plan.select().expect("select body");
        let disjuncts = select.translation.as_ref().expect("in fragment");
        assert_eq!(disjuncts.len(), 1);
        // Only V2 mentions Events; V1 (Attendance) and VL (Lonely) prune.
        assert_eq!(disjuncts[0].view_indices, vec![1]);
        assert!(matches!(
            select.template,
            Some(TemplateVerdict::Undecidable)
        ));
    }

    #[test]
    fn template_allowed_plan_carries_certificates() {
        let c = checker();
        let plan = compile(&c, "SELECT EId FROM Attendance WHERE UId = ?MyUId", true);
        let select = plan.select().unwrap();
        match &select.template {
            Some(TemplateVerdict::Allowed(certs)) => {
                assert_eq!(certs.len(), 1);
                assert!(
                    certs[0].expansion.is_some(),
                    "view rewriting carries its precompiled expansion"
                );
            }
            other => panic!("expected template-allowed, got {other:?}"),
        }
    }

    #[test]
    fn template_proof_skipped_when_disabled() {
        let c = checker();
        let plan = compile(&c, "SELECT EId FROM Attendance WHERE UId = ?MyUId", false);
        assert!(plan.select().unwrap().template.is_none());
    }

    #[test]
    fn parse_error_and_dml_bodies() {
        let c = checker();
        assert!(matches!(
            compile(&c, "SELEC whoops", true).body(),
            PlanBody::ParseError(_)
        ));
        match compile(&c, "DELETE FROM Events WHERE EId = 1", true).body() {
            // Events appears in no view with a deletable shape pinned to
            // the session: Title/Kind are fresh post-extraction and V2
            // joins through Attendance.
            PlanBody::Write(wp) => {
                let t = wp.template.as_ref().expect("extractable");
                assert_eq!(t.atoms.len(), 1);
            }
            other => panic!("expected write body, got {other:?}"),
        }
        assert!(matches!(
            compile(&c, "CREATE TABLE Scratch (A INT PRIMARY KEY)", true).body(),
            PlanBody::Other(_)
        ));
    }

    #[test]
    fn write_plan_carries_template_verdict() {
        use crate::write::WriteTemplateVerdict;
        let c = checker();
        let verdict = |sql: &str| match compile(&c, sql, true).body() {
            PlanBody::Write(wp) => wp.template.as_ref().expect("extractable").verdict,
            other => panic!("expected write body, got {other:?}"),
        };
        // Deleting one's own attendance: V1's body atom unifies directly
        // (EId/Notes are undetermined), no remaining atoms — allowed for
        // every session.
        assert_eq!(
            verdict("DELETE FROM Attendance WHERE UId = ?MyUId"),
            WriteTemplateVerdict::Allowed
        );
        // Inserting with a known Notes value: V1 hides Notes, and V2's
        // Events join can only be discharged by trace facts — concrete.
        assert_eq!(
            verdict("INSERT INTO Attendance (UId, EId, Notes) VALUES (?MyUId, ?e, ?n)"),
            WriteTemplateVerdict::Undecidable
        );
    }

    #[test]
    fn out_of_fragment_translation_is_replayable() {
        let c = checker();
        let plan = compile(&c, "SELECT COUNT(*) FROM Events", true);
        let select = plan.select().unwrap();
        assert!(select.translation.is_err());
        assert!(matches!(
            select.template,
            Some(TemplateVerdict::Undecidable)
        ));
    }

    #[test]
    fn cache_entry_is_prove_once() {
        let cache = PlanCache::new(64);
        let c = checker();
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        let (cell, existed) = cache.entry(sql);
        assert!(!existed);
        let mut built = false;
        cell.get_or_init(|| {
            built = true;
            Arc::new(compile(&c, sql, true))
        });
        assert!(built);
        let (cell2, existed2) = cache.entry(sql);
        assert!(existed2);
        assert!(Arc::ptr_eq(&cell, &cell2));
        let mut rebuilt = false;
        cell2.get_or_init(|| {
            rebuilt = true;
            Arc::new(compile(&c, sql, true))
        });
        assert!(!rebuilt, "second entry reuses the compiled plan");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_misses_compile_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = PlanCache::new(64);
        let c = checker();
        let sql = "SELECT * FROM Events WHERE EId = ?e";
        let compiles = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let (cache, c, compiles) = (&cache, &c, &compiles);
                scope.spawn(move || {
                    let (cell, _) = cache.entry(sql);
                    let plan = cell
                        .get_or_init(|| {
                            compiles.fetch_add(1, Ordering::Relaxed);
                            Arc::new(compile(c, sql, true))
                        })
                        .clone();
                    assert_eq!(plan.sql(), sql);
                });
            }
        });
        assert_eq!(compiles.load(Ordering::Relaxed), 1, "one proof, 8 winners");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bounds_the_cache_with_sieve_eviction() {
        // Per-shard SIEVE: total retained entries never exceed the rounded
        // capacity, and re-asking for an evicted template recompiles it.
        // With no hits between inserts every entry is unvisited, so the
        // hand takes the oldest each time (FIFO degenerate case).
        let cache = PlanCache::new(1); // rounds to 1 per shard
        let c = checker();
        let sqls: Vec<String> = (0..200)
            .map(|i| format!("SELECT * FROM Events WHERE EId = {i}"))
            .collect();
        for sql in &sqls {
            let (cell, _) = cache.entry(sql);
            cell.get_or_init(|| Arc::new(compile(&c, sql, false)));
        }
        assert!(
            cache.len() <= PLAN_SHARDS,
            "len {} exceeds capacity",
            cache.len()
        );
        assert!(cache.evicted_total() > 0);
        // The newest template of some shard is still present; the oldest
        // overall is gone and comes back as a fresh (uncompiled) cell.
        assert!(cache.get(&sqls[199]).is_some());
        let (_, existed) = cache.entry(&sqls[0]);
        assert!(!existed, "evicted template must be re-inserted");
    }

    #[test]
    fn byte_budget_bounds_resident_plans() {
        use crate::mem::HeapUsage;
        // A tiny byte budget with a huge count capacity: the budget alone
        // must bound residency, and the eviction counter must report it.
        let evictions = Arc::new(Counter::default());
        let cache = PlanCache::with_budget(1_000_000, 8 * 1024, Some(evictions.clone()));
        let c = checker();
        for i in 0..200 {
            let sql = format!("SELECT * FROM Events WHERE EId = {i}");
            let (cell, _) = cache.entry(&sql);
            cell.get_or_init(|| Arc::new(compile(&c, &sql, true)));
        }
        // Force the lazy re-accounting sweep in every shard, then check the
        // exact walk against the budget (generous slack: per-shard split,
        // one protected entry per shard, and sweep laziness).
        for i in 200..232 {
            let sql = format!("SELECT * FROM Events WHERE EId = {i}");
            let (cell, _) = cache.entry(&sql);
            cell.get_or_init(|| Arc::new(compile(&c, &sql, true)));
        }
        assert!(evictions.get() > 0, "budget must force evictions");
        assert!(
            cache.len() < 200,
            "resident count {} not bounded",
            cache.len()
        );
        let walked = cache.heap_bytes();
        assert!(
            walked < 64 * 1024,
            "heap bytes {walked} far exceed an 8 KiB budget"
        );
    }

    #[test]
    fn frequently_hit_plans_survive_one_shot_scans() {
        let cache = PlanCache::new(32); // 2 per shard
        let c = checker();
        let hot = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        let (cell, _) = cache.entry(hot);
        cell.get_or_init(|| Arc::new(compile(&c, hot, false)));
        for i in 0..400 {
            assert!(cache.get(hot).is_some(), "hot plan evicted at scan {i}");
            let sql = format!("SELECT * FROM Events WHERE EId = {i}");
            let (cell, _) = cache.entry(&sql);
            cell.get_or_init(|| Arc::new(compile(&c, &sql, false)));
        }
        assert!(cache.get(hot).is_some(), "scan-resistance violated");
    }

    #[test]
    fn insert_compiled_publishes_prefilled_cell() {
        let cache = PlanCache::new(64);
        let c = checker();
        let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        let plan = Arc::new(compile(&c, sql, true));
        assert_eq!(cache.insert_compiled(plan.clone()), 0);
        let got = cache.get(sql).expect("resident and compiled");
        assert!(Arc::ptr_eq(&got, &plan));
        let (cell, existed) = cache.entry(sql);
        assert!(existed, "no recompilation after warm install");
        assert!(cell.get().is_some());
        // Idempotent: a second install of the same template is a no-op.
        assert_eq!(cache.insert_compiled(plan), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.compiled_plans().len(), 1);
    }

    #[test]
    fn hash_collisions_fall_back_to_full_sql_comparison() {
        let cache = PlanCache::new(64);
        let c = checker();
        let a = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
        let b = "SELECT * FROM Events WHERE EId = ?e";
        let forced = 0xdead_beef_u64; // same hash for both templates
        let (cell_a, _) = cache.entry_hashed(forced, a);
        cell_a.get_or_init(|| Arc::new(compile(&c, a, true)));
        let (cell_b, existed_b) = cache.entry_hashed(forced, b);
        assert!(!existed_b, "colliding template is a distinct entry");
        cell_b.get_or_init(|| Arc::new(compile(&c, b, true)));
        assert!(!Arc::ptr_eq(&cell_a, &cell_b));
        assert_eq!(cell_a.get().unwrap().sql(), a);
        assert_eq!(cell_b.get().unwrap().sql(), b);
        assert_eq!(cache.len(), 2);
        // Both remain retrievable through the same forced hash.
        let (again_a, existed) = cache.entry_hashed(forced, a);
        assert!(existed);
        assert!(Arc::ptr_eq(&again_a, &cell_a));
    }
}
