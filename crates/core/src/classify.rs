//! Statement classification: what kind of access a statement performs and
//! whether a session's access mode permits it.
//!
//! Classification is structural — it inspects the parsed
//! [`sqlir::Statement`], never the SQL text — so a mutation can never
//! masquerade as a read through formatting, comments, or casing tricks.

use sqlir::Statement;

/// The broad access class of a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatementClass {
    /// A `SELECT`: reads data, never changes it.
    Read,
    /// An `INSERT`, `UPDATE`, or `DELETE`: changes row data.
    Write,
    /// DDL (`CREATE TABLE`): changes schema, not rows.
    Ddl,
}

impl StatementClass {
    /// Classifies a parsed statement. Purely structural.
    pub fn of(stmt: &Statement) -> StatementClass {
        match stmt {
            Statement::Select(_) => StatementClass::Read,
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                StatementClass::Write
            }
            Statement::CreateTable(_) => StatementClass::Ddl,
        }
    }

    /// A short stable label for reporting.
    pub fn label(self) -> &'static str {
        match self {
            StatementClass::Read => "read",
            StatementClass::Write => "write",
            StatementClass::Ddl => "ddl",
        }
    }
}

/// What a session is allowed to do, independent of any policy question.
///
/// The mode is a per-session capability: a `ReadOnly` session gets every
/// mutation denied up front with [`crate::DenyReason::ReadOnlySession`],
/// before policy coverage is even considered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessMode {
    /// The session may only read.
    ReadOnly,
    /// The session may read and mutate (the default).
    #[default]
    ReadWrite,
}

impl AccessMode {
    /// Whether this mode permits a statement of the given class. DDL is
    /// treated as a write for permission purposes.
    pub fn permits(self, class: StatementClass) -> bool {
        match self {
            AccessMode::ReadWrite => true,
            AccessMode::ReadOnly => class == StatementClass::Read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlir::parse_statement;

    fn class_of(sql: &str) -> StatementClass {
        StatementClass::of(&parse_statement(sql).expect("parse"))
    }

    #[test]
    fn classification_is_structural() {
        assert_eq!(class_of("SELECT 1 FROM T"), StatementClass::Read);
        assert_eq!(
            class_of("INSERT INTO T (A) VALUES (1)"),
            StatementClass::Write
        );
        assert_eq!(class_of("UPDATE T SET A = 1"), StatementClass::Write);
        assert_eq!(class_of("DELETE FROM T WHERE A = 1"), StatementClass::Write);
        assert_eq!(
            class_of("CREATE TABLE T (A INT PRIMARY KEY)"),
            StatementClass::Ddl
        );
    }

    #[test]
    fn read_only_mode_permits_only_reads() {
        assert!(AccessMode::ReadOnly.permits(StatementClass::Read));
        assert!(!AccessMode::ReadOnly.permits(StatementClass::Write));
        assert!(!AccessMode::ReadOnly.permits(StatementClass::Ddl));
        for class in [
            StatementClass::Read,
            StatementClass::Write,
            StatementClass::Ddl,
        ] {
            assert!(AccessMode::ReadWrite.permits(class));
        }
    }

    #[test]
    fn default_mode_is_read_write() {
        assert_eq!(AccessMode::default(), AccessMode::ReadWrite);
    }
}
