//! Decision-provenance observability: the event journal and the metrics
//! registry.
//!
//! Enforcement alone is an opaque allow/deny; the paper's whole pitch (§5)
//! is that operators must be able to see *why* a decision came out the way
//! it did, and Blockaid's evaluation showed that *which cache tier fired*
//! dominates proxy latency. This module is the substrate both needs:
//!
//! * [`DecisionEvent`] — one structured record per [`SqlProxy::execute`]
//!   (session, query-template hash, verdict, the cache tier that decided,
//!   and a per-phase timing breakdown);
//! * [`EventJournal`] — a fixed-capacity ring buffer the proxy publishes
//!   events into. The hot path is lock-free: one `fetch_add` claims a slot
//!   and a per-slot seqlock publishes plain `u64` words, so a decision
//!   never blocks on a reader. Overflow evicts the oldest events and is
//!   *counted*, never silent;
//! * [`MetricsRegistry`] — named counters, gauges, and latency histograms
//!   with a Prometheus-style text exposition, so a live server can be
//!   scraped without any external crate.
//!
//! [`SqlProxy::execute`]: crate::proxy::SqlProxy::execute
//!
//! # Ring-buffer semantics
//!
//! The journal holds the newest `capacity` events. Writers never wait for
//! readers: when the ring wraps, the oldest unread events are overwritten.
//! Every event carries a monotone sequence number, so readers are
//! stateless cursors — [`EventJournal::events_since`] returns the retained
//! events after a sequence number, and the exact count of evicted events
//! is always available ([`EventJournal::evicted`]). A torn read is
//! impossible: each slot's version word brackets the payload words
//! (seqlock), and a reader that observes a version change mid-copy
//! discards the slot and counts it as evicted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

use crate::latency::{LatencyHistogram, LatencySnapshot};
use crate::span::SpanSummary;

/// Number of timed decision phases.
pub const PHASE_COUNT: usize = 6;

/// One timed phase of the decision path. The phases partition an
/// `execute` call in order; glue code between two phases is attributed to
/// the phase that follows it (the timer laps at phase boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// SQL text to statement.
    Parse = 0,
    /// Positive + negative template-cache lookups.
    TemplateLookup = 1,
    /// Per-session concrete allow/deny cache lookups.
    ConcreteLookup = 2,
    /// Symbolic proof work (template-level or concrete).
    Proof = 3,
    /// Running the allowed statement against the database.
    DbExec = 4,
    /// Recording the observation into the session trace.
    TraceRecord = 5,
}

impl Phase {
    /// Every phase, in decision-path order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Parse,
        Phase::TemplateLookup,
        Phase::ConcreteLookup,
        Phase::Proof,
        Phase::DbExec,
        Phase::TraceRecord,
    ];

    /// The stable label used on the wire and in the metrics exposition.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::TemplateLookup => "template-lookup",
            Phase::ConcreteLookup => "concrete-lookup",
            Phase::Proof => "proof",
            Phase::DbExec => "db-exec",
            Phase::TraceRecord => "trace-record",
        }
    }
}

/// Which tier of the decision stack produced the verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Served by the global template cache.
    TemplateCache = 0,
    /// Served by the per-session concrete allow cache.
    SessionCache = 1,
    /// Served by the per-session deny cache.
    DenyCache = 2,
    /// Decided by a fresh template-level proof.
    TemplateProof = 3,
    /// Decided by a fresh concrete (session + trace) proof.
    ConcreteProof = 4,
    /// No tier applies (parse errors, DML pass-through, blocked writes).
    Uncached = 5,
}

impl CacheTier {
    /// The stable label used on the wire and in the metrics exposition.
    pub fn label(self) -> &'static str {
        match self {
            CacheTier::TemplateCache => "template-cache",
            CacheTier::SessionCache => "session-cache",
            CacheTier::DenyCache => "deny-cache",
            CacheTier::TemplateProof => "template-proof",
            CacheTier::ConcreteProof => "concrete-proof",
            CacheTier::Uncached => "uncached",
        }
    }

    /// Parses a stable label back (wire decoding).
    pub fn from_label(s: &str) -> Option<CacheTier> {
        Some(match s {
            "template-cache" => CacheTier::TemplateCache,
            "session-cache" => CacheTier::SessionCache,
            "deny-cache" => CacheTier::DenyCache,
            "template-proof" => CacheTier::TemplateProof,
            "concrete-proof" => CacheTier::ConcreteProof,
            "uncached" => CacheTier::Uncached,
            _ => return None,
        })
    }

    fn from_u64(v: u64) -> CacheTier {
        match v {
            0 => CacheTier::TemplateCache,
            1 => CacheTier::SessionCache,
            2 => CacheTier::DenyCache,
            3 => CacheTier::TemplateProof,
            4 => CacheTier::ConcreteProof,
            _ => CacheTier::Uncached,
        }
    }
}

/// The verdict an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The statement was allowed (or passed through).
    Allowed = 0,
    /// The statement was blocked.
    Blocked = 1,
}

impl Verdict {
    /// The stable label used on the wire.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Allowed => "allowed",
            Verdict::Blocked => "blocked",
        }
    }

    /// Parses a stable label back (wire decoding).
    pub fn from_label(s: &str) -> Option<Verdict> {
        match s {
            "allowed" => Some(Verdict::Allowed),
            "blocked" => Some(Verdict::Blocked),
            _ => None,
        }
    }
}

/// One decision's provenance record. `Copy` and heap-free by design: the
/// journal stores events as plain `u64` words so concurrent readers can
/// never observe a torn pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionEvent {
    /// Monotone journal sequence number (assigned on publication).
    pub seq: u64,
    /// The session the decision belonged to.
    pub session: u64,
    /// FNV-1a hash of the SQL template text (see [`template_hash`]).
    pub template_hash: u64,
    /// Allowed or blocked.
    pub verdict: Verdict,
    /// The tier of the decision stack that produced the verdict.
    pub tier: CacheTier,
    /// Whether the negative template cache short-circuited a re-proof on
    /// the way to the concrete tier.
    pub negative_template_hit: bool,
    /// End-to-end `execute` latency in nanoseconds.
    pub total_ns: u64,
    /// Per-phase nanoseconds, indexed by [`Phase`] (`as usize`). Phases
    /// that did not run are zero.
    pub phase_ns: [u64; PHASE_COUNT],
    /// Compact solver-work summary from the decision's span tree
    /// (all-zero when span collection is disabled).
    pub span: SpanSummary,
}

impl DecisionEvent {
    /// The time attributed to one phase.
    pub fn phase(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize]
    }
}

/// FNV-1a over the SQL template text: the stable query-template identity
/// shipped in events (the raw SQL may be long and may embed user data; the
/// hash is fixed-width and join-able across events, logs, and caches).
pub fn template_hash(sql: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sql.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Words per journal slot: seq, session, template hash, packed
/// verdict/tier/negative-hit, total, one per phase, and the three-word
/// span summary.
const EVENT_WORDS: usize = 8 + PHASE_COUNT;

fn encode_event(ev: &DecisionEvent) -> [u64; EVENT_WORDS] {
    let mut w = [0u64; EVENT_WORDS];
    w[0] = ev.seq;
    w[1] = ev.session;
    w[2] = ev.template_hash;
    w[3] = ev.verdict as u64 | (ev.tier as u64) << 8 | u64::from(ev.negative_template_hit) << 16;
    w[4] = ev.total_ns;
    w[5..5 + PHASE_COUNT].copy_from_slice(&ev.phase_ns);
    w[5 + PHASE_COUNT..].copy_from_slice(&ev.span.to_words());
    w
}

fn decode_event(w: &[u64; EVENT_WORDS]) -> DecisionEvent {
    let mut phase_ns = [0u64; PHASE_COUNT];
    phase_ns.copy_from_slice(&w[5..5 + PHASE_COUNT]);
    let mut span_words = [0u64; 3];
    span_words.copy_from_slice(&w[5 + PHASE_COUNT..]);
    DecisionEvent {
        seq: w[0],
        session: w[1],
        template_hash: w[2],
        verdict: if w[3] & 0xff == 0 {
            Verdict::Allowed
        } else {
            Verdict::Blocked
        },
        tier: CacheTier::from_u64((w[3] >> 8) & 0xff),
        negative_template_hit: (w[3] >> 16) & 1 == 1,
        total_ns: w[4],
        phase_ns,
        span: SpanSummary::from_words(span_words),
    }
}

/// One ring slot: a seqlock version word bracketing the payload words.
/// A slot that holds the fully published event with sequence `s` has
/// `version == 2*s + 2`; an odd version marks a write in progress.
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A stateless reader position over an [`EventJournal`]: remembers the
/// next sequence number to deliver and how many events this reader missed
/// to eviction. `Default` starts at the beginning of time (everything
/// already evicted counts as dropped on the first poll).
#[derive(Debug, Default, Clone, Copy)]
pub struct JournalCursor {
    next: u64,
    dropped: u64,
}

impl JournalCursor {
    /// A cursor positioned at sequence `next`, with nothing charged as
    /// dropped yet: everything before `next` counts as intentionally
    /// skipped, not lost. This is how a `subscribe {after}` stream starts.
    pub fn starting_at(next: u64) -> JournalCursor {
        JournalCursor { next, dropped: 0 }
    }

    /// Events this cursor missed because the ring evicted them first.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The next sequence number this cursor will deliver.
    pub fn position(&self) -> u64 {
        self.next
    }
}

/// Fixed-capacity, lock-free decision-event ring.
///
/// Writers are wait-free in the common case: one `fetch_add` claims a
/// sequence number, the slot is published under a per-slot seqlock, and
/// the only contention is between two writers a full ring apart (i.e. the
/// journal already overflowed by a whole capacity mid-write), where the
/// later writer wins and the earlier event counts as evicted.
pub struct EventJournal {
    slots: Box<[Slot]>,
    /// Total events ever claimed; the next event's sequence number.
    head: AtomicU64,
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventJournal")
            .field("capacity", &self.capacity())
            .field("published", &self.published())
            .field("evicted", &self.evicted())
            .finish()
    }
}

impl EventJournal {
    /// Creates a journal retaining the newest `capacity` events
    /// (rounded up to at least 2).
    pub fn with_capacity(capacity: usize) -> EventJournal {
        let n = capacity.max(2);
        EventJournal {
            slots: (0..n).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// How many events the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever published (monotone).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Total events no longer retrievable (evicted by ring wrap-around).
    /// Monotone and exact: an event that loses a (rare) wrap race to a
    /// writer a full ring ahead is by definition already older than the
    /// retained window, so it is covered by this count too.
    pub fn evicted(&self) -> u64 {
        self.published().saturating_sub(self.capacity() as u64)
    }

    /// Publishes one event, assigning and returning its sequence number.
    /// Lock-free; never blocks on readers.
    pub fn record(&self, ev: DecisionEvent) -> u64 {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        self.publish_at(seq, ev);
        seq
    }

    /// Publishes a batch of events under one sequence-block claim: a
    /// single `fetch_add` reserves `events.len()` consecutive numbers, so
    /// a cross-connection batch pays one contended atomic instead of one
    /// per decision. Returns the first assigned sequence number (events
    /// are numbered consecutively from it, in order).
    pub fn record_many(&self, events: Vec<DecisionEvent>) -> u64 {
        let n = events.len() as u64;
        if n == 0 {
            return self.head.load(Ordering::Acquire);
        }
        let base = self.head.fetch_add(n, Ordering::AcqRel);
        for (i, ev) in events.into_iter().enumerate() {
            self.publish_at(base + i as u64, ev);
        }
        base
    }

    /// Publishes `ev` into the slot owned by the already claimed `seq`.
    fn publish_at(&self, seq: u64, mut ev: DecisionEvent) {
        let n = self.slots.len() as u64;
        ev.seq = seq;
        let slot = &self.slots[(seq % n) as usize];
        let claimed = 2 * seq + 1;
        let published = 2 * seq + 2;
        loop {
            let v = slot.version.load(Ordering::Acquire);
            if v >= published {
                // A writer a full ring ahead already owns this slot: our
                // event would be overwritten immediately anyway. Let the
                // newer event stand; ours counts as evicted.
                return;
            }
            if v % 2 == 1 {
                // A writer one ring behind is mid-publish; it finishes in
                // a handful of relaxed stores.
                std::hint::spin_loop();
                continue;
            }
            if slot
                .version
                .compare_exchange_weak(v, claimed, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        for (w, val) in slot.words.iter().zip(encode_event(&ev)) {
            w.store(val, Ordering::Relaxed);
        }
        slot.version.store(published, Ordering::Release);
    }

    /// The retained events with sequence numbers in `[after, head)`, oldest
    /// first, at most `max`. Events already evicted are skipped (the ring
    /// only holds the newest `capacity`); use a [`JournalCursor`] to track
    /// how many were missed. Stateless, so any number of subscribers (and
    /// remote scrapers) can read concurrently without coordination.
    pub fn events_since(&self, after: u64, max: usize) -> Vec<DecisionEvent> {
        let head = self.head.load(Ordering::Acquire);
        let n = self.slots.len() as u64;
        let start = after.max(head.saturating_sub(n));
        let mut out = Vec::with_capacity(((head - start) as usize).min(max));
        for seq in start..head {
            if out.len() >= max {
                break;
            }
            let slot = &self.slots[(seq % n) as usize];
            let expect = 2 * seq + 2;
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 < expect {
                // The writer holding this sequence number has not finished
                // publishing; everything later is newer still, but order
                // matters more than eagerness — stop here.
                break;
            }
            if v1 > expect {
                continue; // evicted while scanning
            }
            let words: [u64; EVENT_WORDS] =
                std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            if slot.version.load(Ordering::Acquire) != v1 {
                continue; // overwritten mid-copy: discard, never torn
            }
            out.push(decode_event(&words));
        }
        out
    }

    /// Polls for a cursor: delivers up to `max` new events and advances
    /// the cursor, accounting exactly for any events evicted before this
    /// poll could see them.
    pub fn poll(&self, cursor: &mut JournalCursor, max: usize) -> Vec<DecisionEvent> {
        let events = self.events_since(cursor.next, max);
        let head = self.head.load(Ordering::Acquire);
        match events.last() {
            Some(last) => {
                // Everything in [cursor.next, first delivered) plus any
                // mid-scan gaps was evicted.
                let delivered = events.len() as u64;
                let advanced = last.seq + 1 - cursor.next;
                cursor.dropped += advanced - delivered;
                cursor.next = last.seq + 1;
            }
            None => {
                // Nothing retained past the cursor: if head moved beyond
                // the ring, the gap was evicted wholesale.
                let floor = head.saturating_sub(self.slots.len() as u64);
                if floor > cursor.next {
                    cursor.dropped += floor - cursor.next;
                    cursor.next = floor;
                }
            }
        }
        events
    }

    /// The newest `max` retained events, oldest first, optionally filtered
    /// to one session. Non-destructive.
    pub fn recent(&self, max: usize, session: Option<u64>) -> Vec<DecisionEvent> {
        let mut events = self.events_since(0, usize::MAX);
        if let Some(sid) = session {
            events.retain(|e| e.session == sid);
        }
        if events.len() > max {
            events.drain(..events.len() - max);
        }
        events
    }
}

impl crate::mem::HeapUsage for EventJournal {
    /// The slot array is the journal's entire heap footprint: fixed at
    /// construction, independent of traffic.
    fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }
}

/// Laps a single clock across the sequential decision phases: each call
/// attributes the time since the previous boundary to one phase, so the
/// whole breakdown costs one `Instant::now` per phase boundary rather
/// than two. Phases may lap more than once (e.g. `Proof` runs at both the
/// template and concrete tiers); laps accumulate.
#[derive(Debug)]
pub struct PhaseTimer {
    mark: Instant,
    phase_ns: [u64; PHASE_COUNT],
}

impl PhaseTimer {
    /// Starts the clock.
    pub fn start() -> PhaseTimer {
        PhaseTimer {
            mark: Instant::now(),
            phase_ns: [0; PHASE_COUNT],
        }
    }

    /// Attributes the time since the previous boundary to `phase`.
    pub fn lap(&mut self, phase: Phase) {
        let now = Instant::now();
        let ns = now
            .duration_since(self.mark)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        self.phase_ns[phase as usize] += ns;
        self.mark = now;
    }

    /// The accumulated per-phase breakdown.
    pub fn phase_ns(&self) -> [u64; PHASE_COUNT] {
        self.phase_ns
    }
}

/// A monotone counter metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// A settable gauge metric.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Release);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// The value side of one labelled series.
#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHistogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "summary",
        }
    }
}

struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// A registry of named metrics with a Prometheus-style text exposition.
///
/// Families are registered once (idempotently — re-registering the same
/// name + labels returns the existing handle) and rendered in
/// registration order. Histograms are exposed as summaries: one
/// `{quantile="…"}` series per percentile plus `_sum` and `_count`,
/// sourced from the same [`LatencyHistogram`] snapshots the benches read.
pub struct MetricsRegistry {
    families: RwLock<Vec<Family>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.read();
        f.debug_struct("MetricsRegistry")
            .field("families", &families.len())
            .finish()
    }
}

fn labels_of(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            families: RwLock::new(Vec::new()),
        }
    }

    fn register(&self, name: &str, help: &str, labels: &[(&str, &str)], make: Handle) -> Handle {
        let labels = labels_of(labels);
        let mut families = self.families.write();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            assert_eq!(
                existing.handle.kind(),
                make.kind(),
                "metric {name:?} re-registered with a different kind"
            );
            return existing.handle.clone();
        }
        assert!(
            family
                .series
                .first()
                .map(|s| s.handle.kind() == make.kind())
                .unwrap_or(true),
            "metric family {name:?} mixes kinds"
        );
        family.series.push(Series {
            labels,
            handle: make.clone(),
        });
        make
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(
            name,
            help,
            labels,
            Handle::Counter(Arc::new(Counter::default())),
        ) {
            Handle::Counter(c) => c,
            _ => unreachable!("kind asserted in register"),
        }
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(
            name,
            help,
            labels,
            Handle::Gauge(Arc::new(Gauge::default())),
        ) {
            Handle::Gauge(g) => g,
            _ => unreachable!("kind asserted in register"),
        }
    }

    /// Registers (or retrieves) a latency-histogram series (exposed as a
    /// summary).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<LatencyHistogram> {
        match self.register(
            name,
            help,
            labels,
            Handle::Histogram(Arc::new(LatencyHistogram::new())),
        ) {
            Handle::Histogram(h) => h,
            _ => unreachable!("kind asserted in register"),
        }
    }

    /// Renders the Prometheus text exposition.
    pub fn render(&self) -> String {
        let families = self.families.read();
        let mut out = String::new();
        for family in families.iter() {
            let kind = family
                .series
                .first()
                .map(|s| s.handle.kind())
                .unwrap_or("counter");
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, kind));
            for series in &family.series {
                match &series.handle {
                    Handle::Counter(c) => {
                        render_sample(&mut out, &family.name, &series.labels, &[], c.get());
                    }
                    Handle::Gauge(g) => {
                        render_sample(&mut out, &family.name, &series.labels, &[], g.get());
                    }
                    Handle::Histogram(h) => {
                        let s: LatencySnapshot = h.snapshot();
                        for (q, v) in [("0.5", s.p50_ns), ("0.95", s.p95_ns), ("0.99", s.p99_ns)] {
                            render_sample(
                                &mut out,
                                &family.name,
                                &series.labels,
                                &[("quantile", q)],
                                v,
                            );
                        }
                        render_sample(
                            &mut out,
                            &format!("{}_sum", family.name),
                            &series.labels,
                            &[],
                            s.sum_ns,
                        );
                        render_sample(
                            &mut out,
                            &format!("{}_count", family.name),
                            &series.labels,
                            &[],
                            s.count,
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: u64,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{k}=\"{v}\""));
        }
        out.push('}');
    }
    out.push_str(&format!(" {value}\n"));
}

/// Point-in-time process memory readings from the kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessMemory {
    /// Resident set size in bytes (`/proc/self/statm` field 2 × page size).
    pub resident_bytes: u64,
    /// Peak resident set size in bytes (`VmHWM:` from `/proc/self/status`).
    pub peak_resident_bytes: u64,
}

/// The hardware page size, from the auxiliary vector's `AT_PAGESZ` entry
/// (no libc dependency); 4096 when `/proc/self/auxv` is unavailable.
fn page_size() -> u64 {
    static PAGE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *PAGE.get_or_init(|| {
        if let Ok(buf) = std::fs::read("/proc/self/auxv") {
            const AT_PAGESZ: u64 = 6;
            let mut i = 0;
            while i + 16 <= buf.len() {
                let key = u64::from_ne_bytes(buf[i..i + 8].try_into().unwrap());
                let val = u64::from_ne_bytes(buf[i + 8..i + 16].try_into().unwrap());
                if key == AT_PAGESZ && val > 0 {
                    return val;
                }
                i += 16;
            }
        }
        4096
    })
}

/// Reads the current process's memory from procfs. On platforms without
/// `/proc` both readings are zero (the gauges then report 0 rather than
/// failing).
pub fn read_process_memory() -> ProcessMemory {
    let resident_pages = std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .nth(1)
                .and_then(|v| v.parse::<u64>().ok())
        })
        .unwrap_or(0);
    let peak_kb = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse::<u64>().ok())
        })
        .unwrap_or(0);
    ProcessMemory {
        resident_bytes: resident_pages * page_size(),
        peak_resident_bytes: peak_kb * 1024,
    }
}

/// The process-memory gauge pair (`bep_process_resident_bytes`,
/// `bep_process_vm_hwm_bytes`), registered on a [`MetricsRegistry`] and
/// refreshed by [`MemoryGauges::sample`]. The soak bench and the serving
/// front-end's `--metrics` exposition both read memory through this one
/// source.
#[derive(Debug, Clone)]
pub struct MemoryGauges {
    resident: Arc<Gauge>,
    peak: Arc<Gauge>,
}

impl MemoryGauges {
    /// Registers the gauge pair on `registry`.
    pub fn register(registry: &MetricsRegistry) -> MemoryGauges {
        MemoryGauges {
            resident: registry.gauge(
                "bep_process_resident_bytes",
                "Resident set size (RSS) of this process in bytes",
                &[],
            ),
            peak: registry.gauge(
                "bep_process_vm_hwm_bytes",
                "Peak resident set size (VmHWM) of this process in bytes",
                &[],
            ),
        }
    }

    /// Reads procfs, refreshes both gauges, and returns the reading.
    pub fn sample(&self) -> ProcessMemory {
        let m = read_process_memory();
        self.resident.set(m.resident_bytes);
        self.peak.set(m.peak_resident_bytes);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(session: u64) -> DecisionEvent {
        DecisionEvent {
            seq: 0,
            session,
            // A session-derived pattern so readers can verify integrity.
            template_hash: session.wrapping_mul(0x1234_5678_9abc_def1),
            verdict: if session.is_multiple_of(2) {
                Verdict::Allowed
            } else {
                Verdict::Blocked
            },
            tier: CacheTier::TemplateCache,
            negative_template_hit: session.is_multiple_of(3),
            total_ns: session.wrapping_mul(10),
            phase_ns: [session, 0, 0, session * 2, 0, 1],
            span: SpanSummary {
                rewrite_iterations: session as u32,
                containment_checks: session.wrapping_mul(5) as u32,
                hom_nodes: session.wrapping_mul(3) as u32,
                hom_backtracks: (session >> 1) as u32,
                cert_replays: (session % 7) as u16,
                cert_fallbacks: (session % 3) as u16,
                spans: 1 + (session % 5) as u16,
                truncated: session.is_multiple_of(5),
            },
        }
    }

    #[test]
    fn events_round_trip_the_word_encoding() {
        for session in [0u64, 1, 2, 3, u64::MAX / 3] {
            let mut ev = event(session);
            ev.seq = 99;
            ev.tier = CacheTier::ConcreteProof;
            assert_eq!(decode_event(&encode_event(&ev)), ev);
        }
    }

    #[test]
    fn journal_delivers_in_order_below_capacity() {
        let j = EventJournal::with_capacity(8);
        for s in 0..5 {
            j.record(event(s));
        }
        let events = j.events_since(0, usize::MAX);
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.session, i as u64);
        }
        assert_eq!(j.published(), 5);
        assert_eq!(j.evicted(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts_exactly() {
        // Satellite: fill the ring past capacity; the drop count must be
        // exact and precisely the newest `capacity` events must survive.
        let cap = 16;
        let extra = 23;
        let j = EventJournal::with_capacity(cap);
        let total = (cap + extra) as u64;
        for s in 0..total {
            j.record(event(s));
        }
        assert_eq!(j.published(), total);
        assert_eq!(j.evicted(), extra as u64);

        let mut cursor = JournalCursor::default();
        let events = j.poll(&mut cursor, usize::MAX);
        assert_eq!(events.len(), cap);
        assert_eq!(cursor.dropped(), extra as u64, "drop count is exact");
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (extra as u64..total).collect();
        assert_eq!(seqs, expect, "the newest events survive, oldest evicted");
        // And each survivor is intact.
        for e in &events {
            assert_eq!(e.session, e.seq);
            assert_eq!(e.template_hash, e.seq.wrapping_mul(0x1234_5678_9abc_def1));
        }
        // A second poll delivers nothing new and drops nothing more.
        assert!(j.poll(&mut cursor, usize::MAX).is_empty());
        assert_eq!(cursor.dropped(), extra as u64);
    }

    #[test]
    fn poll_is_incremental() {
        let j = EventJournal::with_capacity(64);
        let mut cursor = JournalCursor::default();
        for s in 0..10 {
            j.record(event(s));
        }
        assert_eq!(j.poll(&mut cursor, 4).len(), 4);
        assert_eq!(cursor.position(), 4);
        assert_eq!(j.poll(&mut cursor, usize::MAX).len(), 6);
        assert!(j.poll(&mut cursor, usize::MAX).is_empty());
        j.record(event(10));
        let next = j.poll(&mut cursor, usize::MAX);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].seq, 10);
        assert_eq!(cursor.dropped(), 0);
    }

    #[test]
    fn recent_filters_by_session() {
        let j = EventJournal::with_capacity(64);
        for s in 0..12 {
            j.record(event(s % 3));
        }
        let only_ones = j.recent(usize::MAX, Some(1));
        assert_eq!(only_ones.len(), 4);
        assert!(only_ones.iter().all(|e| e.session == 1));
        let newest_two = j.recent(2, None);
        assert_eq!(newest_two.len(), 2);
        assert_eq!(newest_two[1].seq, 11);
        assert_eq!(newest_two[0].seq, 10);
    }

    #[test]
    fn concurrent_writers_never_tear_events() {
        // Hammer a tiny ring from several threads while a reader polls
        // continuously: every event delivered must be internally
        // consistent (session-derived fields intact), and the total
        // accounting (delivered + dropped) must match what was published.
        let j = EventJournal::with_capacity(8);
        let writers = 4;
        let per_writer = 2_000u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let j = &j;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        j.record(event(w as u64 * per_writer + i));
                    }
                });
            }
            let j = &j;
            scope.spawn(move || {
                let mut cursor = JournalCursor::default();
                let mut seen = 0u64;
                let mut last_seq = None;
                while seen + cursor.dropped() < writers as u64 * per_writer {
                    for e in j.poll(&mut cursor, 64) {
                        // Integrity: all fields derive from `session`.
                        assert_eq!(
                            e.template_hash,
                            e.session.wrapping_mul(0x1234_5678_9abc_def1),
                            "torn event"
                        );
                        assert_eq!(e.total_ns, e.session.wrapping_mul(10), "torn event");
                        assert_eq!(
                            e.span.containment_checks,
                            e.session.wrapping_mul(5) as u32,
                            "torn span summary"
                        );
                        if let Some(prev) = last_seq {
                            assert!(e.seq > prev, "out-of-order delivery");
                        }
                        last_seq = Some(e.seq);
                        seen += 1;
                    }
                }
            });
        });
        let total = writers as u64 * per_writer;
        assert_eq!(j.published(), total);
        // Quiescent accounting: everything still in the ring is readable.
        assert_eq!(
            j.events_since(0, usize::MAX).len() as u64 + j.evicted(),
            total
        );
    }

    #[test]
    fn tier_and_verdict_labels_round_trip() {
        // Exhaustive rather than sampled: six tiers, two verdicts.
        for tier in [
            CacheTier::TemplateCache,
            CacheTier::SessionCache,
            CacheTier::DenyCache,
            CacheTier::TemplateProof,
            CacheTier::ConcreteProof,
            CacheTier::Uncached,
        ] {
            assert_eq!(CacheTier::from_label(tier.label()), Some(tier));
            assert_eq!(CacheTier::from_u64(tier as u64), tier);
        }
        for verdict in [Verdict::Allowed, Verdict::Blocked] {
            assert_eq!(Verdict::from_label(verdict.label()), Some(verdict));
        }
        assert_eq!(CacheTier::from_label("not-a-tier"), None);
        assert_eq!(Verdict::from_label("maybe"), None);
    }

    #[test]
    fn poll_accounts_lag_exactly_when_overtaken_by_eviction() {
        // Satellite: a slow poller whose cursor is overtaken by ring
        // eviction must see the exact dropped count at every poll, with
        // no duplicate and no unaccounted event.
        let cap = 8;
        let j = EventJournal::with_capacity(cap);
        let mut cursor = JournalCursor::default();
        assert!(j.poll(&mut cursor, usize::MAX).is_empty());
        assert_eq!(cursor.dropped(), 0);

        // Overflow while the poller sleeps: only the newest `cap` remain.
        for s in 0..20 {
            j.record(event(s));
        }
        let got = j.poll(&mut cursor, usize::MAX);
        assert_eq!(got.len(), cap);
        assert_eq!(got.first().unwrap().seq, 12);
        assert_eq!(cursor.dropped(), 12, "20 published, 8 retained");

        // Catch up within the window: nothing new dropped.
        for s in 20..25 {
            j.record(event(s));
        }
        let got = j.poll(&mut cursor, usize::MAX);
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (20..25).collect::<Vec<_>>()
        );
        assert_eq!(cursor.dropped(), 12);

        // Overtaken again: 11 published into an 8-slot ring from
        // position 25 → exactly 3 more lost.
        for s in 25..36 {
            j.record(event(s));
        }
        let got = j.poll(&mut cursor, usize::MAX);
        assert_eq!(
            got.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (28..36).collect::<Vec<_>>()
        );
        assert_eq!(cursor.dropped(), 15);
        assert_eq!(cursor.position(), j.published());

        // Grand total: every published event is either delivered or
        // counted dropped, never both.
        assert_eq!(cap as u64 + 5 + 8 + cursor.dropped(), j.published());
    }

    #[test]
    fn poll_never_duplicates_under_concurrent_eviction() {
        // Satellite: hammer a tiny ring with one writer while a poller
        // with a small batch size races it; every sequence number must be
        // delivered at most once and the final accounting must be exact.
        let j = EventJournal::with_capacity(4);
        let total = 10_000u64;
        std::thread::scope(|scope| {
            let j = &j;
            scope.spawn(move || {
                for s in 0..total {
                    j.record(event(s));
                }
            });
            let mut cursor = JournalCursor::default();
            let mut delivered = 0u64;
            let mut last_seq = None;
            while delivered + cursor.dropped() < total {
                for e in j.poll(&mut cursor, 3) {
                    if let Some(prev) = last_seq {
                        assert!(e.seq > prev, "duplicate or out-of-order delivery");
                    }
                    last_seq = Some(e.seq);
                    assert_eq!(e.session, e.seq, "torn event");
                    delivered += 1;
                }
            }
            assert_eq!(delivered + cursor.dropped(), total);
            assert_eq!(cursor.position(), total);
        });
    }

    #[test]
    fn journal_heap_bytes_are_fixed_at_construction() {
        use crate::mem::HeapUsage;
        let j = EventJournal::with_capacity(64);
        let before = j.heap_bytes();
        assert!(before >= 64 * EVENT_WORDS * 8);
        for s in 0..200 {
            j.record(event(s));
        }
        assert_eq!(j.heap_bytes(), before, "ring never grows");
    }

    #[test]
    fn phase_timer_accumulates_laps() {
        let mut t = PhaseTimer::start();
        t.lap(Phase::Parse);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.lap(Phase::Proof);
        t.lap(Phase::Proof); // second lap accumulates
        let p = t.phase_ns();
        assert!(p[Phase::Proof as usize] >= 2_000_000);
        assert_eq!(p[Phase::DbExec as usize], 0);
    }

    #[test]
    fn template_hash_is_stable_and_discriminating() {
        let a = template_hash("SELECT * FROM Events WHERE EId = ?event");
        let b = template_hash("SELECT * FROM Events WHERE EId = ?event");
        let c = template_hash("SELECT * FROM Events WHERE EId = ?other");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(template_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let r = MetricsRegistry::new();
        let allowed = r.counter(
            "bep_decisions_total",
            "Decisions by verdict",
            &[("decision", "allowed")],
        );
        let blocked = r.counter(
            "bep_decisions_total",
            "Decisions by verdict",
            &[("decision", "blocked")],
        );
        let sessions = r.gauge("bep_sessions", "Live sessions", &[]);
        let lat = r.histogram("bep_decision_latency_ns", "Decision latency", &[]);
        allowed.add(3);
        blocked.inc();
        sessions.set(2);
        lat.record(std::time::Duration::from_micros(10));

        let text = r.render();
        assert!(text.contains("# HELP bep_decisions_total Decisions by verdict\n"));
        assert!(text.contains("# TYPE bep_decisions_total counter\n"));
        assert!(text.contains("bep_decisions_total{decision=\"allowed\"} 3\n"));
        assert!(text.contains("bep_decisions_total{decision=\"blocked\"} 1\n"));
        assert!(text.contains("# TYPE bep_sessions gauge\n"));
        assert!(text.contains("bep_sessions 2\n"));
        assert!(text.contains("# TYPE bep_decision_latency_ns summary\n"));
        assert!(text.contains("bep_decision_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("bep_decision_latency_ns_count 1\n"));
        // HELP/TYPE appear once per family even with several series.
        assert_eq!(text.matches("# TYPE bep_decisions_total").count(), 1);
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total", "x", &[("k", "v")]);
        let b = r.counter("x_total", "x", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same series, same counter");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_render_stable_order() {
        let r = MetricsRegistry::new();
        let h = r.histogram("p_ns", "phase", &[("phase", "parse")]);
        h.record(std::time::Duration::from_nanos(100));
        let text = r.render();
        assert!(
            text.contains("p_ns{phase=\"parse\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(text.contains("p_ns_sum{phase=\"parse\"} 100\n"), "{text}");
    }
}
