//! Slow-decision exemplars: the N slowest decisions per template, kept
//! with their full span trees.
//!
//! Aggregates (histograms, summaries) tell you *that* a template's tail
//! is slow; an exemplar tells you *why* — which disjunct, whether the
//! certificate replayed or fell back, how many homomorphism nodes the
//! search burned. The store is deliberately tiny: a handful of events per
//! template, each at most [`SPAN_ARENA_CAPACITY`] span records, replaced
//! only by a slower decision of the same template.
//!
//! [`SPAN_ARENA_CAPACITY`]: crate::span::SPAN_ARENA_CAPACITY

use std::collections::HashMap;
use std::mem::size_of;

use parking_lot::Mutex;

use crate::mem::HeapUsage;
use crate::obs::DecisionEvent;
use crate::span::SpanRecord;

/// One retained slow decision: the journal event plus its span tree.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The decision event (seq 0 if it never reached the journal).
    pub event: DecisionEvent,
    /// The captured span tree, pre-order.
    pub spans: Vec<SpanRecord>,
}

/// Keeps the `per_template` slowest decisions for each template hash.
///
/// One mutex guards the whole store: [`offer`](ExemplarStore::offer) is
/// called at most once per decision and does a capacity check plus (for
/// qualifying decisions) one sorted insert, so the critical section is a
/// few dozen nanoseconds — far below any proof the decision ran.
pub struct ExemplarStore {
    per_template: usize,
    map: Mutex<HashMap<u64, Vec<Exemplar>>>,
}

impl std::fmt::Debug for ExemplarStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExemplarStore")
            .field("per_template", &self.per_template)
            .field("count", &self.count())
            .finish()
    }
}

impl ExemplarStore {
    /// A store keeping the `per_template` slowest decisions per template.
    /// Zero disables the store (offers are rejected without locking).
    pub fn new(per_template: usize) -> ExemplarStore {
        ExemplarStore {
            per_template,
            map: Mutex::new(HashMap::new()),
        }
    }

    /// `true` if the store retains nothing.
    pub fn is_disabled(&self) -> bool {
        self.per_template == 0
    }

    /// Would a decision of `total_ns` on `template_hash` be retained?
    /// Used to decide whether capturing the span tree is worth the clone
    /// *before* the tree is discarded.
    pub fn would_accept(&self, template_hash: u64, total_ns: u64) -> bool {
        if self.per_template == 0 {
            return false;
        }
        let map = self.map.lock();
        match map.get(&template_hash) {
            None => true,
            Some(v) => {
                v.len() < self.per_template
                    || v.last()
                        .map(|e| e.event.total_ns < total_ns)
                        .unwrap_or(true)
            }
        }
    }

    /// Offers a decision; it is retained iff it ranks among the slowest
    /// `per_template` for its template. Entries are kept sorted slowest
    /// first, so eviction drops the fastest retained exemplar.
    pub fn offer(&self, event: DecisionEvent, spans: Vec<SpanRecord>) {
        if self.per_template == 0 {
            return;
        }
        let hash = event.template_hash;
        let mut map = self.map.lock();
        let v = map.entry(hash).or_default();
        if v.len() >= self.per_template
            && v.last()
                .map(|e| e.event.total_ns >= event.total_ns)
                .unwrap_or(false)
        {
            return;
        }
        let at = v
            .iter()
            .position(|e| e.event.total_ns < event.total_ns)
            .unwrap_or(v.len());
        v.insert(at, Exemplar { event, spans });
        v.truncate(self.per_template);
    }

    /// The retained exemplars for one template, slowest first (clones, so
    /// no lock outlives the call).
    pub fn slowest(&self, template_hash: u64) -> Vec<Exemplar> {
        self.map
            .lock()
            .get(&template_hash)
            .cloned()
            .unwrap_or_default()
    }

    /// Every retained exemplar, grouped by template hash.
    pub fn all(&self) -> Vec<(u64, Vec<Exemplar>)> {
        self.map
            .lock()
            .iter()
            .map(|(h, v)| (*h, v.clone()))
            .collect()
    }

    /// Total exemplars retained across all templates.
    pub fn count(&self) -> usize {
        self.map.lock().values().map(|v| v.len()).sum()
    }
}

impl HeapUsage for ExemplarStore {
    fn heap_bytes(&self) -> usize {
        let map = self.map.lock();
        let mut b = map.capacity() * (size_of::<u64>() + size_of::<Vec<Exemplar>>());
        for v in map.values() {
            b += v.capacity() * size_of::<Exemplar>();
            b += v
                .iter()
                .map(|e| e.spans.capacity() * size_of::<SpanRecord>())
                .sum::<usize>();
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{CacheTier, Verdict};
    use crate::span::SpanSummary;
    use crate::PHASE_COUNT;

    fn ev(hash: u64, total_ns: u64) -> DecisionEvent {
        DecisionEvent {
            seq: 0,
            session: 1,
            template_hash: hash,
            verdict: Verdict::Allowed,
            tier: CacheTier::ConcreteProof,
            negative_template_hit: false,
            total_ns,
            phase_ns: [0; PHASE_COUNT],
            span: SpanSummary::default(),
        }
    }

    #[test]
    fn keeps_the_n_slowest_per_template() {
        let store = ExemplarStore::new(2);
        for total in [50, 10, 90, 20, 70] {
            assert_eq!(
                store.would_accept(7, total),
                total > 50 || store.count() < 2 || total == 50,
            );
            store.offer(ev(7, total), Vec::new());
        }
        let kept = store.slowest(7);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].event.total_ns, 90);
        assert_eq!(kept[1].event.total_ns, 70);
        assert_eq!(store.count(), 2);
        // A different template has its own budget.
        store.offer(ev(8, 1), Vec::new());
        assert_eq!(store.count(), 3);
        assert_eq!(store.slowest(8).len(), 1);
    }

    #[test]
    fn would_accept_tracks_the_cutoff() {
        let store = ExemplarStore::new(1);
        assert!(store.would_accept(1, 5));
        store.offer(ev(1, 100), Vec::new());
        assert!(!store.would_accept(1, 99));
        assert!(store.would_accept(1, 101));
    }

    #[test]
    fn zero_capacity_disables() {
        let store = ExemplarStore::new(0);
        assert!(store.is_disabled());
        assert!(!store.would_accept(1, u64::MAX));
        store.offer(ev(1, 1), Vec::new());
        assert_eq!(store.count(), 0);
        assert_eq!(store.heap_bytes(), 0);
    }
}
