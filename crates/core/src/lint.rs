//! Startup-time policy lints.
//!
//! The first lint encodes a deployment pitfall found while building the
//! generated-application fleet: **every column a handler selects must
//! appear in some policy view's head**. A view that *constrains* a column
//! without *projecting* it (e.g. `SELECT OId FROM Orders WHERE MId =
//! ?MyMId` when handlers also select `MId`) can never cover a disjunct
//! that asks for the missing column, so every such handler query is
//! denied for every session — uniformly, which is exactly why
//! differential gates against a no-policy oracle do not catch it: there
//! is no session whose behaviour differs. A startup warning is the right
//! tool; the decision procedure itself is (correctly) conservative.
//!
//! The lint is advisory and sound in one direction only: a warned column
//! guarantees the template can never be template-allowed and can only be
//! allowed concretely via trace facts covering the projected column,
//! which traces built from *denied* queries never produce. Absence of
//! warnings does not promise the template is allowed (joins, comparisons,
//! and parameter equalities still decide that).
//!
//! The same pitfall exists on the write path with the roles reversed:
//! **every column a mutation binds to a concrete value must be projected
//! (or rigidly pinned) by some policy view over that table**. Write
//! coverage unifies the written row against a view's body atom, and a
//! rigid written value at a position the view neither exports in its head
//! nor pins to a value can never unify — the mutation is denied for every
//! session, again uniformly, so differential gates are blind to it.

use qlogic::{Cq, Sym, Term};
use sqlir::{parse_statement, Statement};

use crate::checker::ComplianceChecker;

/// A `(relation, column-index)` pair some policy view projects.
type Exported = std::collections::HashSet<(Sym, usize)>;

/// The set of `(relation, column)` positions exposed by the policy: for
/// each view, each head variable's occurrences in the view's body atoms.
fn exported_columns(checker: &ComplianceChecker) -> Exported {
    let mut out = Exported::new();
    for view in checker.policy().views() {
        for head in &view.cq.head {
            let Term::Var(v) = head else { continue };
            collect_occurrences(&view.cq, *v, &mut out);
        }
    }
    out
}

/// Inserts every `(relation, position)` where variable `v` occurs in the
/// body of `cq`.
fn collect_occurrences(cq: &Cq, v: Sym, out: &mut Exported) {
    for atom in &cq.atoms {
        for (pos, arg) in atom.args.iter().enumerate() {
            if *arg == Term::Var(v) {
                out.insert((atom.relation, pos));
            }
        }
    }
}

/// The human-readable name of one `(relation, position)` column, falling
/// back to the index when the schema does not know the relation.
fn column_name(checker: &ComplianceChecker, rel: Sym, pos: usize) -> String {
    match checker.schema().columns(rel.as_str()) {
        Ok(cols) if pos < cols.len() => format!("{}.{}", rel, cols[pos]),
        _ => format!("{}[{}]", rel, pos),
    }
}

/// The set of `(relation, column)` positions a mutation may bind rigidly
/// and still have a chance of coverage: positions some view exports in
/// its head, plus positions some view pins to a rigid term (a constant
/// or session parameter the written value could equal).
fn writable_positions(checker: &ComplianceChecker) -> Exported {
    let mut out = exported_columns(checker);
    for view in checker.policy().views() {
        for atom in &view.cq.atoms {
            for (pos, arg) in atom.args.iter().enumerate() {
                if arg.is_rigid() {
                    out.insert((atom.relation, pos));
                }
            }
        }
    }
    out
}

/// Lints a mutation template: every rigidly bound column of each written
/// row must be exported or pinned by some policy view, else the write can
/// never be covered. Extraction failures (unknown table, arity mismatch)
/// produce no warnings — the decision path reports those as denials.
fn lint_mutation(checker: &ComplianceChecker, stmt: &Statement) -> Vec<String> {
    let Ok((atoms, _)) = crate::write::extract_written_atoms(stmt, checker.schema()) else {
        return Vec::new();
    };
    let writable = writable_positions(checker);
    let mut warnings = Vec::new();
    for atom in &atoms {
        for (pos, arg) in atom.args.iter().enumerate() {
            if !arg.is_rigid() || writable.contains(&(atom.relation, pos)) {
                continue;
            }
            let w = format!(
                "mutation binds {col} but no policy view projects or pins it; \
                 every such write is denied (add {col} to an updatable view's SELECT list)",
                col = column_name(checker, atom.relation, pos)
            );
            if !warnings.contains(&w) {
                warnings.push(w);
            }
        }
    }
    warnings
}

/// Lints one SQL template against the policy's projected columns.
///
/// For `SELECT`s, returns one warning per selected column that no policy
/// view's head exposes. For mutations, returns one warning per rigidly
/// bound column no view exports or pins. Parse failures and
/// out-of-fragment queries produce no warnings (other machinery reports
/// those).
pub fn lint_template(checker: &ComplianceChecker, sql: &str) -> Vec<String> {
    let q = match parse_statement(sql) {
        Ok(Statement::Select(q)) => q,
        Ok(stmt)
            if crate::classify::StatementClass::of(&stmt)
                == crate::classify::StatementClass::Write =>
        {
            return lint_mutation(checker, &stmt);
        }
        _ => return Vec::new(),
    };
    let Ok(ucq) = checker.translate(&q) else {
        return Vec::new();
    };
    let exported = exported_columns(checker);
    let mut warnings = Vec::new();
    for d in &ucq.disjuncts {
        for head in &d.head {
            let Term::Var(v) = head else { continue };
            let mut occurrences = Exported::new();
            collect_occurrences(d, *v, &mut occurrences);
            if occurrences.is_empty() {
                continue;
            }
            if occurrences.iter().any(|o| exported.contains(o)) {
                continue;
            }
            // Report the first occurrence deterministically (atom order).
            let (rel, pos) = d
                .atoms
                .iter()
                .find_map(|a| {
                    a.args
                        .iter()
                        .position(|t| *t == Term::Var(*v))
                        .map(|p| (a.relation, p))
                })
                .expect("occurrences is non-empty");
            let w = format!(
                "template selects {col} but no policy view projects it in its head; \
                 every session will be denied this query (add {col} to a view's SELECT list)",
                col = column_name(checker, rel, pos)
            );
            if !warnings.contains(&w) {
                warnings.push(w);
            }
        }
    }
    warnings
}

/// Lints a set of SQL templates, returning all warnings in template
/// order (deduplicated within each template).
pub fn lint_templates<'a>(
    checker: &ComplianceChecker,
    templates: impl IntoIterator<Item = &'a str>,
) -> Vec<String> {
    templates
        .into_iter()
        .flat_map(|sql| lint_template(checker, sql))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use qlogic::RelSchema;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Orders", ["OId", "MId", "Total"]);
        s.add_table("Events", ["EId", "Title"]);
        s
    }

    fn checker(views: &[(&str, &str)]) -> ComplianceChecker {
        let schema = schema();
        let policy = Policy::from_sql(&schema, views).expect("valid views");
        ComplianceChecker::new(schema, policy)
    }

    #[test]
    fn selecting_an_unprojected_column_warns() {
        // The incident in miniature: the view projects only OId, while
        // the handler also selects Total. (A column equality-bound to a
        // session parameter — MId here — is *not* the pitfall: the
        // translation substitutes the parameter into the head, so only
        // genuinely free selected columns need view-head coverage.)
        let c = checker(&[("MyOrders", "SELECT OId FROM Orders WHERE MId = ?MyMId")]);
        let warnings = lint_template(&c, "SELECT OId, Total FROM Orders WHERE MId = ?MyMId");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("Orders.Total"), "{}", warnings[0]);
        // The param-bound column alone is clean.
        assert!(lint_template(&c, "SELECT OId, MId FROM Orders WHERE MId = ?MyMId").is_empty());
    }

    #[test]
    fn fully_projected_templates_are_clean() {
        let c = checker(&[("MyOrders", "SELECT OId, MId FROM Orders WHERE MId = ?MyMId")]);
        assert!(lint_template(&c, "SELECT OId, MId FROM Orders WHERE MId = ?MyMId").is_empty());
        assert!(lint_template(&c, "SELECT OId FROM Orders WHERE MId = ?MyMId").is_empty());
    }

    #[test]
    fn any_view_projecting_the_column_suffices() {
        // A second view exports MId even though the first does not.
        let c = checker(&[
            ("MyOrders", "SELECT OId FROM Orders WHERE MId = ?MyMId"),
            ("OrderOwners", "SELECT MId FROM Orders WHERE MId = ?MyMId"),
        ]);
        assert!(lint_template(&c, "SELECT OId, MId FROM Orders WHERE MId = ?MyMId").is_empty());
    }

    #[test]
    fn parse_errors_and_unknown_tables_are_silent() {
        let c = checker(&[("MyOrders", "SELECT OId FROM Orders WHERE MId = ?MyMId")]);
        assert!(lint_template(&c, "SELEC nonsense").is_empty());
        assert!(lint_template(&c, "INSERT INTO Nope (X) VALUES (1)").is_empty());
        assert!(lint_template(&c, "CREATE TABLE Scratch (X INT PRIMARY KEY)").is_empty());
    }

    #[test]
    fn mutation_binding_an_unwritable_column_warns() {
        // The view projects OId and pins MId, but Total is neither: any
        // insert that gives Total a value (even the implicit NULL of an
        // unlisted column) can never be covered.
        let c = checker(&[("MyOrders", "SELECT OId FROM Orders WHERE MId = ?MyMId")]);
        let warnings = lint_template(
            &c,
            "INSERT INTO Orders (OId, MId, Total) VALUES (?o, ?MyMId, 100)",
        );
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("Orders.Total"), "{}", warnings[0]);
        let implicit = lint_template(&c, "INSERT INTO Orders (OId, MId) VALUES (?o, ?MyMId)");
        assert_eq!(implicit, warnings, "unlisted column binds NULL");
        // A delete touches every column, but binds only the pinned one.
        assert!(lint_template(&c, "DELETE FROM Orders WHERE MId = ?MyMId").is_empty());
    }

    #[test]
    fn fully_projected_mutations_are_clean() {
        let c = checker(&[(
            "MyOrders",
            "SELECT OId, MId, Total FROM Orders WHERE MId = ?MyMId",
        )]);
        assert!(lint_template(
            &c,
            "INSERT INTO Orders (OId, MId, Total) VALUES (?o, ?MyMId, 100)"
        )
        .is_empty());
        assert!(lint_template(&c, "UPDATE Orders SET Total = ?t WHERE MId = ?MyMId").is_empty());
    }

    #[test]
    fn update_of_unprojected_column_warns() {
        let c = checker(&[("MyOrders", "SELECT OId FROM Orders WHERE MId = ?MyMId")]);
        let warnings = lint_template(&c, "UPDATE Orders SET Total = 0 WHERE MId = ?MyMId");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("Orders.Total"), "{}", warnings[0]);
    }

    #[test]
    fn warnings_name_columns_per_relation() {
        // Events is not mentioned by any view at all: every selected
        // column of it warns.
        let c = checker(&[("MyOrders", "SELECT OId FROM Orders WHERE MId = ?MyMId")]);
        let warnings = lint_template(&c, "SELECT Title FROM Events WHERE EId = ?e");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("Events.Title"), "{}", warnings[0]);
    }

    #[test]
    fn lint_templates_flattens_in_order() {
        let c = checker(&[("MyOrders", "SELECT OId FROM Orders WHERE MId = ?MyMId")]);
        let all = lint_templates(
            &c,
            [
                "SELECT OId FROM Orders WHERE MId = ?MyMId",
                "SELECT Total FROM Orders WHERE MId = ?MyMId",
            ],
        );
        assert_eq!(all.len(), 1);
        assert!(all[0].contains("Orders.Total"));
    }
}
