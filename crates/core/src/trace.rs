//! Query traces and the ground facts they witness.
//!
//! The checker of §2.2 "considers the history of prior queries and their
//! results" — Example 2.1's `Q2` is only allowed because `Q1` returned a
//! row. This module turns observed results into *facts*: atoms known to hold
//! in the current database. Unknown cell values become labeled nulls
//! (Skolem witnesses), which the containment machinery handles natively.
//!
//! Only *positive* observations produce facts: a non-empty result witnesses
//! one satisfying assignment; returned rows witness one assignment each.
//! Empty results carry negative information that facts cannot express, so
//! they are (soundly) ignored.

use qlogic::{Atom, Cq, Subst, Term};
use sqlir::Value;

/// What was observed about a query's result.
#[derive(Debug, Clone, PartialEq)]
pub enum Observation {
    /// The result was empty.
    Empty,
    /// The result was non-empty (row contents unrecorded).
    NonEmpty,
    /// The exact rows returned.
    Rows(Vec<Vec<Value>>),
}

impl Observation {
    /// Builds an observation from result rows, keeping at most `keep` rows'
    /// contents (beyond that, only non-emptiness is recorded).
    pub fn from_rows(rows: &[Vec<Value>], keep: usize) -> Observation {
        if rows.is_empty() {
            Observation::Empty
        } else if rows.len() <= keep {
            Observation::Rows(rows.to_vec())
        } else {
            Observation::NonEmpty
        }
    }
}

/// One trace entry: an (instantiated) query and what it returned.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// The query, parameters already bound.
    pub query: Cq,
    /// The observation.
    pub observation: Observation,
}

/// A session's query history with derived facts.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    facts: Vec<Atom>,
    skolem_counter: u64,
    /// Bumped whenever the fact set changes (push *or* compaction removal).
    /// Cached decisions that depended on the facts stamp this; a plain
    /// `facts().len()` stamp would be unsound once compaction can shrink the
    /// set (the same count can name a different set).
    version: u64,
}

/// Maximum rows per observation that contribute facts (keeps fact sets and
/// hence checking costs bounded).
pub const MAX_FACT_ROWS: usize = 16;

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Records a query and its observation, deriving facts.
    pub fn record(&mut self, query: Cq, observation: Observation) {
        match &observation {
            Observation::Empty => {}
            Observation::NonEmpty => self.witness(&query, None),
            Observation::Rows(rows) => {
                for row in rows.iter().take(MAX_FACT_ROWS) {
                    self.witness(&query, Some(row));
                }
            }
        }
        self.entries.push(TraceEntry { query, observation });
    }

    /// Adds the facts witnessed by one satisfying assignment: head variables
    /// bound to the returned row (if given), all other variables Skolemized.
    fn witness(&mut self, query: &Cq, row: Option<&[Value]>) {
        let mut subst = Subst::new();
        if let Some(row) = row {
            if row.len() != query.head.len() {
                return; // malformed observation; contribute nothing
            }
            for (h, v) in query.head.iter().zip(row) {
                if let Term::Var(name) = h {
                    if v.is_null() {
                        continue; // a NULL tells us nothing definite
                    }
                    match subst.get(name) {
                        Some(Term::Const(prev)) if prev.to_value() != *v => return,
                        _ => {
                            subst.insert(*name, Term::constant(v));
                        }
                    }
                }
            }
        }
        for v in query.variables() {
            if !subst.contains_key(&v) {
                self.skolem_counter += 1;
                subst.insert(v, Term::var(format!("sk{}", self.skolem_counter)));
            }
        }
        for atom in &query.atoms {
            let fact = qlogic::cq::apply_atom(atom, &subst);
            if !self.facts.contains(&fact) {
                self.facts.push(fact);
                self.version += 1;
            }
        }
    }

    /// The derived facts.
    pub fn facts(&self) -> &[Atom] {
        &self.facts
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Injects an externally known fact (used by diagnosis when proposing
    /// access-check patches: "if this check passed, the fact holds").
    pub fn assume_fact(&mut self, fact: Atom) {
        if !self.facts.contains(&fact) {
            self.facts.push(fact);
            self.version += 1;
        }
    }

    /// Monotone fact-set version: changes (strictly increases) whenever the
    /// fact set changes in any way. Decision caches stamp this instead of
    /// `facts().len()`, which compaction can make ambiguous.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Subsumption-based compaction: drops every entry that is an exact
    /// duplicate of an earlier one, and every fact homomorphically implied
    /// by the remaining facts (identity-pinned on shared labeled nulls, so
    /// the existential conjunction — and hence every compliance decision,
    /// which is monotone in it — is unchanged). Returns how many entries
    /// plus facts were dropped.
    ///
    /// Soundness: the fact set before and after is logically *equivalent*
    /// (each dropped fact is entailed by what stays), so trace-aware proofs
    /// succeed after compaction exactly when they succeeded before.
    pub fn compact(&mut self) -> usize {
        let mut dropped = 0;

        // Entries: exact (query, observation) duplicates carry no new
        // information — the first occurrence already witnessed everything.
        let mut kept: Vec<TraceEntry> = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if kept.contains(&e) {
                dropped += 1;
            } else {
                kept.push(e);
            }
        }
        self.entries = kept;

        // Facts: greedy single-pass sweep. Dropping is order-dependent but
        // always sound; sweeping oldest-first lets a later, more specific
        // fact absorb an earlier Skolemized one.
        let mut i = 0;
        while i < self.facts.len() {
            let fact = self.facts[i].clone();
            let mut remainder = Vec::with_capacity(self.facts.len() - 1);
            remainder.extend_from_slice(&self.facts[..i]);
            remainder.extend_from_slice(&self.facts[i + 1..]);
            if qlogic::fact_implied(&fact, &remainder) {
                self.facts.remove(i);
                self.version += 1;
                dropped += 1;
            } else {
                i += 1;
            }
        }
        dropped
    }
}

impl crate::mem::HeapUsage for Trace {
    /// Entries (query CQs plus recorded observation rows) and derived
    /// facts, from vector capacities.
    fn heap_bytes(&self) -> usize {
        use crate::mem::{cq_heap_bytes, value_heap_bytes};
        use std::mem::size_of;
        let mut b = self.entries.capacity() * size_of::<TraceEntry>()
            + self.facts.capacity() * size_of::<Atom>()
            + self
                .facts
                .iter()
                .map(|a| a.args.capacity() * size_of::<Term>())
                .sum::<usize>();
        for e in &self.entries {
            b += cq_heap_bytes(&e.query);
            if let Observation::Rows(rows) = &e.observation {
                b += rows.capacity() * size_of::<Vec<Value>>();
                for row in rows {
                    b += row.capacity() * size_of::<Value>();
                    b += row.iter().map(value_heap_bytes).sum::<usize>();
                }
            }
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::CmpOp;

    fn q1() -> Cq {
        // ans(1) :- Attendance(1, 2, n)
        Cq::new(
            vec![Term::int(1)],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::int(2), Term::var("n")],
            )],
            vec![],
        )
    }

    #[test]
    fn nonempty_witnesses_skolemized_atom() {
        let mut t = Trace::new();
        t.record(q1(), Observation::NonEmpty);
        assert_eq!(t.facts().len(), 1);
        let f = &t.facts()[0];
        assert_eq!(f.relation, "Attendance");
        assert_eq!(f.args[0], Term::int(1));
        assert_eq!(f.args[1], Term::int(2));
        assert!(matches!(f.args[2], Term::Var(_)), "notes is a labeled null");
    }

    #[test]
    fn empty_observation_adds_no_facts() {
        let mut t = Trace::new();
        t.record(q1(), Observation::Empty);
        assert!(t.facts().is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rows_bind_head_variables() {
        // ans(e) :- Attendance(7, e, n); returned rows e = 4 and e = 9.
        let q = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(7), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        let mut t = Trace::new();
        t.record(
            q,
            Observation::Rows(vec![vec![Value::Int(4)], vec![Value::Int(9)]]),
        );
        assert_eq!(t.facts().len(), 2);
        assert_eq!(t.facts()[0].args[1], Term::int(4));
        assert_eq!(t.facts()[1].args[1], Term::int(9));
        // Distinct Skolems for the two notes cells.
        assert_ne!(t.facts()[0].args[2], t.facts()[1].args[2]);
    }

    #[test]
    fn join_query_witnesses_both_atoms_with_shared_skolem() {
        // ans(t) :- Events(e, t), Attendance(1, e, n): one non-empty result
        // witnesses both atoms with the SAME Skolem for e.
        let q = Cq::new(
            vec![Term::var("t")],
            vec![
                Atom::new("Events", vec![Term::var("e"), Term::var("t")]),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        let mut t = Trace::new();
        t.record(q, Observation::NonEmpty);
        assert_eq!(t.facts().len(), 2);
        let e_in_events = &t.facts()[0].args[0];
        let e_in_att = &t.facts()[1].args[1];
        assert_eq!(e_in_events, e_in_att);
    }

    #[test]
    fn null_cells_contribute_nothing_definite() {
        let q = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let mut t = Trace::new();
        t.record(q, Observation::Rows(vec![vec![Value::Null]]));
        // The fact exists but with a Skolem, not a bogus NULL constant.
        assert_eq!(t.facts().len(), 1);
        assert!(matches!(t.facts()[0].args[0], Term::Var(_)));
    }

    #[test]
    fn facts_deduplicate() {
        let mut t = Trace::new();
        let q = Cq::new(
            vec![Term::int(1)],
            vec![Atom::new("R", vec![Term::int(5)])],
            vec![],
        );
        t.record(q.clone(), Observation::NonEmpty);
        t.record(q, Observation::NonEmpty);
        assert_eq!(t.facts().len(), 1);
    }

    #[test]
    fn comparisons_do_not_block_witnessing() {
        let q = Cq::new(
            vec![Term::int(1)],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![qlogic::Comparison::new(
                Term::var("x"),
                CmpOp::Ge,
                Term::int(10),
            )],
        );
        let mut t = Trace::new();
        t.record(q, Observation::NonEmpty);
        assert_eq!(t.facts().len(), 1);
    }

    #[test]
    fn version_changes_on_fact_pushes_and_removals_only() {
        let mut t = Trace::new();
        let v0 = t.version();
        t.record(q1(), Observation::Empty); // no facts
        assert_eq!(t.version(), v0);
        t.record(q1(), Observation::NonEmpty);
        let v1 = t.version();
        assert!(v1 > v0);
        // A second identical NonEmpty adds a fresh-Skolem fact (new version);
        // compaction then removes it (another version change) — the stamp
        // never repeats for a different fact set.
        t.record(q1(), Observation::NonEmpty);
        let v2 = t.version();
        assert!(v2 > v1);
        let dropped = t.compact();
        assert!(dropped > 0);
        assert!(t.version() > v2);
    }

    #[test]
    fn compact_drops_skolem_duplicates_but_keeps_information() {
        let mut t = Trace::new();
        t.record(q1(), Observation::NonEmpty);
        t.record(q1(), Observation::NonEmpty);
        t.record(q1(), Observation::NonEmpty);
        assert_eq!(t.facts().len(), 3, "each repeat mints a fresh Skolem");
        assert_eq!(t.len(), 3);
        let dropped = t.compact();
        assert_eq!(dropped, 4, "two duplicate entries + two implied facts");
        assert_eq!(t.facts().len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn compact_keeps_facts_with_shared_skolems() {
        // A join witnesses two atoms sharing one Skolem: neither atom may be
        // dropped, because the other still references that labeled null.
        let q = Cq::new(
            vec![Term::var("t")],
            vec![
                Atom::new("Events", vec![Term::var("e"), Term::var("t")]),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        let mut t = Trace::new();
        t.record(q, Observation::NonEmpty);
        assert_eq!(t.facts().len(), 2);
        assert_eq!(t.compact(), 0);
        assert_eq!(t.facts().len(), 2);
    }

    #[test]
    fn compact_absorbs_skolemized_fact_into_specific_row() {
        // NonEmpty first (Skolemized event id), then the concrete row: the
        // generic fact is implied by the specific one and gets dropped.
        let generic = Cq::new(
            vec![Term::int(1)],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        let specific = Cq::new(
            vec![Term::int(1)],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::int(2), Term::var("n")],
            )],
            vec![],
        );
        let mut t = Trace::new();
        t.record(generic, Observation::NonEmpty);
        t.record(specific, Observation::NonEmpty);
        assert_eq!(t.facts().len(), 2);
        assert!(t.compact() > 0);
        assert_eq!(t.facts().len(), 1);
        assert_eq!(t.facts()[0].args[1], Term::int(2), "specific fact stays");
    }
}
