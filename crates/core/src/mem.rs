//! Byte-accurate heap accounting.
//!
//! Bounding the proxy's memory (trace compaction, cache eviction — the
//! roadmap's "bounded memory" line) needs a measurement substrate first:
//! every retaining component answers *how many heap bytes do you hold
//! right now*, and the proxy exports the answers as
//! `bep_mem_bytes{component=...}` gauges plus a per-session state-size
//! histogram recorded when sessions end.
//!
//! [`HeapUsage::heap_bytes`] counts bytes *owned on the heap* beyond the
//! value's own `size_of` footprint — `Vec`/`String` capacities (not
//! lengths: capacity is what the allocator actually holds), map tables,
//! and transitively owned structures. Shared `Arc` payloads are counted
//! at each holder (a deliberate over-approximation: eviction decisions
//! care about what a component *keeps alive*, and double-counting shared
//! plans is both rare and conservative). Opaque foreign types (parsed
//! statements) are approximated by their source text, and the
//! approximation is documented at the implementation site.

use std::mem::size_of;

use qlogic::{Atom, Comparison, Cq, Term};
use sqlir::Value;

/// A component that can report its current heap footprint.
pub trait HeapUsage {
    /// Heap bytes currently owned (excluding `size_of::<Self>()` itself).
    fn heap_bytes(&self) -> usize;
}

/// Heap bytes owned by a conjunctive query: head terms, atoms with their
/// argument vectors, and comparisons. Terms are `Copy` (16 bytes), so a
/// CQ's footprint is exactly its vector capacities.
pub fn cq_heap_bytes(q: &Cq) -> usize {
    q.head.capacity() * size_of::<Term>()
        + q.atoms.capacity() * size_of::<Atom>()
        + q.atoms
            .iter()
            .map(|a| a.args.capacity() * size_of::<Term>())
            .sum::<usize>()
        + q.comparisons.capacity() * size_of::<Comparison>()
}

/// Heap bytes owned by a fact list (atoms with argument vectors).
pub fn atoms_heap_bytes(atoms: &[Atom]) -> usize {
    std::mem::size_of_val(atoms)
        + atoms
            .iter()
            .map(|a| a.args.capacity() * size_of::<Term>())
            .sum::<usize>()
}

/// Heap bytes owned by one SQL value (string payloads only).
pub fn value_heap_bytes(v: &Value) -> usize {
    match v {
        Value::Str(s) => s.capacity(),
        _ => 0,
    }
}

/// Heap bytes owned by a `(name, value)` binding list.
pub fn bindings_heap_bytes(bindings: &[(String, Value)]) -> usize {
    std::mem::size_of_val(bindings)
        + bindings
            .iter()
            .map(|(k, v)| k.capacity() + value_heap_bytes(v))
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Term;

    #[test]
    fn cq_bytes_scale_with_body_size() {
        let small = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let big = Cq::new(
            vec![Term::var("x")],
            (0..16)
                .map(|i| {
                    Atom::new(
                        "R",
                        vec![Term::var("x"), Term::int(i), Term::var(format!("y{i}"))],
                    )
                })
                .collect(),
            vec![],
        );
        assert!(cq_heap_bytes(&small) > 0);
        assert!(cq_heap_bytes(&big) > 4 * cq_heap_bytes(&small));
    }

    #[test]
    fn bindings_count_string_payloads() {
        let none: &[(String, Value)] = &[];
        assert_eq!(bindings_heap_bytes(none), 0);
        let b = vec![("MyUId".to_string(), Value::Int(1))];
        let with_str = vec![(
            "MyUId".to_string(),
            Value::Str("a-reasonably-long-session-token".into()),
        )];
        assert!(bindings_heap_bytes(&with_str) > bindings_heap_bytes(&b));
    }
}
