//! Bounded key→value cache with SIEVE eviction.
//!
//! Every decision-amortizing map in the proxy (template plans, per-session
//! allow/deny caches) used to grow without bound — fatal at the
//! million-user scale ROADMAP item 2 targets. [`BoundedCache`] bounds both
//! the entry count and the resident byte total (callers supply per-entry
//! byte weights from the [`crate::mem::HeapUsage`] substrate) and evicts
//! with SIEVE (Zhang et al., NSDI '24): entries sit in insertion order, a
//! hand sweeps oldest→newest, a hit only sets a per-entry visited bit, and
//! the hand evicts the first unvisited entry it meets (clearing bits as it
//! passes). SIEVE is scan-resistant (a one-pass scan cannot flush the
//! working set: scanned-once entries are never re-visited, so the hand
//! takes them first) and lock-light: a hit is a single relaxed atomic
//! store, so reads stay reads under the proxy's `RwLock` sharding — no
//! per-hit LRU reordering, no write lock on the read path.
//!
//! Observational contract (property-tested in `tests/bounded_cache.rs`):
//! a hit always returns exactly the value originally inserted — the cache
//! differs from an unbounded map only by *misses*, never by wrong values —
//! and `inserted_total - evicted_total - removed == len()` at all times.

use std::collections::HashMap;
use std::hash::Hash;
use std::mem::size_of;
use std::sync::atomic::{AtomicBool, Ordering};

/// One resident entry: the value, its accounted byte weight, and the SIEVE
/// visited bit (atomic so hits can set it through a shared reference).
#[derive(Debug)]
struct Slot<V> {
    value: V,
    bytes: usize,
    visited: AtomicBool,
}

/// A bounded map with SIEVE eviction. See the module docs for the policy
/// and the observational contract.
#[derive(Debug)]
pub struct BoundedCache<K, V> {
    map: HashMap<K, Slot<V>>,
    /// Insertion order, oldest first — the SIEVE ring.
    order: Vec<K>,
    /// Next position in `order` the SIEVE hand examines.
    hand: usize,
    /// Maximum resident entries; `0` = unlimited.
    max_entries: usize,
    /// Maximum resident bytes (sum of per-entry weights); `0` = unlimited.
    budget_bytes: usize,
    resident_bytes: usize,
    inserted: u64,
    evicted: u64,
}

impl<K: Eq + Hash + Clone, V> BoundedCache<K, V> {
    /// Creates a cache bounded by `max_entries` entries and `budget_bytes`
    /// resident bytes; either bound may be `0` for "unlimited".
    pub fn new(max_entries: usize, budget_bytes: usize) -> BoundedCache<K, V> {
        BoundedCache {
            map: HashMap::new(),
            order: Vec::new(),
            hand: 0,
            max_entries,
            budget_bytes,
            resident_bytes: 0,
            inserted: 0,
            evicted: 0,
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sum of the byte weights of resident entries.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Total inserts of *new* keys over the cache's lifetime.
    pub fn inserted_total(&self) -> u64 {
        self.inserted
    }

    /// Total SIEVE evictions over the cache's lifetime.
    pub fn evicted_total(&self) -> u64 {
        self.evicted
    }

    /// Looks a key up, marking the entry visited (the SIEVE hit path — a
    /// relaxed store, safe under a shared/read lock).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| {
            s.visited.store(true, Ordering::Relaxed);
            &s.value
        })
    }

    /// Mutable lookup; also a SIEVE hit. Callers that change the value's
    /// footprint must follow up with [`BoundedCache::set_bytes`].
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.map.get_mut(key).map(|s| {
            s.visited.store(true, Ordering::Relaxed);
            &mut s.value
        })
    }

    /// Whether the key is resident, *without* marking it visited.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Looks a key up *without* marking it visited — for maintenance scans
    /// (byte re-accounting, persistence walks) that should not count as
    /// recency signal.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|s| &s.value)
    }

    /// Inserts (or updates) an entry with the given byte weight, then
    /// enforces both bounds. Returns the evicted `(key, value)` pairs
    /// (usually empty — no allocation on the happy path). The key just
    /// inserted is never evicted by its own insertion.
    pub fn insert(&mut self, key: K, value: V, bytes: usize) -> Vec<(K, V)> {
        match self.map.get_mut(&key) {
            Some(slot) => {
                self.resident_bytes = self.resident_bytes - slot.bytes + bytes;
                slot.value = value;
                slot.bytes = bytes;
                slot.visited.store(true, Ordering::Relaxed);
            }
            None => {
                self.map.insert(
                    key.clone(),
                    Slot {
                        value,
                        bytes,
                        visited: AtomicBool::new(false),
                    },
                );
                self.order.push(key.clone());
                self.resident_bytes += bytes;
                self.inserted += 1;
            }
        }
        self.enforce(&key)
    }

    /// Removes an entry outright (not counted as an eviction).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let slot = self.map.remove(key)?;
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            self.order.remove(pos);
            if pos < self.hand {
                self.hand -= 1;
            }
        }
        self.resident_bytes -= slot.bytes;
        Some(slot.value)
    }

    /// Re-accounts an entry's byte weight (for values whose footprint is
    /// only known lazily, e.g. plans compiled after insertion), then
    /// enforces the byte budget. The re-accounted key itself is protected.
    pub fn set_bytes(&mut self, key: &K, bytes: usize) -> Vec<(K, V)> {
        if let Some(slot) = self.map.get_mut(key) {
            self.resident_bytes = self.resident_bytes - slot.bytes + bytes;
            slot.bytes = bytes;
        }
        self.enforce(key)
    }

    /// Iterates resident entries in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, s)| (k, &s.value))
    }

    /// Structural heap bytes (ring + table) plus the accounted resident
    /// bytes of the values themselves.
    pub fn heap_bytes(&self) -> usize {
        self.resident_bytes
            + self.order.capacity() * size_of::<K>()
            + self.map.capacity() * size_of::<(K, Slot<V>)>()
    }

    fn over_bounds(&self) -> bool {
        (self.max_entries != 0 && self.map.len() > self.max_entries)
            || (self.budget_bytes != 0 && self.resident_bytes > self.budget_bytes)
    }

    /// The SIEVE sweep: clear visited bits as the hand passes, evict the
    /// first unvisited entry, repeat until both bounds hold. `protect` (the
    /// entry that triggered enforcement) is skipped, so a single entry
    /// larger than the whole budget stays resident rather than thrashing.
    fn enforce(&mut self, protect: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        while self.over_bounds() && self.map.len() > 1 {
            if self.hand >= self.order.len() {
                self.hand = 0;
            }
            let key = self.order[self.hand].clone();
            if key == *protect {
                self.hand += 1;
                continue;
            }
            let visited = self
                .map
                .get(&key)
                .expect("order and map agree")
                .visited
                .swap(false, Ordering::Relaxed);
            if visited {
                self.hand += 1;
                continue;
            }
            let slot = self.map.remove(&key).expect("order and map agree");
            self.order.remove(self.hand); // successor shifts into `hand`
            self.resident_bytes -= slot.bytes;
            self.evicted += 1;
            out.push((key, slot.value));
        }
        out
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Clone for BoundedCache<K, V> {
    fn clone(&self) -> BoundedCache<K, V> {
        BoundedCache {
            map: self
                .map
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Slot {
                            value: s.value.clone(),
                            bytes: s.bytes,
                            visited: AtomicBool::new(s.visited.load(Ordering::Relaxed)),
                        },
                    )
                })
                .collect(),
            order: self.order.clone(),
            hand: self.hand,
            max_entries: self.max_entries,
            budget_bytes: self.budget_bytes,
            resident_bytes: self.resident_bytes,
            inserted: self.inserted,
            evicted: self.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_value_and_marks_visited() {
        let mut c: BoundedCache<u64, String> = BoundedCache::new(4, 0);
        c.insert(1, "one".into(), 3);
        assert_eq!(c.get(&1).map(String::as_str), Some("one"));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn entry_bound_evicts_unvisited_oldest_first() {
        let mut c: BoundedCache<u64, u64> = BoundedCache::new(3, 0);
        let mut evicted = Vec::new();
        for k in 0..5 {
            evicted.extend(c.insert(k, k * 10, 8).into_iter().map(|(k, _)| k));
        }
        assert_eq!(c.len(), 3);
        // Nothing was ever hit, so the hand took the oldest each time.
        assert_eq!(evicted, vec![0, 1]);
        assert!(c.get(&4).is_some(), "newest always survives its insert");
    }

    #[test]
    fn sieve_is_scan_resistant() {
        // A frequently-hit entry survives a scan of one-shot keys that
        // overflows the cache several times over.
        let mut c: BoundedCache<u64, u64> = BoundedCache::new(4, 0);
        c.insert(999, 1, 8);
        for k in 0..16 {
            c.get(&999); // keep the working set hot
            c.insert(k, k, 8);
        }
        assert!(c.get(&999).is_some(), "hot entry must survive the scan");
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn byte_budget_is_enforced() {
        let mut c: BoundedCache<u64, Vec<u8>> = BoundedCache::new(0, 100);
        for k in 0..10 {
            c.insert(k, vec![0u8; 30], 30);
        }
        assert!(c.resident_bytes() <= 100);
        assert!(c.evicted_total() > 0);
    }

    #[test]
    fn oversized_entry_is_protected_not_thrashed() {
        let mut c: BoundedCache<u64, u64> = BoundedCache::new(0, 10);
        c.insert(1, 1, 50); // alone over budget: stays
        assert_eq!(c.len(), 1);
        c.insert(2, 2, 4); // newcomer protected; 1 is evictable now
        assert!(c.get(&2).is_some());
    }

    #[test]
    fn counters_account_exactly() {
        let mut c: BoundedCache<u64, u64> = BoundedCache::new(3, 0);
        for k in 0..10 {
            c.insert(k, k, 8);
        }
        c.insert(5, 50, 8); // update, not an insert
        let removed = u64::from(c.remove(&9).is_some());
        assert_eq!(
            c.inserted_total() - c.evicted_total() - removed,
            c.len() as u64
        );
    }

    #[test]
    fn update_replaces_value_and_bytes() {
        let mut c: BoundedCache<u64, String> = BoundedCache::new(0, 0);
        c.insert(1, "a".into(), 10);
        c.insert(1, "b".into(), 25);
        assert_eq!(c.get(&1).map(String::as_str), Some("b"));
        assert_eq!(c.resident_bytes(), 25);
        assert_eq!(c.inserted_total(), 1);
    }

    #[test]
    fn set_bytes_reaccounts_and_enforces() {
        let mut c: BoundedCache<u64, u64> = BoundedCache::new(0, 100);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        let evicted = c.set_bytes(&1, 95);
        assert_eq!(evicted.len(), 1, "re-accounting 1 pushed 2 out");
        assert_eq!(evicted[0].0, 2);
        assert!(c.get(&1).is_some(), "re-accounted key is protected");
    }

    #[test]
    fn remove_adjusts_hand() {
        let mut c: BoundedCache<u64, u64> = BoundedCache::new(0, 0);
        for k in 0..4 {
            c.insert(k, k, 1);
        }
        c.remove(&0);
        c.remove(&3);
        assert_eq!(c.len(), 2);
        assert!(c.get(&1).is_some() && c.get(&2).is_some());
    }
}
