//! Compliance decisions and their machine-readable reasons.

use qlogic::Cq;

/// How a positive decision was reached (for cache-effectiveness reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// Decided by a fresh template-level (session-independent) proof.
    TemplateProof,
    /// Served from the template cache.
    TemplateCache,
    /// Decided by a fresh concrete (session + trace) proof.
    ConcreteProof,
    /// Served from the per-session decision cache.
    SessionCache,
}

/// Why a query was denied.
#[derive(Debug, Clone, PartialEq)]
pub enum DenyReason {
    /// No equivalent rewriting exists: the query's answer is not determined
    /// by the policy views (plus trace). Carries the offending disjunct.
    NotDetermined {
        /// The conjunctive form of the disjunct that failed.
        query: Cq,
    },
    /// The query fell outside the decidable fragment, so the checker
    /// conservatively blocks it.
    OutOfFragment(String),
    /// The SQL failed to parse.
    ParseError(String),
    /// Writes are blocked by proxy configuration.
    WriteBlocked,
    /// The session was opened read-only; all mutations are denied.
    ReadOnlySession,
    /// A mutation's written rows are not contained in any updatable policy
    /// view. Carries the written row as a conjunctive query (head = the
    /// row's terms, body = the written atom) for diagnosis.
    WriteNotCovered {
        /// The uncovered written row, as a CQ.
        query: Cq,
    },
}

impl DenyReason {
    /// A short stable label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            DenyReason::NotDetermined { .. } => "not-determined",
            DenyReason::OutOfFragment(_) => "out-of-fragment",
            DenyReason::ParseError(_) => "parse-error",
            DenyReason::WriteBlocked => "write-blocked",
            DenyReason::ReadOnlySession => "read-only-session",
            DenyReason::WriteNotCovered { .. } => "write-not-covered",
        }
    }
}

/// The outcome of a compliance check.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// The query may execute as-is.
    Allowed {
        /// How the decision was reached.
        source: DecisionSource,
        /// Equivalent rewritings found, one per disjunct (empty when served
        /// from a cache).
        rewritings: Vec<Cq>,
    },
    /// The query must be blocked.
    Denied {
        /// The reason.
        reason: DenyReason,
    },
}

impl Decision {
    /// `true` if the query was allowed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, Decision::Allowed { .. })
    }

    /// The denial reason, if denied.
    pub fn deny_reason(&self) -> Option<&DenyReason> {
        match self {
            Decision::Denied { reason } => Some(reason),
            Decision::Allowed { .. } => None,
        }
    }
}
