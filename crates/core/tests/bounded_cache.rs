//! Model-based properties of [`BoundedCache`] (the SIEVE-bounded map
//! behind the plan cache and the per-session concrete caches).
//!
//! A bounded cache is allowed to *forget*, never to *lie*: against an
//! unbounded `HashMap` model driven by the same operations, every hit
//! must return exactly the value the model holds for that key (evictions
//! only ever manifest as misses), the counters must account for every
//! entry (`inserted - evicted - removed = len`), and the byte budget must
//! hold whenever more than one entry is resident.

use std::collections::HashMap;

use bep_core::BoundedCache;
use proptest::prelude::*;

/// One generated cache operation. Keys are drawn from a small range so
/// workloads revisit them (hits, updates, and removes all actually fire).
#[derive(Debug, Clone)]
enum Op {
    /// `insert(key, value, bytes)`
    Insert(u8, u32, usize),
    /// `get(&key)` — marks visited on a hit.
    Get(u8),
    /// `remove(&key)`
    Remove(u8),
    /// `set_bytes(&key, bytes)` — re-weighs an entry in place.
    SetBytes(u8, usize),
}

fn op() -> impl Strategy<Value = Op> {
    // Inserts and gets repeated to bias the mix toward them (the stub's
    // `prop_oneof!` draws arms uniformly).
    prop_oneof![
        (0u8..24, any::<u32>(), 1usize..512).prop_map(|(k, v, b)| Op::Insert(k, v, b)),
        (0u8..24, any::<u32>(), 1usize..512).prop_map(|(k, v, b)| Op::Insert(k, v, b)),
        (0u8..24, any::<u32>(), 1usize..512).prop_map(|(k, v, b)| Op::Insert(k, v, b)),
        (0u8..24).prop_map(Op::Get),
        (0u8..24).prop_map(Op::Get),
        (0u8..24).prop_map(Op::Remove),
        (0u8..24, 1usize..512).prop_map(|(k, b)| Op::SetBytes(k, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bounded_cache_is_a_forgetful_map_with_exact_accounting(
        ops in proptest::collection::vec(op(), 1..120),
        max_entries in prop_oneof![Just(0usize), 1usize..12],
        budget in prop_oneof![Just(0usize), 64usize..2048],
    ) {
        let mut cache: BoundedCache<u8, u32> = BoundedCache::new(max_entries, budget);
        let mut model: HashMap<u8, u32> = HashMap::new();
        let mut evicted_or_removed: HashMap<u8, ()> = HashMap::new();
        let mut removed_present = 0u64;

        for op in &ops {
            match *op {
                Op::Insert(k, v, b) => {
                    let evicted = cache.insert(k, v, b);
                    model.insert(k, v);
                    // Evicted pairs must carry the value the model knew —
                    // eviction hands back truth, it doesn't corrupt it.
                    for (ek, ev) in evicted {
                        prop_assert_eq!(model.get(&ek), Some(&ev),
                            "evicted pair ({}, {}) disagrees with the model", ek, ev);
                        evicted_or_removed.insert(ek, ());
                    }
                }
                Op::Get(k) => {
                    match cache.get(&k) {
                        // The cardinal property: a hit returns exactly
                        // what was inserted, no matter what was evicted
                        // around it.
                        Some(v) => prop_assert_eq!(Some(v), model.get(&k),
                            "hit on {} returned a value the model never held", k),
                        // A miss is only legal if the key was never
                        // inserted, or left via eviction/removal.
                        None => prop_assert!(
                            !model.contains_key(&k) || evicted_or_removed.contains_key(&k),
                            "key {} vanished without an eviction or removal", k
                        ),
                    }
                }
                Op::Remove(k) => {
                    if let Some(v) = cache.remove(&k) {
                        prop_assert_eq!(Some(&v), model.get(&k));
                        removed_present += 1;
                    }
                    evicted_or_removed.insert(k, ());
                    model.remove(&k);
                }
                Op::SetBytes(k, b) => {
                    for (ek, ev) in cache.set_bytes(&k, b) {
                        prop_assert_eq!(model.get(&ek), Some(&ev));
                        evicted_or_removed.insert(ek, ());
                    }
                }
            }

            // Counters account for every entry at every step: what came
            // in minus what provably left is what is resident.
            prop_assert_eq!(
                cache.inserted_total() - cache.evicted_total() - removed_present,
                cache.len() as u64,
                "inserted {} - evicted {} - removed {} != len {}",
                cache.inserted_total(), cache.evicted_total(), removed_present, cache.len()
            );
            // Bounds hold whenever they can: a single oversized entry is
            // deliberately retained (a cache that can hold nothing would
            // thrash), so the budget claim applies from two entries up.
            if max_entries > 0 {
                prop_assert!(cache.len() <= max_entries.max(1));
            }
            if budget > 0 && cache.len() > 1 {
                prop_assert!(
                    cache.resident_bytes() <= budget,
                    "{} resident bytes exceed the {} budget with {} entries",
                    cache.resident_bytes(), budget, cache.len()
                );
            }
        }

        // Post-workload: every surviving entry is still exactly the
        // model's value (sweep without marking, via iter).
        for (k, v) in cache.iter() {
            prop_assert_eq!(Some(v), model.get(k));
        }
    }
}
