//! Differential tests of the bounded-memory machinery.
//!
//! Trace compaction drops stored facts that are homomorphically implied by
//! the rest of the trace, and the SIEVE-bounded caches evict under byte
//! pressure. Both are pure memory optimizations: with the fact set
//! logically equivalent and every cache a *cache* (misses recompute), no
//! decision may change. These properties replay generated workloads over
//! the calendar and forum schemas through three proxies that differ only
//! in those knobs — compaction off, compaction on, and compaction on with
//! budgets tight enough to force eviction mid-workload — and assert the
//! responses are bit-identical (verdict, deny reason, rows), cold and
//! warm.

use bep_core::{schema_of_database, ComplianceChecker, HeapUsage, Policy, ProxyConfig, SqlProxy};
use minidb::Database;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sqlir::Value;

type Step = String;

// ---------------------------------------------------------------- calendar

fn calendar_db(attendance: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    for e in 0..4 {
        db.execute_sql(&format!(
            "INSERT INTO Events (EId, Title, Kind) VALUES ({e}, 'title{e}', 'kind{e}')"
        ))
        .unwrap();
    }
    for (u, e) in attendance {
        let _ = db.execute_sql(&format!(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES ({u}, {e}, NULL)"
        ));
    }
    db
}

fn calendar_policy(db: &Database) -> (qlogic::RelSchema, Policy) {
    let schema = schema_of_database(db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    (schema, policy)
}

/// Steps biased toward *repetition* (small constant ranges): repeats are
/// what populate the trace with subsumable duplicates and what hammer the
/// concrete caches hard enough for tight budgets to evict.
fn calendar_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0i64..3, 0i64..3)
            .prop_map(|(u, e)| format!("SELECT 1 FROM Attendance WHERE UId = {u} AND EId = {e}")),
        (0i64..3).prop_map(|e| format!("SELECT * FROM Events WHERE EId = {e}")),
        (0i64..3)
            .prop_map(|e| format!("SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = {e}")),
        Just("SELECT EId FROM Attendance WHERE UId = ?MyUId".to_string()),
        (0i64..3).prop_map(|e| format!(
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND (EId = {e} OR EId = 0)"
        )),
        Just("SELECT 1 FROM Events WHERE EId = 1 AND EId = 2".to_string()),
    ]
}

// ------------------------------------------------------------------- forum

fn forum_db(membership: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for ddl in [
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Groups (GId INT PRIMARY KEY, Name TEXT NOT NULL, Public BOOL NOT NULL)",
        "CREATE TABLE Membership (UId INT NOT NULL, GId INT NOT NULL, Role TEXT NOT NULL, \
         PRIMARY KEY (UId, GId))",
        "CREATE TABLE Posts (PId INT PRIMARY KEY, GId INT NOT NULL, AuthorId INT NOT NULL, \
         Title TEXT NOT NULL, Body TEXT NOT NULL)",
        "CREATE TABLE Comments (CId INT PRIMARY KEY, PId INT NOT NULL, AuthorId INT NOT NULL, \
         Body TEXT NOT NULL)",
    ] {
        db.execute_sql(ddl).unwrap();
    }
    db.execute_sql("INSERT INTO Users (UId, Name) VALUES (0, 'u0'), (1, 'u1'), (2, 'u2')")
        .unwrap();
    db.execute_sql(
        "INSERT INTO Groups (GId, Name, Public) VALUES \
         (0, 'g0', TRUE), (1, 'g1', FALSE), (2, 'g2', FALSE)",
    )
    .unwrap();
    for (u, g) in membership {
        let _ = db.execute_sql(&format!(
            "INSERT INTO Membership (UId, GId, Role) VALUES ({u}, {g}, 'member')"
        ));
    }
    db.execute_sql(
        "INSERT INTO Posts (PId, GId, AuthorId, Title, Body) VALUES \
         (10, 0, 0, 't10', 'b10'), (11, 1, 1, 't11', 'b11'), (12, 2, 2, 't12', 'b12')",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Comments (CId, PId, AuthorId, Body) VALUES \
         (100, 10, 0, 'c100'), (101, 11, 1, 'c101')",
    )
    .unwrap();
    db
}

fn forum_policy(db: &Database) -> (qlogic::RelSchema, Policy) {
    let schema = schema_of_database(db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("PostGroups", "SELECT PId, GId FROM Posts"),
            (
                "MyMemberships",
                "SELECT GId FROM Membership WHERE UId = ?MyUId",
            ),
            (
                "MyGroups",
                "SELECT g.GId, g.Name FROM Groups g \
                 JOIN Membership m ON g.GId = m.GId WHERE m.UId = ?MyUId",
            ),
            (
                "PublicGroups",
                "SELECT GId, Name FROM Groups WHERE Public = TRUE",
            ),
            (
                "GroupPosts",
                "SELECT p.PId, p.GId, p.Title, p.Body, p.AuthorId FROM Posts p \
                 JOIN Membership m ON p.GId = m.GId WHERE m.UId = ?MyUId",
            ),
            (
                "GroupComments",
                "SELECT c.CId, c.PId, c.AuthorId, c.Body FROM Comments c \
                 JOIN Posts p ON c.PId = p.PId \
                 JOIN Membership m ON p.GId = m.GId WHERE m.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    (schema, policy)
}

fn forum_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (10i64..13).prop_map(|p| format!("SELECT GId FROM Posts WHERE PId = {p}")),
        (0i64..3)
            .prop_map(|g| format!("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = {g}")),
        (10i64..13)
            .prop_map(|p| format!("SELECT PId, Title, Body, AuthorId FROM Posts WHERE PId = {p}")),
        (10i64..13)
            .prop_map(|p| format!("SELECT CId, AuthorId, Body FROM Comments WHERE PId = {p}")),
        Just("SELECT GId, Name FROM Groups WHERE Public = TRUE".to_string()),
    ]
}

// -------------------------------------------------------------- the driver

/// Replays `steps` twice (cold, then warm) through the three proxies and
/// asserts bit-identical responses at every step. Returns the final trace
/// heap bytes of the (baseline, compacting) sessions so callers can
/// assert compaction never *grows* the trace.
fn assert_bounded_differential(
    schema: qlogic::RelSchema,
    policy: Policy,
    db: &Database,
    uid: i64,
    steps: &[Step],
) -> Result<(usize, usize), TestCaseError> {
    let checker = ComplianceChecker::new(schema, policy);
    let baseline = SqlProxy::new(
        db.clone(),
        checker.clone(),
        ProxyConfig {
            compaction: false,
            ..Default::default()
        },
    );
    let compacting = SqlProxy::new(db.clone(), checker.clone(), ProxyConfig::default());
    // Budgets low enough that real workloads evict: a few hundred bytes of
    // session cache is a handful of entries; 4 KiB of plans is 1-2
    // compiled templates.
    let starved = SqlProxy::new(
        db.clone(),
        checker.clone(),
        ProxyConfig {
            session_cache_budget_bytes: 512,
            plan_budget_bytes: 4 * 1024,
            ..Default::default()
        },
    );
    let bindings = vec![("MyUId".to_string(), Value::Int(uid))];
    let sb = baseline.begin_session(bindings.clone());
    let sc = compacting.begin_session(bindings.clone());
    let ss = starved.begin_session(bindings.clone());

    for replay in ["cold", "warm"] {
        for sql in steps {
            let a = baseline.execute(sb, sql, &[]);
            let b = compacting.execute(sc, sql, &[]);
            let c = starved.execute(ss, sql, &[]);
            prop_assert_eq!(
                &a,
                &b,
                "compaction changed a decision ({}) on {}",
                replay,
                sql
            );
            prop_assert_eq!(
                &a,
                &c,
                "starved caches changed a decision ({}) on {}",
                replay,
                sql
            );
        }
    }
    let base_bytes = baseline.session_trace(sb).unwrap().heap_bytes();
    let compact_bytes = compacting.session_trace(sc).unwrap().heap_bytes();
    Ok((base_bytes, compact_bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calendar_compaction_and_eviction_are_decision_invisible(
        attendance in proptest::collection::vec((0i64..3, 0i64..3), 0..8),
        uid in 0i64..3,
        steps in proptest::collection::vec(calendar_step(), 1..14),
    ) {
        let db = calendar_db(&attendance);
        let (schema, policy) = calendar_policy(&db);
        let (base, compact) =
            assert_bounded_differential(schema, policy, &db, uid, &steps)?;
        prop_assert!(
            compact <= base,
            "compaction grew the trace: {compact} > {base} bytes"
        );
    }

    #[test]
    fn forum_compaction_and_eviction_are_decision_invisible(
        membership in proptest::collection::vec((0i64..3, 0i64..3), 0..6),
        uid in 0i64..3,
        steps in proptest::collection::vec(forum_step(), 1..14),
    ) {
        let db = forum_db(&membership);
        let (schema, policy) = forum_policy(&db);
        let (base, compact) =
            assert_bounded_differential(schema, policy, &db, uid, &steps)?;
        prop_assert!(
            compact <= base,
            "compaction grew the trace: {compact} > {base} bytes"
        );
    }

    /// The workload every compaction win comes from: the same probe
    /// repeated. The trace must stay flat (one entry's worth of state)
    /// instead of growing linearly, and the decisions must match a
    /// non-compacting proxy step for step.
    #[test]
    fn repeated_probes_keep_the_trace_flat(
        repeats in 4usize..24,
        e in 0i64..3,
    ) {
        let db = calendar_db(&[(0, 0), (0, 1), (0, 2)]);
        let (schema, policy) = calendar_policy(&db);
        let steps: Vec<Step> = (0..repeats)
            .map(|_| format!("SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = {e}"))
            .collect();
        let (base, compact) =
            assert_bounded_differential(schema, policy, &db, 0, &steps)?;
        prop_assert!(
            compact < base || repeats < 2,
            "repeats should compact away: {compact} vs {base} bytes after {repeats} repeats"
        );
    }
}
