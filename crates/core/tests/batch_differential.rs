//! Differential tests of cross-connection batched execution.
//!
//! [`SqlProxy::execute_batch`] is the event-driven server's amortization
//! point: one call decides a burst of frames drained from many
//! connections, sharing the plan-cache probe within the batch and
//! deferring journal publication into one block claim. Like the plan
//! machinery, it is *pure* amortization — these properties drive
//! generated template mixes over the calendar and forum schemas, chunk
//! them into arbitrary batch shapes (including mixed-session batches and
//! prepared-plan items), and assert against a step-by-step sequential
//! proxy fed the identical global order:
//!
//! * every response is bit-identical (verdict, deny reason, rows,
//!   errors);
//! * every session's accumulated trace is identical afterwards;
//! * the decision journals agree event by event on session, template
//!   hash, verdict, cache tier, and negative-cache provenance — batching
//!   may defer publication, never change what is published;
//! * the aggregate allowed/blocked counters agree.

use bep_core::{
    schema_of_database, BatchItem, BatchStmt, ComplianceChecker, Policy, ProxyConfig, SqlProxy,
};
use minidb::Database;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sqlir::Value;

/// One generated request: (session slot, SQL, submit as a prepared plan).
type Step = (usize, String, bool);

fn calendar_db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    for e in 0..4 {
        db.execute_sql(&format!(
            "INSERT INTO Events (EId, Title, Kind) VALUES ({e}, 'title{e}', 'kind{e}')"
        ))
        .unwrap();
        db.execute_sql(&format!(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES ({e}, {e}, NULL)"
        ))
        .unwrap();
    }
    db
}

fn calendar_policy(db: &Database) -> (qlogic::RelSchema, Policy) {
    let schema = schema_of_database(db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    (schema, policy)
}

fn calendar_sql() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..4, 0i64..4)
            .prop_map(|(u, e)| format!("SELECT 1 FROM Attendance WHERE UId = {u} AND EId = {e}")),
        (0i64..4).prop_map(|e| format!("SELECT * FROM Events WHERE EId = {e}")),
        (0i64..4)
            .prop_map(|e| format!("SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = {e}")),
        Just("SELECT EId FROM Attendance WHERE UId = ?MyUId".to_string()),
        // Out of fragment and unparseable: error paths must batch too.
        Just("SELECT COUNT(*) FROM Events".to_string()),
        Just("SELEC whoops".to_string()),
    ]
}

fn forum_db() -> Database {
    let mut db = Database::new();
    for ddl in [
        "CREATE TABLE Groups (GId INT PRIMARY KEY, Name TEXT NOT NULL, Public BOOL NOT NULL)",
        "CREATE TABLE Membership (UId INT NOT NULL, GId INT NOT NULL, Role TEXT NOT NULL, \
         PRIMARY KEY (UId, GId))",
        "CREATE TABLE Posts (PId INT PRIMARY KEY, GId INT NOT NULL, AuthorId INT NOT NULL, \
         Title TEXT NOT NULL, Body TEXT NOT NULL)",
    ] {
        db.execute_sql(ddl).unwrap();
    }
    db.execute_sql(
        "INSERT INTO Groups (GId, Name, Public) VALUES \
         (0, 'g0', TRUE), (1, 'g1', FALSE), (2, 'g2', FALSE)",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Membership (UId, GId, Role) VALUES \
         (0, 0, 'member'), (1, 1, 'member'), (2, 2, 'member')",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Posts (PId, GId, AuthorId, Title, Body) VALUES \
         (10, 0, 0, 't10', 'b10'), (11, 1, 1, 't11', 'b11'), (12, 2, 2, 't12', 'b12')",
    )
    .unwrap();
    db
}

fn forum_policy(db: &Database) -> (qlogic::RelSchema, Policy) {
    let schema = schema_of_database(db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("PostGroups", "SELECT PId, GId FROM Posts"),
            (
                "MyMemberships",
                "SELECT GId FROM Membership WHERE UId = ?MyUId",
            ),
            (
                "PublicGroups",
                "SELECT GId, Name FROM Groups WHERE Public = TRUE",
            ),
            (
                "GroupPosts",
                "SELECT p.PId, p.GId, p.Title, p.Body, p.AuthorId FROM Posts p \
                 JOIN Membership m ON p.GId = m.GId WHERE m.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    (schema, policy)
}

fn forum_sql() -> impl Strategy<Value = String> {
    prop_oneof![
        (10i64..13).prop_map(|p| format!("SELECT GId FROM Posts WHERE PId = {p}")),
        (0i64..3)
            .prop_map(|g| format!("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = {g}")),
        (10i64..13)
            .prop_map(|p| format!("SELECT PId, Title, Body, AuthorId FROM Posts WHERE PId = {p}")),
        Just("SELECT GId, Name FROM Groups WHERE Public = TRUE".to_string()),
        // A write mixed in: the DB mutates mid-batch identically on both
        // sides (and identically violates the primary key on repeats).
        (10i64..13, 900i64..903).prop_map(|(g, p)| format!(
            "INSERT INTO Posts (PId, GId, AuthorId, Title, Body) VALUES ({p}, {g}, 0, 't', 'b')"
        )),
    ]
}

fn step(sql: impl Strategy<Value = String>, sessions: usize) -> impl Strategy<Value = Step> {
    (0..sessions, sql, any::<bool>())
}

/// Replays `steps` chunked into `batch_sizes`-shaped batches through one
/// proxy's `execute_batch` and one item at a time through another, then
/// compares responses, traces, journals, and counters.
fn assert_batch_differential(
    db: &Database,
    schema: qlogic::RelSchema,
    policy: Policy,
    sessions: usize,
    steps: &[Step],
    batch_sizes: &[usize],
) -> Result<(), TestCaseError> {
    let checker = ComplianceChecker::new(schema, policy);
    let sequential = SqlProxy::new(db.clone(), checker.clone(), ProxyConfig::default());
    let batched = SqlProxy::new(db.clone(), checker, ProxyConfig::default());

    // One session per slot on each proxy; slot i binds MyUId = i, so a
    // mixed-session batch interleaves genuinely different principals.
    let bind = |uid: usize| vec![("MyUId".to_string(), Value::Int(uid as i64))];
    let seq_sessions: Vec<u64> = (0..sessions)
        .map(|u| sequential.begin_session(bind(u)))
        .collect();
    let bat_sessions: Vec<u64> = (0..sessions)
        .map(|u| batched.begin_session(bind(u)))
        .collect();

    let mut off = 0;
    let mut turn = 0;
    while off < steps.len() {
        let n = batch_sizes[turn % batch_sizes.len()].min(steps.len() - off);
        turn += 1;
        let chunk = &steps[off..off + n];
        off += n;

        // Build the batch exactly as the event loop does: prepared items
        // resolve their plan at classification time, before the batch
        // runs. Mirror those prepares on the sequential side first so
        // both plan caches see the same history at every step.
        let items: Vec<BatchItem> = chunk
            .iter()
            .map(|(slot, sql, prepared)| BatchItem {
                session: bat_sessions[*slot],
                stmt: if *prepared {
                    BatchStmt::Plan(batched.prepare(sql))
                } else {
                    BatchStmt::Sql(sql.clone())
                },
                bindings: Vec::new(),
            })
            .collect();
        let seq_plans: Vec<_> = chunk
            .iter()
            .map(|(_, sql, prepared)| prepared.then(|| sequential.prepare(sql)))
            .collect();

        let got = batched.execute_batch(&items);
        assert_eq!(got.len(), chunk.len(), "one response per item");
        for (i, ((slot, sql, _), response)) in chunk.iter().zip(&got).enumerate() {
            let want = match &seq_plans[i] {
                Some(plan) => sequential.execute_planned(seq_sessions[*slot], plan, &[]),
                None => sequential.execute(seq_sessions[*slot], sql, &[]),
            };
            prop_assert_eq!(
                &want,
                response,
                "batched vs sequential diverged on `{}` (session slot {})",
                sql,
                slot
            );
        }
    }

    // Traces must have evolved identically, session by session.
    for (slot, (&s, &b)) in seq_sessions.iter().zip(&bat_sessions).enumerate() {
        let st = sequential.session_trace(s).expect("sequential trace");
        let bt = batched.session_trace(b).expect("batched trace");
        prop_assert_eq!(
            format!("{st:?}"),
            format!("{bt:?}"),
            "trace diverged for session slot {}",
            slot
        );
    }

    // Journal parity: batching defers publication, never changes it. The
    // sequences must agree on everything except wall-clock timings.
    let seq_events = sequential.journal().events_since(0, usize::MAX);
    let bat_events = batched.journal().events_since(0, usize::MAX);
    prop_assert_eq!(seq_events.len(), bat_events.len(), "journal lengths differ");
    let slot_of = |sessions: &[u64], id: u64| sessions.iter().position(|&s| s == id);
    for (i, (se, be)) in seq_events.iter().zip(&bat_events).enumerate() {
        prop_assert_eq!(se.seq, be.seq, "event {}: seq", i);
        prop_assert_eq!(
            slot_of(&seq_sessions, se.session),
            slot_of(&bat_sessions, be.session),
            "event {}: session slot",
            i
        );
        prop_assert_eq!(se.template_hash, be.template_hash, "event {}: hash", i);
        prop_assert_eq!(se.verdict, be.verdict, "event {}: verdict", i);
        prop_assert_eq!(se.tier, be.tier, "event {}: cache tier", i);
        prop_assert_eq!(
            se.negative_template_hit,
            be.negative_template_hit,
            "event {}: negative-cache provenance",
            i
        );
    }

    let ss = sequential.stats();
    let bs = batched.stats();
    prop_assert_eq!(
        (ss.allowed, ss.blocked),
        (bs.allowed, bs.blocked),
        "aggregate decision counters diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calendar_batches_are_decision_identical(
        steps in proptest::collection::vec(step(calendar_sql(), 3), 1..24),
        batch_sizes in proptest::collection::vec(1usize..9, 1..6),
    ) {
        let db = calendar_db();
        let (schema, policy) = calendar_policy(&db);
        assert_batch_differential(&db, schema, policy, 3, &steps, &batch_sizes)?;
    }

    #[test]
    fn forum_batches_are_decision_identical(
        steps in proptest::collection::vec(step(forum_sql(), 3), 1..24),
        batch_sizes in proptest::collection::vec(1usize..9, 1..6),
    ) {
        let db = forum_db();
        let (schema, policy) = forum_policy(&db);
        assert_batch_differential(&db, schema, policy, 3, &steps, &batch_sizes)?;
    }

    /// Degenerate shapes: all-singleton batches must equal `execute`
    /// exactly, and one giant batch must equal the same requests one at a
    /// time — the batch boundary carries no semantics.
    #[test]
    fn batch_boundaries_carry_no_semantics(
        steps in proptest::collection::vec(step(calendar_sql(), 2), 1..16),
    ) {
        let db = calendar_db();
        let (schema, policy) = calendar_policy(&db);
        assert_batch_differential(&db, schema.clone(), policy.clone(), 2, &steps, &[1])?;
        assert_batch_differential(&db, schema, policy, 2, &steps, &[steps.len()])?;
    }
}
