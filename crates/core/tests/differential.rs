//! Differential tests of the compiled-plan decision path.
//!
//! The plan machinery (parse-once, translate-once, pruned candidate views,
//! compiled template verdicts, `u64` cache keys) is pure amortization: it
//! must never change a decision. These properties drive generated
//! workloads over the calendar schema of Example 2.1 and the forum schema
//! of the simulated applications, and assert, query by query:
//!
//! * a proxy with plans and a naive proxy (`plan_cache: false` — parse,
//!   translate, and prove from scratch per request) return bit-identical
//!   responses: verdict, deny reason, and rows;
//! * a planned proxy with the verdict caches off returns the same verdict
//!   and deny reason as a fresh [`ComplianceChecker::check_concrete`] run
//!   against the session's own trace — the paper's reference decision
//!   procedure;
//! * both hold cache-cold (first replay) and cache-warm (second replay of
//!   the identical workload in the same sessions).

use bep_core::{
    schema_of_database, ComplianceChecker, Policy, ProxyConfig, ProxyResponse, SqlProxy,
};
use minidb::Database;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use sqlir::{parse_statement, Statement, Value};

/// One generated request: plain SQL (session parameters like `?MyUId`
/// resolve from the session bindings; everything else is inlined).
type Step = String;

// ---------------------------------------------------------------- calendar

fn calendar_db(attendance: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    for e in 0..4 {
        db.execute_sql(&format!(
            "INSERT INTO Events (EId, Title, Kind) VALUES ({e}, 'title{e}', 'kind{e}')"
        ))
        .unwrap();
    }
    for (u, e) in attendance {
        let _ = db.execute_sql(&format!(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES ({u}, {e}, NULL)"
        ));
    }
    db
}

fn calendar_policy(db: &Database) -> (qlogic::RelSchema, Policy) {
    let schema = schema_of_database(db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    (schema, policy)
}

fn calendar_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0i64..4, 0i64..4)
            .prop_map(|(u, e)| format!("SELECT 1 FROM Attendance WHERE UId = {u} AND EId = {e}")),
        (0i64..4).prop_map(|e| format!("SELECT * FROM Events WHERE EId = {e}")),
        (0i64..4)
            .prop_map(|e| format!("SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = {e}")),
        Just("SELECT EId FROM Attendance WHERE UId = ?MyUId".to_string()),
        // Union: both disjuncts must pass.
        (0i64..4).prop_map(|e| format!(
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND (EId = {e} OR EId = 0)"
        )),
        // Unsatisfiable (allowed: reveals nothing).
        Just("SELECT 1 FROM Events WHERE EId = 1 AND EId = 2".to_string()),
        // Out of fragment and unparseable.
        Just("SELECT COUNT(*) FROM Events".to_string()),
        Just("SELEC whoops".to_string()),
    ]
}

// ------------------------------------------------------------------- forum

fn forum_db(membership: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for ddl in [
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Groups (GId INT PRIMARY KEY, Name TEXT NOT NULL, Public BOOL NOT NULL)",
        "CREATE TABLE Membership (UId INT NOT NULL, GId INT NOT NULL, Role TEXT NOT NULL, \
         PRIMARY KEY (UId, GId))",
        "CREATE TABLE Posts (PId INT PRIMARY KEY, GId INT NOT NULL, AuthorId INT NOT NULL, \
         Title TEXT NOT NULL, Body TEXT NOT NULL)",
        "CREATE TABLE Comments (CId INT PRIMARY KEY, PId INT NOT NULL, AuthorId INT NOT NULL, \
         Body TEXT NOT NULL)",
    ] {
        db.execute_sql(ddl).unwrap();
    }
    db.execute_sql("INSERT INTO Users (UId, Name) VALUES (0, 'u0'), (1, 'u1'), (2, 'u2')")
        .unwrap();
    db.execute_sql(
        "INSERT INTO Groups (GId, Name, Public) VALUES \
         (0, 'g0', TRUE), (1, 'g1', FALSE), (2, 'g2', FALSE)",
    )
    .unwrap();
    for (u, g) in membership {
        let _ = db.execute_sql(&format!(
            "INSERT INTO Membership (UId, GId, Role) VALUES ({u}, {g}, 'member')"
        ));
    }
    db.execute_sql(
        "INSERT INTO Posts (PId, GId, AuthorId, Title, Body) VALUES \
         (10, 0, 0, 't10', 'b10'), (11, 1, 1, 't11', 'b11'), (12, 2, 2, 't12', 'b12')",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Comments (CId, PId, AuthorId, Body) VALUES \
         (100, 10, 0, 'c100'), (101, 11, 1, 'c101')",
    )
    .unwrap();
    db
}

/// The forum ground-truth policy (mirrors `appsim::forum::FORUM`).
fn forum_policy(db: &Database) -> (qlogic::RelSchema, Policy) {
    let schema = schema_of_database(db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("PostGroups", "SELECT PId, GId FROM Posts"),
            (
                "MyMemberships",
                "SELECT GId FROM Membership WHERE UId = ?MyUId",
            ),
            (
                "MyGroups",
                "SELECT g.GId, g.Name FROM Groups g \
                 JOIN Membership m ON g.GId = m.GId WHERE m.UId = ?MyUId",
            ),
            (
                "PublicGroups",
                "SELECT GId, Name FROM Groups WHERE Public = TRUE",
            ),
            (
                "GroupPosts",
                "SELECT p.PId, p.GId, p.Title, p.Body, p.AuthorId FROM Posts p \
                 JOIN Membership m ON p.GId = m.GId WHERE m.UId = ?MyUId",
            ),
            (
                "GroupComments",
                "SELECT c.CId, c.PId, c.AuthorId, c.Body FROM Comments c \
                 JOIN Posts p ON c.PId = p.PId \
                 JOIN Membership m ON p.GId = m.GId WHERE m.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    (schema, policy)
}

fn forum_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (10i64..13).prop_map(|p| format!("SELECT GId FROM Posts WHERE PId = {p}")),
        (0i64..3)
            .prop_map(|g| format!("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = {g}")),
        (10i64..13)
            .prop_map(|p| format!("SELECT PId, Title, Body, AuthorId FROM Posts WHERE PId = {p}")),
        (10i64..13)
            .prop_map(|p| format!("SELECT CId, AuthorId, Body FROM Comments WHERE PId = {p}")),
        Just("SELECT GId, Name FROM Groups WHERE Public = TRUE".to_string()),
        Just(
            "SELECT g.GId, g.Name FROM Groups g JOIN Membership m ON g.GId = m.GId \
             WHERE m.UId = ?MyUId"
                .to_string()
        ),
        // A write mixed in: passes through both proxies identically (and
        // identically violates the Comments primary key on warm replays).
        (10i64..13, 900i64..903).prop_map(|(p, c)| format!(
            "INSERT INTO Comments (CId, PId, AuthorId, Body) VALUES ({c}, {p}, 0, 'x')"
        )),
    ]
}

// -------------------------------------------------------------- the driver

/// Replays `steps` twice (cold, then warm) through a planned proxy, a
/// naive proxy, and a caches-off planned proxy checked against a fresh
/// `check_concrete` oracle per request.
fn assert_differential(
    schema: qlogic::RelSchema,
    policy: Policy,
    db: &Database,
    uid: i64,
    steps: &[Step],
) -> Result<(), TestCaseError> {
    let checker = ComplianceChecker::new(schema, policy);
    let planned = SqlProxy::new(db.clone(), checker.clone(), ProxyConfig::default());
    let naive = SqlProxy::new(
        db.clone(),
        checker.clone(),
        ProxyConfig {
            plan_cache: false,
            ..Default::default()
        },
    );
    // Verdict caches off: every SELECT runs a fresh planned concrete
    // proof, comparable 1:1 with the oracle below.
    let nocache = SqlProxy::new(
        db.clone(),
        checker.clone(),
        ProxyConfig {
            template_cache: false,
            session_cache: false,
            ..Default::default()
        },
    );
    let bindings = vec![("MyUId".to_string(), Value::Int(uid))];
    let sp = planned.begin_session(bindings.clone());
    let sn = naive.begin_session(bindings.clone());
    let sc = nocache.begin_session(bindings.clone());

    for replay in ["cold", "warm"] {
        for sql in steps {
            // Oracle first: `check_concrete` from scratch against the
            // caches-off session's current trace.
            let oracle = match parse_statement(sql) {
                Ok(Statement::Select(q)) => {
                    let trace = nocache.session_trace(sc).unwrap();
                    Some(checker.check_concrete(&q, &bindings, &trace))
                }
                _ => None,
            };
            let a = planned.execute(sp, sql, &[]);
            let b = naive.execute(sn, sql, &[]);
            prop_assert_eq!(&a, &b, "planned vs naive diverged ({}) on {}", replay, sql);
            let c = nocache.execute(sc, sql, &[]);
            if let (Some(oracle), Ok(response)) = (oracle, &c) {
                prop_assert_eq!(
                    oracle.is_allowed(),
                    response.is_allowed(),
                    "planned vs oracle verdict diverged ({}) on {}",
                    replay,
                    sql
                );
                if let (Some(reason), ProxyResponse::Blocked(got)) =
                    (oracle.deny_reason(), response)
                {
                    prop_assert_eq!(
                        reason,
                        got,
                        "planned vs oracle deny reason diverged ({}) on {}",
                        replay,
                        sql
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calendar_plans_are_decision_identical(
        attendance in proptest::collection::vec((0i64..4, 0i64..4), 0..8),
        uid in 0i64..4,
        steps in proptest::collection::vec(calendar_step(), 1..12),
    ) {
        let db = calendar_db(&attendance);
        let (schema, policy) = calendar_policy(&db);
        assert_differential(schema, policy, &db, uid, &steps)?;
    }

    #[test]
    fn forum_plans_are_decision_identical(
        membership in proptest::collection::vec((0i64..3, 0i64..3), 0..6),
        uid in 0i64..3,
        steps in proptest::collection::vec(forum_step(), 1..12),
    ) {
        let db = forum_db(&membership);
        let (schema, policy) = forum_policy(&db);
        assert_differential(schema, policy, &db, uid, &steps)?;
    }
}
