//! Differential gate for the write path.
//!
//! The proxy decides mutations through a tiered pipeline — plan cache,
//! template verdicts, per-session concrete caches, the trace-stamped
//! deny cache. A reference evaluator with none of that machinery
//! (freshly compile the template, freshly run the concrete coverage
//! check against the session's trace facts) must reach the *same*
//! verdict for every generated mutation, under every cache
//! configuration. Any disagreement is a decision error, full stop.

use bep_core::{
    check_write_concrete, compile_write_template, schema_of_database, ComplianceChecker, Policy,
    ProxyConfig, ProxyResponse, SqlProxy,
};
use minidb::Database;
use qlogic::{Atom, RelSchema};
use sqlir::{parse_statement, Value};

/// SplitMix64 — self-contained so the statement stream is reproducible
/// from the seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn calendar_db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), (3, 'party', 'fun')",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')")
        .unwrap();
    db
}

fn calendar_policy(schema: &RelSchema) -> Policy {
    Policy::from_sql(
        schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap()
}

/// A user-id term: a literal in or out of the fixture, or the session
/// parameter itself.
fn uid_term(rng: &mut Rng) -> String {
    match rng.below(4) {
        0 => "1".to_string(),
        1 => "2".to_string(),
        2 => "7".to_string(),
        _ => "?MyUId".to_string(),
    }
}

/// An event-id: one of the seeded events or an unseeded id.
fn eid_term(rng: &mut Rng) -> i64 {
    [2, 3, 5][rng.below(3) as usize]
}

/// One generated mutation. `fresh` allocates never-seeded primary keys.
fn gen_write(rng: &mut Rng, fresh: &mut i64) -> String {
    let k = rng.below(9);
    let u = uid_term(rng);
    let e = eid_term(rng);
    match k {
        0 => {
            *fresh += 1;
            format!("INSERT INTO Attendance (UId, EId, Notes) VALUES ({u}, {e}, 'n{fresh}')")
        }
        1 => format!("INSERT INTO Attendance (UId, EId) VALUES ({u}, {e})"),
        2 => format!("DELETE FROM Attendance WHERE UId = {u}"),
        3 => format!("DELETE FROM Attendance WHERE UId = {u} AND EId = {e}"),
        4 => format!("UPDATE Attendance SET Notes = 'edited' WHERE UId = {u}"),
        5 => format!("UPDATE Attendance SET Notes = 'edited' WHERE UId = {u} AND EId = {e}"),
        6 => {
            *fresh += 1;
            format!("INSERT INTO Events (EId, Title, Kind) VALUES ({fresh}, 't{fresh}', 'misc')")
        }
        7 => format!("DELETE FROM Events WHERE EId = {e}"),
        _ => format!("UPDATE Events SET Title = 'renamed' WHERE EId = {e}"),
    }
}

/// One interleaved read — its only job is to grow the session's trace
/// facts so concrete write coverage becomes history-dependent.
fn gen_read(rng: &mut Rng) -> String {
    let e = eid_term(rng);
    match rng.below(3) {
        0 => format!("SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = {e}"),
        1 => format!("SELECT * FROM Events WHERE EId = {e}"),
        _ => "SELECT EId FROM Attendance WHERE UId = ?MyUId".to_string(),
    }
}

/// The reference: no plan cache, no template tier, no deny cache — parse
/// and compile the statement from scratch, then run the concrete
/// coverage check directly against the given trace facts.
fn reference_allows(
    schema: &RelSchema,
    policy: &Policy,
    sql: &str,
    bindings: &[(String, Value)],
    facts: &[Atom],
) -> bool {
    let stmt = parse_statement(sql).expect("generated mutation parses");
    match compile_write_template(&stmt, policy.views(), schema) {
        Err(_) => false,
        Ok(template) => check_write_concrete(&template, policy.views(), bindings, facts).is_ok(),
    }
}

/// Drives `ops` seeded operations through a proxy under `config`,
/// checking every mutation against the reference evaluator. Returns the
/// verdict log (for cross-configuration comparison) and the tally of
/// (allowed, blocked) writes.
fn differential_run(config: ProxyConfig, seed: u64, ops: usize) -> (Vec<String>, u64, u64) {
    let db = calendar_db();
    let schema = schema_of_database(&db);
    let policy = calendar_policy(&schema);
    let proxy = SqlProxy::new(
        db,
        ComplianceChecker::new(schema.clone(), policy.clone()),
        config,
    );
    let sessions = [
        proxy.begin_session(vec![("MyUId".into(), Value::Int(1))]),
        proxy.begin_session(vec![("MyUId".into(), Value::Int(2))]),
    ];
    let bindings = [
        vec![("MyUId".to_string(), Value::Int(1))],
        vec![("MyUId".to_string(), Value::Int(2))],
    ];

    let mut rng = Rng(seed);
    let mut fresh = 1_000;
    let mut log = Vec::with_capacity(ops);
    let (mut allowed, mut blocked) = (0u64, 0u64);
    for i in 0..ops {
        let who = rng.below(2) as usize;
        if rng.below(10) < 3 {
            // A read: grows this session's trace; its own correctness is
            // covered by the read-path differential gates.
            let _ = proxy.execute(sessions[who], &gen_read(&mut rng), &[]);
            log.push(format!("read s{who}"));
            continue;
        }
        let sql = gen_write(&mut rng, &mut fresh);
        // Snapshot the facts the decision will be made against *before*
        // executing (writes never record trace facts, so order is moot,
        // but the snapshot keeps the reference honest by construction).
        let facts = proxy.session_trace(sessions[who]).unwrap().facts().to_vec();
        let expect = reference_allows(&schema, &policy, &sql, &bindings[who], &facts);
        let got = match proxy.execute(sessions[who], &sql, &[]) {
            Ok(ProxyResponse::Blocked(_)) => false,
            // Allowed — whether the store then applied it cleanly or hit
            // a duplicate key is an execution concern, not a decision.
            Ok(_) | Err(_) => true,
        };
        assert_eq!(
            got,
            expect,
            "op {i}: proxy and reference disagree on `{sql}` (session MyUId={}, {} facts)",
            who + 1,
            facts.len()
        );
        if got {
            allowed += 1;
        } else {
            blocked += 1;
        }
        log.push(format!(
            "write s{who} {}",
            if got { "allow" } else { "deny" }
        ));
    }
    (log, allowed, blocked)
}

#[test]
fn every_cache_tier_agrees_with_the_reference_evaluator() {
    let full = ProxyConfig {
        enforce_writes: true,
        ..ProxyConfig::default()
    };
    let no_template_tier = ProxyConfig {
        enforce_writes: true,
        template_cache: false,
        ..ProxyConfig::default()
    };
    let no_plan_cache = ProxyConfig {
        enforce_writes: true,
        plan_cache: false,
        ..ProxyConfig::default()
    };

    let (log_a, allowed, blocked) = differential_run(full, 0xD1FF, 500);
    let (log_b, ..) = differential_run(no_template_tier, 0xD1FF, 500);
    let (log_c, ..) = differential_run(no_plan_cache, 0xD1FF, 500);

    // The stream must actually exercise both verdicts, or the gate is
    // vacuous.
    assert!(allowed > 20, "stream too benign: {allowed} allowed");
    assert!(blocked > 20, "stream too strict: {blocked} blocked");

    // The caches are transparent: every configuration makes the same
    // decision on the same statement stream.
    assert_eq!(log_a, log_b, "template tier changed a verdict");
    assert_eq!(log_a, log_c, "plan cache changed a verdict");

    // And the whole run is deterministic.
    let (log_a2, ..) = differential_run(full, 0xD1FF, 500);
    assert_eq!(log_a, log_a2, "same seed, same decisions");
}
