//! Scalar expression evaluation with SQL three-valued logic.
//!
//! Predicates evaluate to [`Value::Bool`] or [`Value::Null`] (unknown); the
//! executor treats anything but `TRUE` as filtering a row out, matching SQL
//! `WHERE` semantics.

use sqlir::value::like_match;
use sqlir::{BinaryOp, CmpResult, ColumnRef, Expr, Param, Query, UnaryOp, Value};

use crate::db::Database;
use crate::error::DbError;
use crate::schema::Column;

/// One table binding visible to name resolution.
#[derive(Debug, Clone)]
pub struct ScopeEntry<'a> {
    /// The binding name (alias, or the table name itself).
    pub binding: String,
    /// The bound table's columns.
    pub columns: &'a [Column],
    /// Offset of this binding's first value in the concatenated row.
    pub offset: usize,
}

/// The set of bindings introduced by one query's `FROM`/`JOIN` clauses.
#[derive(Debug, Clone, Default)]
pub struct Scope<'a> {
    /// Entries in binding order.
    pub entries: Vec<ScopeEntry<'a>>,
}

impl<'a> Scope<'a> {
    /// Total width of the concatenated row.
    pub fn width(&self) -> usize {
        self.entries
            .last()
            .map(|e| e.offset + e.columns.len())
            .unwrap_or(0)
    }

    /// Resolves a column reference to an offset into the concatenated row.
    pub fn resolve(&self, col: &ColumnRef) -> Result<Option<usize>, DbError> {
        match &col.table {
            Some(t) => {
                for e in &self.entries {
                    if &e.binding == t {
                        if let Some(i) = e.columns.iter().position(|c| c.name == col.column) {
                            return Ok(Some(e.offset + i));
                        }
                        // The binding exists but lacks the column; in a
                        // correlated subquery the same alias may also exist in
                        // an outer scope, so report "not here" rather than
                        // erroring immediately.
                        return Ok(None);
                    }
                }
                Ok(None)
            }
            None => {
                let mut found = None;
                for e in &self.entries {
                    if let Some(i) = e.columns.iter().position(|c| c.name == col.column) {
                        if found.is_some() {
                            return Err(DbError::AmbiguousColumn(col.column.clone()));
                        }
                        found = Some(e.offset + i);
                    }
                }
                Ok(found)
            }
        }
    }
}

/// Evaluation context: a scope, the current concatenated row, and an optional
/// outer context for correlated subqueries.
pub struct EvalCtx<'a> {
    /// The database (needed to run subqueries).
    pub db: &'a Database,
    /// The scope of the current query.
    pub scope: &'a Scope<'a>,
    /// The current concatenated row.
    pub row: &'a [Value],
    /// Enclosing context, if this is a subquery.
    pub outer: Option<&'a EvalCtx<'a>>,
}

impl<'a> EvalCtx<'a> {
    fn resolve_column(&self, col: &ColumnRef) -> Result<Value, DbError> {
        match self.scope.resolve(col)? {
            Some(off) => Ok(self.row[off].clone()),
            None => match self.outer {
                Some(outer) => outer.resolve_column(col),
                None => Err(DbError::NoSuchColumn(match &col.table {
                    Some(t) => format!("{t}.{}", col.column),
                    None => col.column.clone(),
                })),
            },
        }
    }

    /// Evaluates a scalar expression to a value.
    pub fn eval(&self, expr: &Expr) -> Result<Value, DbError> {
        match expr {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(p) => Err(DbError::UnboundParameter(match p {
                Param::Named(n) => format!("?{n}"),
                Param::Positional(i) => format!("?#{i}"),
            })),
            Expr::Column(c) => self.resolve_column(c),
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?;
                match op {
                    UnaryOp::Not => Ok(cmp_to_value(value_to_cmp(&v)?.not())),
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => {
                            Ok(Value::Int(i.checked_neg().ok_or_else(|| {
                                DbError::Eval("negation overflow".into())
                            })?))
                        }
                        other => Err(DbError::Eval(format!("cannot negate {other:?}"))),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let needle = self.eval(expr)?;
                let mut saw_unknown = false;
                for item in list {
                    let v = self.eval(item)?;
                    match needle.sql_eq(&v) {
                        CmpResult::True => {
                            return Ok(cmp_to_value(CmpResult::from_bool(!*negated)));
                        }
                        CmpResult::Unknown => saw_unknown = true,
                        CmpResult::False => {}
                    }
                }
                if saw_unknown {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let needle = self.eval(expr)?;
                let rows = self.run_subquery(query)?;
                let mut saw_unknown = false;
                for row in &rows {
                    if row.len() != 1 {
                        return Err(DbError::Unsupported(
                            "IN subquery must project exactly one column".into(),
                        ));
                    }
                    match needle.sql_eq(&row[0]) {
                        CmpResult::True => {
                            return Ok(cmp_to_value(CmpResult::from_bool(!*negated)));
                        }
                        CmpResult::Unknown => saw_unknown = true,
                        CmpResult::False => {}
                    }
                }
                if saw_unknown {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::Exists { query, negated } => {
                let rows = self.run_subquery(query)?;
                Ok(Value::Bool(rows.is_empty() == *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr)?;
                let lo = self.eval(low)?;
                let hi = self.eval(high)?;
                let ge_lo = match v.sql_cmp(&lo) {
                    None => CmpResult::Unknown,
                    Some(o) => CmpResult::from_bool(o != std::cmp::Ordering::Less),
                };
                let le_hi = match v.sql_cmp(&hi) {
                    None => CmpResult::Unknown,
                    Some(o) => CmpResult::from_bool(o != std::cmp::Ordering::Greater),
                };
                let mut r = ge_lo.and(le_hi);
                if *negated {
                    r = r.not();
                }
                Ok(cmp_to_value(r))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr)?;
                let p = self.eval(pattern)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(pat)) => {
                        Ok(Value::Bool(like_match(&s, &pat) != *negated))
                    }
                    (v, p) => Err(DbError::Eval(format!("LIKE on non-strings: {v:?}, {p:?}"))),
                }
            }
            Expr::Agg { .. } => Err(DbError::Unsupported(
                "aggregate function outside of SELECT list / HAVING".into(),
            )),
        }
    }

    fn eval_binary(&self, op: BinaryOp, lhs: &Expr, rhs: &Expr) -> Result<Value, DbError> {
        match op {
            BinaryOp::And => {
                let l = value_to_cmp(&self.eval(lhs)?)?;
                // Short-circuit: FALSE AND x is FALSE without evaluating x.
                if l == CmpResult::False {
                    return Ok(Value::Bool(false));
                }
                let r = value_to_cmp(&self.eval(rhs)?)?;
                Ok(cmp_to_value(l.and(r)))
            }
            BinaryOp::Or => {
                let l = value_to_cmp(&self.eval(lhs)?)?;
                if l == CmpResult::True {
                    return Ok(Value::Bool(true));
                }
                let r = value_to_cmp(&self.eval(rhs)?)?;
                Ok(cmp_to_value(l.or(r)))
            }
            BinaryOp::Eq
            | BinaryOp::Ne
            | BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                let out = match l.sql_cmp(&r) {
                    None => CmpResult::Unknown,
                    Some(ord) => {
                        use std::cmp::Ordering::*;
                        CmpResult::from_bool(match op {
                            BinaryOp::Eq => ord == Equal,
                            BinaryOp::Ne => ord != Equal,
                            BinaryOp::Lt => ord == Less,
                            BinaryOp::Le => ord != Greater,
                            BinaryOp::Gt => ord == Greater,
                            BinaryOp::Ge => ord != Less,
                            _ => unreachable!(),
                        })
                    }
                };
                Ok(cmp_to_value(out))
            }
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                match (l, r) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Int(a), Value::Int(b)) => {
                        let out = match op {
                            BinaryOp::Add => a.checked_add(b),
                            BinaryOp::Sub => a.checked_sub(b),
                            BinaryOp::Mul => a.checked_mul(b),
                            BinaryOp::Div => {
                                if b == 0 {
                                    return Err(DbError::Eval("division by zero".into()));
                                }
                                a.checked_div(b)
                            }
                            _ => unreachable!(),
                        };
                        out.map(Value::Int)
                            .ok_or_else(|| DbError::Eval("integer overflow".into()))
                    }
                    (a, b) => Err(DbError::Eval(format!(
                        "arithmetic on non-integers: {a:?} {} {b:?}",
                        op.symbol()
                    ))),
                }
            }
        }
    }

    fn run_subquery(&self, q: &Query) -> Result<Vec<Vec<Value>>, DbError> {
        crate::exec::execute_query_with_outer(self.db, q, Some(self)).map(|r| r.rows)
    }
}

/// Interprets a value as a predicate result.
pub fn value_to_cmp(v: &Value) -> Result<CmpResult, DbError> {
    match v {
        Value::Bool(true) => Ok(CmpResult::True),
        Value::Bool(false) => Ok(CmpResult::False),
        Value::Null => Ok(CmpResult::Unknown),
        other => Err(DbError::Eval(format!(
            "expected boolean predicate, found {other:?}"
        ))),
    }
}

/// Converts a predicate result back to a value (`Unknown` becomes `NULL`).
pub fn cmp_to_value(c: CmpResult) -> Value {
    match c {
        CmpResult::True => Value::Bool(true),
        CmpResult::False => Value::Bool(false),
        CmpResult::Unknown => Value::Null,
    }
}
