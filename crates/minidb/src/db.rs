//! The database: catalog, DDL, and constraint-checked DML.

use std::collections::BTreeMap;

use sqlir::{parse_statement, CreateTable, Delete, Expr, Insert, Statement, Update, Value};

use crate::error::DbError;
use crate::exec::{execute_query, Rows};
use crate::expr::{value_to_cmp, EvalCtx, Scope, ScopeEntry};
use crate::schema::TableSchema;
use crate::table::Table;

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// Rows from a `SELECT`.
    Rows(Rows),
    /// Row count affected by DML.
    Affected(usize),
    /// A DDL statement completed.
    Created,
}

impl ExecResult {
    /// The rows of a `SELECT` result.
    pub fn rows(self) -> Option<Rows> {
        match self {
            ExecResult::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// An in-memory relational database.
///
/// `Database` is `Clone`: snapshotting the whole database is how the
/// diagnosis and active-learning components explore hypothetical states.
///
/// # Examples
///
/// ```
/// use minidb::Database;
///
/// let mut db = Database::new();
/// db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)").unwrap();
/// db.execute_sql("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')").unwrap();
/// let rows = db.query_sql("SELECT name FROM t ORDER BY id DESC").unwrap();
/// assert_eq!(rows.rows.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Returns table names in sorted order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Returns `true` if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Parses and executes one statement of SQL text.
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecResult, DbError> {
        let stmt = parse_statement(sql)?;
        self.execute(&stmt)
    }

    /// Parses and runs a `SELECT`, returning its rows.
    pub fn query_sql(&self, sql: &str) -> Result<Rows, DbError> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(q) => execute_query(self, &q),
            _ => Err(DbError::Unsupported("query_sql expects a SELECT".into())),
        }
    }

    /// Executes a parsed statement.
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecResult, DbError> {
        match stmt {
            Statement::Select(q) => Ok(ExecResult::Rows(execute_query(self, q)?)),
            Statement::Insert(ins) => self.insert(ins).map(ExecResult::Affected),
            Statement::Update(u) => self.update(u).map(ExecResult::Affected),
            Statement::Delete(d) => self.delete(d).map(ExecResult::Affected),
            Statement::CreateTable(ct) => {
                self.create_table(ct)?;
                Ok(ExecResult::Created)
            }
        }
    }

    /// Runs a parsed `SELECT`.
    pub fn query(&self, q: &sqlir::Query) -> Result<Rows, DbError> {
        execute_query(self, q)
    }

    /// Creates a table from a parsed definition.
    pub fn create_table(&mut self, ct: &CreateTable) -> Result<(), DbError> {
        if self.tables.contains_key(&ct.name) {
            return Err(DbError::TableExists(ct.name.clone()));
        }
        let schema = TableSchema::from_create(ct)?;
        // Validate FK targets eagerly so later inserts can't hit a missing
        // table mid-check.
        for fk in &schema.foreign_keys {
            let target = self.table(&fk.ref_table)?;
            let ref_cols = self.fk_ref_indices(&target.schema, &fk.ref_columns)?;
            if ref_cols.len() != fk.columns.len() {
                return Err(DbError::BadSchema(format!(
                    "foreign key arity mismatch: {} vs {}",
                    fk.columns.len(),
                    ref_cols.len()
                )));
            }
        }
        self.tables.insert(ct.name.clone(), Table::new(schema));
        Ok(())
    }

    fn fk_ref_indices(
        &self,
        target: &TableSchema,
        ref_columns: &[String],
    ) -> Result<Vec<usize>, DbError> {
        if ref_columns.is_empty() {
            if target.primary_key.is_empty() {
                return Err(DbError::BadSchema(format!(
                    "foreign key references {} which has no primary key",
                    target.name
                )));
            }
            Ok(target.primary_key.clone())
        } else {
            target.resolve_columns(ref_columns)
        }
    }

    /// Inserts literal rows directly (bypassing SQL), with constraint checks.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, DbError> {
        let n = rows.len();
        for row in rows {
            self.insert_one(table, row)?;
        }
        Ok(n)
    }

    fn insert(&mut self, ins: &Insert) -> Result<usize, DbError> {
        let table = self.table(&ins.table)?;
        let schema = table.schema.clone();

        // Map the statement's column list onto schema order.
        let positions: Vec<usize> = if ins.columns.is_empty() {
            (0..schema.columns.len()).collect()
        } else {
            schema.resolve_columns(&ins.columns)?
        };

        let mut count = 0;
        for row_exprs in &ins.rows {
            if row_exprs.len() != positions.len() {
                return Err(DbError::ArityMismatch {
                    table: ins.table.clone(),
                    expected: positions.len(),
                    found: row_exprs.len(),
                });
            }
            let mut row = vec![Value::Null; schema.columns.len()];
            for (pos, e) in positions.iter().zip(row_exprs) {
                row[*pos] = self.eval_standalone(e)?;
            }
            self.insert_one(&ins.table, row)?;
            count += 1;
        }
        Ok(count)
    }

    fn insert_one(&mut self, table_name: &str, row: Vec<Value>) -> Result<(), DbError> {
        let table = self.table(table_name)?;
        table.check_row_shape(&row)?;
        let schema = table.schema.clone();

        // PK / UNIQUE.
        if !schema.primary_key.is_empty() {
            // Primary-key columns are NOT NULL, so `NULL never collides`
            // does not weaken the check here.
            if table.has_duplicate_on(&schema.primary_key, &row, None) {
                return Err(DbError::UniqueViolation {
                    table: schema.name.clone(),
                    columns: schema
                        .primary_key
                        .iter()
                        .map(|&i| schema.columns[i].name.clone())
                        .collect(),
                });
            }
        }
        for uniq in &schema.uniques {
            if table.has_duplicate_on(uniq, &row, None) {
                return Err(DbError::UniqueViolation {
                    table: schema.name.clone(),
                    columns: uniq
                        .iter()
                        .map(|&i| schema.columns[i].name.clone())
                        .collect(),
                });
            }
        }

        // Foreign keys.
        for fk in &schema.foreign_keys {
            if fk.columns.iter().any(|&c| row[c].is_null()) {
                continue; // NULL FKs are vacuously satisfied.
            }
            let target = self.table(&fk.ref_table)?;
            let ref_idx = self.fk_ref_indices(&target.schema, &fk.ref_columns)?;
            let values: Vec<Value> = fk.columns.iter().map(|&c| row[c].clone()).collect();
            if !target.contains_on(&ref_idx, &values) {
                return Err(DbError::ForeignKeyViolation {
                    table: schema.name.clone(),
                    ref_table: fk.ref_table.clone(),
                });
            }
        }

        self.tables
            .get_mut(table_name)
            .expect("existence checked above")
            .push_row(row);
        Ok(())
    }

    fn update(&mut self, u: &Update) -> Result<usize, DbError> {
        let table = self.table(&u.table)?;
        let schema = table.schema.clone();
        let assignments: Vec<(usize, &Expr)> = u
            .assignments
            .iter()
            .map(|a| {
                schema
                    .column_index(&a.column)
                    .map(|i| (i, &a.value))
                    .ok_or_else(|| DbError::NoSuchColumn(format!("{}.{}", u.table, a.column)))
            })
            .collect::<Result<_, _>>()?;

        // Compute the new row set first, then validate it wholesale. This
        // keeps multi-row updates atomic: either all rows change or none do.
        let matching = self.matching_row_indices(&u.table, &u.where_clause)?;
        let mut new_rows: Vec<(usize, Vec<Value>)> = Vec::with_capacity(matching.len());
        {
            let table = self.table(&u.table)?;
            for &idx in &matching {
                let old = &table.rows_slice()[idx];
                let scope = Scope {
                    entries: vec![ScopeEntry {
                        binding: u.table.clone(),
                        columns: &schema.columns,
                        offset: 0,
                    }],
                };
                let ctx = EvalCtx {
                    db: self,
                    scope: &scope,
                    row: old,
                    outer: None,
                };
                let mut new = old.clone();
                for (col, e) in &assignments {
                    new[*col] = ctx.eval(e)?;
                }
                table.check_row_shape(&new)?;
                new_rows.push((idx, new));
            }
        }

        // Validate uniqueness against the post-update state.
        let mut future = self.table(&u.table)?.rows_slice().to_vec();
        for (idx, new) in &new_rows {
            future[*idx] = new.clone();
        }
        let key_sets: Vec<Vec<usize>> = std::iter::once(schema.primary_key.clone())
            .filter(|k| !k.is_empty())
            .chain(schema.uniques.iter().cloned())
            .collect();
        for keys in &key_sets {
            for (i, a) in future.iter().enumerate() {
                if keys.iter().any(|&c| a[c].is_null()) {
                    continue;
                }
                for b in future.iter().skip(i + 1) {
                    if keys.iter().all(|&c| a[c] == b[c]) {
                        return Err(DbError::UniqueViolation {
                            table: schema.name.clone(),
                            columns: keys
                                .iter()
                                .map(|&c| schema.columns[c].name.clone())
                                .collect(),
                        });
                    }
                }
            }
        }

        // FK checks on the new values.
        for fk in &schema.foreign_keys {
            let target = self.table(&fk.ref_table)?;
            let ref_idx = self.fk_ref_indices(&target.schema, &fk.ref_columns)?;
            for (_, new) in &new_rows {
                if fk.columns.iter().any(|&c| new[c].is_null()) {
                    continue;
                }
                let values: Vec<Value> = fk.columns.iter().map(|&c| new[c].clone()).collect();
                if !target.contains_on(&ref_idx, &values) {
                    return Err(DbError::ForeignKeyViolation {
                        table: schema.name.clone(),
                        ref_table: fk.ref_table.clone(),
                    });
                }
            }
        }

        // Referential integrity for tables referencing this one: the old key
        // values being changed must not be referenced elsewhere.
        self.check_not_referenced(&u.table, &matching, Some(&new_rows))?;

        let count = new_rows.len();
        let table = self.tables.get_mut(&u.table).expect("checked");
        for (idx, new) in new_rows {
            *table.row_mut(idx) = new;
        }
        Ok(count)
    }

    fn delete(&mut self, d: &Delete) -> Result<usize, DbError> {
        let matching = self.matching_row_indices(&d.table, &d.where_clause)?;
        self.check_not_referenced(&d.table, &matching, None)?;
        let count = matching.len();
        self.tables
            .get_mut(&d.table)
            .expect("checked by matching_row_indices")
            .remove_rows(matching);
        Ok(count)
    }

    /// Restrict-mode referential check: rows being removed (or whose key is
    /// being changed) must not be referenced by any foreign key.
    fn check_not_referenced(
        &self,
        table_name: &str,
        row_indices: &[usize],
        replacements: Option<&[(usize, Vec<Value>)]>,
    ) -> Result<(), DbError> {
        let target = self.table(table_name)?;
        for (other_name, other) in &self.tables {
            for fk in &other.schema.foreign_keys {
                if fk.ref_table != table_name {
                    continue;
                }
                let ref_idx = self.fk_ref_indices(&target.schema, &fk.ref_columns)?;
                for &ri in row_indices {
                    let old_row = &target.rows_slice()[ri];
                    let old_key: Vec<Value> = ref_idx.iter().map(|&c| old_row[c].clone()).collect();
                    if let Some(reps) = replacements {
                        // Updates only violate if the key actually changes.
                        if let Some((_, new_row)) = reps.iter().find(|(i, _)| *i == ri) {
                            let new_key: Vec<Value> =
                                ref_idx.iter().map(|&c| new_row[c].clone()).collect();
                            if new_key == old_key {
                                continue;
                            }
                        }
                    }
                    if other.contains_on(&fk.columns, &old_key) {
                        return Err(DbError::ForeignKeyViolation {
                            table: other_name.clone(),
                            ref_table: table_name.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn matching_row_indices(
        &self,
        table_name: &str,
        where_clause: &Option<Expr>,
    ) -> Result<Vec<usize>, DbError> {
        let table = self.table(table_name)?;
        let scope = Scope {
            entries: vec![ScopeEntry {
                binding: table_name.to_string(),
                columns: &table.schema.columns,
                offset: 0,
            }],
        };
        let mut out = Vec::new();
        for (i, row) in table.rows_slice().iter().enumerate() {
            let keep = match where_clause {
                None => true,
                Some(w) => {
                    let ctx = EvalCtx {
                        db: self,
                        scope: &scope,
                        row,
                        outer: None,
                    };
                    value_to_cmp(&ctx.eval(w)?)?.is_true()
                }
            };
            if keep {
                out.push(i);
            }
        }
        Ok(out)
    }

    /// Evaluates an expression with no row context (literals and arithmetic).
    fn eval_standalone(&self, e: &Expr) -> Result<Value, DbError> {
        let scope = Scope::default();
        let ctx = EvalCtx {
            db: self,
            scope: &scope,
            row: &[],
            outer: None,
        };
        ctx.eval(e)
    }

    /// Total row count across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Direct mutable access to a table's rows, bypassing constraints.
    ///
    /// Used by diagnosis/counterexample search, which explores hypothetical
    /// databases and re-validates separately.
    pub fn table_mut_unchecked(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calendar_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)")
            .unwrap();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT NOT NULL, Kind TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Attendance (UId INT NOT NULL, EId INT NOT NULL, Notes TEXT, \
             PRIMARY KEY (UId, EId), \
             FOREIGN KEY (UId) REFERENCES Users (UId), \
             FOREIGN KEY (EId) REFERENCES Events (EId))",
        )
        .unwrap();
        db.execute_sql("INSERT INTO Users (UId, Name) VALUES (1, 'ann'), (2, 'bob')")
            .unwrap();
        db.execute_sql(
            "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), \
             (3, 'party', 'fun')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'bring cake')",
        )
        .unwrap();
        db
    }

    #[test]
    fn example_2_1_queries_run() {
        let db = calendar_db();
        // Q1: does user 1 attend event 2?
        let q1 = db
            .query_sql("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2")
            .unwrap();
        assert_eq!(q1.len(), 1);
        // Q2: fetch event 2's details.
        let q2 = db.query_sql("SELECT * FROM Events WHERE EId = 2").unwrap();
        assert_eq!(q2.columns, vec!["EId", "Title", "Kind"]);
        assert_eq!(q2.rows[0][1], Value::str("standup"));
    }

    #[test]
    fn join_with_alias() {
        let db = calendar_db();
        let rows = db
            .query_sql(
                "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = 1",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("standup")]]);
    }

    #[test]
    fn pk_violation_rejected() {
        let mut db = calendar_db();
        let err = db
            .execute_sql("INSERT INTO Users (UId, Name) VALUES (1, 'dup')")
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
    }

    #[test]
    fn fk_violation_rejected() {
        let mut db = calendar_db();
        let err = db
            .execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (9, 2, NULL)")
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn delete_restricted_by_fk() {
        let mut db = calendar_db();
        let err = db
            .execute_sql("DELETE FROM Users WHERE UId = 1")
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
        // Deleting the attendance first unblocks the user delete.
        db.execute_sql("DELETE FROM Attendance WHERE UId = 1")
            .unwrap();
        assert_eq!(
            db.execute_sql("DELETE FROM Users WHERE UId = 1").unwrap(),
            ExecResult::Affected(1)
        );
    }

    #[test]
    fn update_applies_and_validates() {
        let mut db = calendar_db();
        let n = db
            .execute_sql("UPDATE Events SET Title = 'sprint' WHERE EId = 2")
            .unwrap();
        assert_eq!(n, ExecResult::Affected(1));
        let rows = db
            .query_sql("SELECT Title FROM Events WHERE EId = 2")
            .unwrap();
        assert_eq!(rows.rows[0][0], Value::str("sprint"));

        // Updating a referenced key is restricted.
        let err = db
            .execute_sql("UPDATE Events SET EId = 99 WHERE EId = 2")
            .unwrap_err();
        assert!(matches!(err, DbError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn update_unique_conflict_is_atomic() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        db.execute_sql("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
            .unwrap();
        // Setting both ids to 5 must fail and change nothing.
        let err = db.execute_sql("UPDATE t SET id = 5").unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        let rows = db.query_sql("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn aggregates_group_having() {
        let db = calendar_db();
        let rows = db
            .query_sql("SELECT Kind, COUNT(*) AS n FROM Events GROUP BY Kind ORDER BY Kind")
            .unwrap();
        assert_eq!(
            rows.rows,
            vec![
                vec![Value::str("fun"), Value::Int(1)],
                vec![Value::str("work"), Value::Int(1)],
            ]
        );
        let rows = db
            .query_sql("SELECT COUNT(*) FROM Events WHERE Kind = 'nope'")
            .unwrap();
        assert_eq!(rows.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn sum_min_max_avg() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE n (x INT)").unwrap();
        db.execute_sql("INSERT INTO n (x) VALUES (1), (2), (3), (NULL)")
            .unwrap();
        let rows = db
            .query_sql("SELECT SUM(x), MIN(x), MAX(x), AVG(x), COUNT(x), COUNT(*) FROM n")
            .unwrap();
        assert_eq!(
            rows.rows[0],
            vec![
                Value::Int(6),
                Value::Int(1),
                Value::Int(3),
                Value::Int(2),
                Value::Int(3),
                Value::Int(4),
            ]
        );
    }

    #[test]
    fn distinct_and_limit() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (x INT)").unwrap();
        db.execute_sql("INSERT INTO t (x) VALUES (1), (1), (2), (2), (3)")
            .unwrap();
        let rows = db
            .query_sql("SELECT DISTINCT x FROM t ORDER BY x LIMIT 2")
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn correlated_exists_subquery() {
        let db = calendar_db();
        let rows = db
            .query_sql(
                "SELECT u.Name FROM Users u WHERE EXISTS \
                 (SELECT 1 FROM Attendance a WHERE a.UId = u.UId AND a.EId = 3)",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("bob")]]);
    }

    #[test]
    fn in_subquery() {
        let db = calendar_db();
        let rows = db
            .query_sql(
                "SELECT Title FROM Events WHERE EId IN \
                 (SELECT EId FROM Attendance WHERE UId = 2) ORDER BY Title",
            )
            .unwrap();
        assert_eq!(rows.rows, vec![vec![Value::str("party")]]);
    }

    #[test]
    fn null_semantics_in_where() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (x INT)").unwrap();
        db.execute_sql("INSERT INTO t (x) VALUES (1), (NULL)")
            .unwrap();
        // NULL = NULL is unknown, so only x = 1 matches x = x? No: x = x is
        // unknown for NULL rows, true otherwise.
        assert_eq!(
            db.query_sql("SELECT x FROM t WHERE x = x").unwrap().len(),
            1
        );
        assert_eq!(
            db.query_sql("SELECT x FROM t WHERE x IS NULL")
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.query_sql("SELECT x FROM t WHERE x <> 1 OR x = 1")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn not_in_with_null_list_is_empty() {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE t (x INT)").unwrap();
        db.execute_sql("INSERT INTO t (x) VALUES (1), (2)").unwrap();
        // x NOT IN (2, NULL) is never TRUE (unknown for 1, false for 2).
        assert_eq!(
            db.query_sql("SELECT x FROM t WHERE x NOT IN (2, NULL)")
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn ambiguous_column_is_an_error() {
        let db = calendar_db();
        let err = db
            .query_sql("SELECT UId FROM Users u JOIN Attendance a ON u.UId = a.UId")
            .unwrap_err();
        assert!(matches!(err, DbError::AmbiguousColumn(_)));
    }

    #[test]
    fn cross_product_from_list() {
        let db = calendar_db();
        let rows = db.query_sql("SELECT COUNT(*) FROM Users, Events").unwrap();
        assert_eq!(rows.scalar(), Some(&Value::Int(4)));
    }

    #[test]
    fn select_without_from() {
        let db = Database::new();
        let rows = db.query_sql("SELECT 1 + 2").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn order_by_alias_and_desc() {
        let db = calendar_db();
        let rows = db
            .query_sql("SELECT Title AS t FROM Events ORDER BY t DESC")
            .unwrap();
        assert_eq!(
            rows.rows,
            vec![vec![Value::str("standup")], vec![Value::str("party")]]
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let db = Database::new();
        assert!(matches!(
            db.query_sql("SELECT 1 / 0"),
            Err(DbError::Eval(_))
        ));
    }

    #[test]
    fn snapshot_semantics_via_clone() {
        let mut db = calendar_db();
        let snapshot = db.clone();
        db.execute_sql("DELETE FROM Attendance WHERE UId = 2")
            .unwrap();
        assert_eq!(db.table("Attendance").unwrap().len(), 1);
        assert_eq!(snapshot.table("Attendance").unwrap().len(), 2);
    }
}
