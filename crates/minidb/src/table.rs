//! Row storage for one table.

use sqlir::Value;

use crate::error::DbError;
use crate::schema::TableSchema;

/// A stored table: schema plus rows.
///
/// Rows are kept in insertion order; `minidb` has no clustered indexes (scans
/// are fine at the workload sizes this workspace targets), but PK/UNIQUE
/// lookups short-circuit on the constrained columns.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.rows.iter()
    }

    /// Read-only access to the row vector.
    pub fn rows_slice(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Type- and NULL-checks a row against the schema (no constraint checks).
    pub fn check_row_shape(&self, row: &[Value]) -> Result<(), DbError> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.columns.len(),
                found: row.len(),
            });
        }
        for (col, v) in self.schema.columns.iter().zip(row) {
            match v.sql_type() {
                None => {
                    if col.not_null {
                        return Err(DbError::NullViolation(format!(
                            "{}.{}",
                            self.schema.name, col.name
                        )));
                    }
                }
                Some(t) if t != col.ty => {
                    return Err(DbError::TypeMismatch {
                        column: format!("{}.{}", self.schema.name, col.name),
                        expected: col.ty.name().to_string(),
                        found: format!("{v:?}"),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Returns `true` if some row matches `candidate` on the given columns.
    ///
    /// Per SQL semantics, `NULL` never collides: a candidate with a `NULL` in
    /// any key column matches nothing.
    pub fn has_duplicate_on(
        &self,
        cols: &[usize],
        candidate: &[Value],
        skip_row: Option<usize>,
    ) -> bool {
        if cols.iter().any(|&c| candidate[c].is_null()) {
            return false;
        }
        self.rows
            .iter()
            .enumerate()
            .any(|(i, row)| Some(i) != skip_row && cols.iter().all(|&c| row[c] == candidate[c]))
    }

    /// Returns `true` if some row matches the given values on the given columns.
    pub fn contains_on(&self, cols: &[usize], values: &[Value]) -> bool {
        self.rows
            .iter()
            .any(|row| cols.iter().zip(values).all(|(&c, v)| &row[c] == v))
    }

    /// Appends a shape-checked row (caller is responsible for constraints).
    pub fn push_row(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        self.rows.push(row);
    }

    /// Removes the rows at the given (sorted ascending) indices.
    pub fn remove_rows(&mut self, mut indices: Vec<usize>) {
        indices.sort_unstable();
        for idx in indices.into_iter().rev() {
            self.rows.remove(idx);
        }
    }

    /// Mutable access to one row.
    pub fn row_mut(&mut self, idx: usize) -> &mut Vec<Value> {
        &mut self.rows[idx]
    }

    /// Replaces every row (used by bulk loaders and diagnosis search).
    pub fn set_rows(&mut self, rows: Vec<Vec<Value>>) {
        self.rows = rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use sqlir::SqlType;

    fn two_col_schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                Column {
                    name: "a".into(),
                    ty: SqlType::Int,
                    not_null: true,
                },
                Column {
                    name: "b".into(),
                    ty: SqlType::Text,
                    not_null: false,
                },
            ],
            primary_key: vec![0],
            uniques: vec![],
            foreign_keys: vec![],
        }
    }

    #[test]
    fn shape_checks() {
        let t = Table::new(two_col_schema());
        assert!(t.check_row_shape(&[Value::Int(1), Value::str("x")]).is_ok());
        assert!(t.check_row_shape(&[Value::Int(1), Value::Null]).is_ok());
        assert!(matches!(
            t.check_row_shape(&[Value::Null, Value::Null]),
            Err(DbError::NullViolation(_))
        ));
        assert!(matches!(
            t.check_row_shape(&[Value::str("no"), Value::Null]),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.check_row_shape(&[Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_detection_ignores_null() {
        let mut t = Table::new(two_col_schema());
        t.push_row(vec![Value::Int(1), Value::str("x")]);
        assert!(t.has_duplicate_on(&[0], &[Value::Int(1), Value::Null], None));
        assert!(!t.has_duplicate_on(&[0], &[Value::Int(2), Value::Null], None));
        assert!(!t.has_duplicate_on(&[1], &[Value::Int(9), Value::Null], None));
    }

    #[test]
    fn remove_rows_descending_safe() {
        let mut t = Table::new(two_col_schema());
        for i in 0..5 {
            t.push_row(vec![Value::Int(i), Value::Null]);
        }
        t.remove_rows(vec![0, 2, 4]);
        let left: Vec<i64> = t.rows().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(left, vec![1, 3]);
    }
}
