//! Row storage for one table.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use sqlir::Value;

use crate::error::DbError;
use crate::schema::TableSchema;

/// A lazily built equality index over one column set: maps each non-NULL
/// key tuple to the indices of the rows holding it, in insertion order.
///
/// Rows with a `NULL` in any key column are *excluded*: SQL `=` never
/// matches `NULL`, so an equality probe can never select them, and their
/// absence makes `NULL` probe keys miss for free.
#[derive(Debug, Default, Clone)]
pub struct EqIndex {
    groups: HashMap<Vec<Value>, Vec<u32>>,
}

impl EqIndex {
    fn build(cols: &[usize], rows: &[Vec<Value>]) -> EqIndex {
        let mut groups: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            if cols.iter().any(|&c| row[c].is_null()) {
                continue;
            }
            let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
            groups.entry(key).or_default().push(i as u32);
        }
        EqIndex { groups }
    }

    fn append(&mut self, cols: &[usize], row: &[Value], idx: u32) {
        if cols.iter().any(|&c| row[c].is_null()) {
            return;
        }
        let key: Vec<Value> = cols.iter().map(|&c| row[c].clone()).collect();
        self.groups.entry(key).or_default().push(idx);
    }

    /// The indices of the rows whose key columns equal `key`, in insertion
    /// order. A key containing `NULL` matches nothing.
    pub fn rows_matching(&self, key: &[Value]) -> &[u32] {
        self.groups.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// A stored table: schema plus rows.
///
/// Rows are kept in insertion order; `minidb` has no clustered storage, but
/// equality lookups (PK/UNIQUE/FK checks, `col = literal` selections, and
/// hash joins) go through lazily built [`EqIndex`]es so bulk loads and
/// point queries stay linear at fleet scale. Indexes are built on first
/// use, kept current incrementally on [`Table::push_row`], and dropped on
/// any other mutation.
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Vec<Value>>,
    indexes: RwLock<HashMap<Vec<usize>, Arc<EqIndex>>>,
}

impl Clone for Table {
    fn clone(&self) -> Table {
        // Indexes are a cache: a clone starts cold and rebuilds on demand.
        Table {
            schema: self.schema.clone(),
            rows: self.rows.clone(),
            indexes: RwLock::new(HashMap::new()),
        }
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// The equality index over `cols`, building it on first use.
    pub fn index_on(&self, cols: &[usize]) -> Arc<EqIndex> {
        if let Some(idx) = self.indexes.read().expect("index lock").get(cols) {
            return Arc::clone(idx);
        }
        let built = Arc::new(EqIndex::build(cols, &self.rows));
        let mut cache = self.indexes.write().expect("index lock");
        Arc::clone(cache.entry(cols.to_vec()).or_insert(built))
    }

    /// Drops every cached index (any mutation other than an append).
    fn invalidate_indexes(&mut self) {
        self.indexes.get_mut().expect("index lock").clear();
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.rows.iter()
    }

    /// Read-only access to the row vector.
    pub fn rows_slice(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Type- and NULL-checks a row against the schema (no constraint checks).
    pub fn check_row_shape(&self, row: &[Value]) -> Result<(), DbError> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.columns.len(),
                found: row.len(),
            });
        }
        for (col, v) in self.schema.columns.iter().zip(row) {
            match v.sql_type() {
                None => {
                    if col.not_null {
                        return Err(DbError::NullViolation(format!(
                            "{}.{}",
                            self.schema.name, col.name
                        )));
                    }
                }
                Some(t) if t != col.ty => {
                    return Err(DbError::TypeMismatch {
                        column: format!("{}.{}", self.schema.name, col.name),
                        expected: col.ty.name().to_string(),
                        found: format!("{v:?}"),
                    });
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Returns `true` if some row matches `candidate` on the given columns.
    ///
    /// Per SQL semantics, `NULL` never collides: a candidate with a `NULL` in
    /// any key column matches nothing.
    pub fn has_duplicate_on(
        &self,
        cols: &[usize],
        candidate: &[Value],
        skip_row: Option<usize>,
    ) -> bool {
        if cols.iter().any(|&c| candidate[c].is_null()) {
            return false;
        }
        let key: Vec<Value> = cols.iter().map(|&c| candidate[c].clone()).collect();
        self.index_on(cols)
            .rows_matching(&key)
            .iter()
            .any(|&i| Some(i as usize) != skip_row)
    }

    /// Returns `true` if some row matches the given values on the given columns.
    ///
    /// Matching is structural (like the rest of `minidb`'s row comparisons):
    /// a `NULL` in `values` matches a stored `NULL`, so the `NULL`-excluding
    /// index only serves the all-non-`NULL` case and the rest falls back to
    /// a scan.
    pub fn contains_on(&self, cols: &[usize], values: &[Value]) -> bool {
        if values.iter().all(|v| !v.is_null()) {
            return !self.index_on(cols).rows_matching(values).is_empty();
        }
        self.rows
            .iter()
            .any(|row| cols.iter().zip(values).all(|(&c, v)| &row[c] == v))
    }

    /// Appends a shape-checked row (caller is responsible for constraints).
    /// Already built indexes are kept current, so bulk loads that check
    /// constraints per row stay linear.
    pub fn push_row(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.schema.columns.len());
        let idx = self.rows.len() as u32;
        for (cols, index) in self.indexes.get_mut().expect("index lock").iter_mut() {
            Arc::make_mut(index).append(cols, &row, idx);
        }
        self.rows.push(row);
    }

    /// Removes the rows at the given (sorted ascending) indices.
    pub fn remove_rows(&mut self, mut indices: Vec<usize>) {
        self.invalidate_indexes();
        indices.sort_unstable();
        for idx in indices.into_iter().rev() {
            self.rows.remove(idx);
        }
    }

    /// Mutable access to one row.
    pub fn row_mut(&mut self, idx: usize) -> &mut Vec<Value> {
        self.invalidate_indexes();
        &mut self.rows[idx]
    }

    /// Replaces every row (used by bulk loaders and diagnosis search).
    pub fn set_rows(&mut self, rows: Vec<Vec<Value>>) {
        self.invalidate_indexes();
        self.rows = rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use sqlir::SqlType;

    fn two_col_schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                Column {
                    name: "a".into(),
                    ty: SqlType::Int,
                    not_null: true,
                },
                Column {
                    name: "b".into(),
                    ty: SqlType::Text,
                    not_null: false,
                },
            ],
            primary_key: vec![0],
            uniques: vec![],
            foreign_keys: vec![],
        }
    }

    #[test]
    fn shape_checks() {
        let t = Table::new(two_col_schema());
        assert!(t.check_row_shape(&[Value::Int(1), Value::str("x")]).is_ok());
        assert!(t.check_row_shape(&[Value::Int(1), Value::Null]).is_ok());
        assert!(matches!(
            t.check_row_shape(&[Value::Null, Value::Null]),
            Err(DbError::NullViolation(_))
        ));
        assert!(matches!(
            t.check_row_shape(&[Value::str("no"), Value::Null]),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            t.check_row_shape(&[Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_detection_ignores_null() {
        let mut t = Table::new(two_col_schema());
        t.push_row(vec![Value::Int(1), Value::str("x")]);
        assert!(t.has_duplicate_on(&[0], &[Value::Int(1), Value::Null], None));
        assert!(!t.has_duplicate_on(&[0], &[Value::Int(2), Value::Null], None));
        assert!(!t.has_duplicate_on(&[1], &[Value::Int(9), Value::Null], None));
    }

    #[test]
    fn remove_rows_descending_safe() {
        let mut t = Table::new(two_col_schema());
        for i in 0..5 {
            t.push_row(vec![Value::Int(i), Value::Null]);
        }
        t.remove_rows(vec![0, 2, 4]);
        let left: Vec<i64> = t.rows().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(left, vec![1, 3]);
    }
}
