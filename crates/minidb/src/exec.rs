//! Query execution: joins, filtering, grouping, projection, ordering.

use sqlir::{
    BinaryOp, CmpResult, Distinctness, Expr, Query, SelectItem, SetFunc, SqlType, UnaryOp, Value,
};

use crate::db::Database;
use crate::error::DbError;
use crate::expr::{value_to_cmp, EvalCtx, Scope, ScopeEntry};
use crate::table::Table;

/// Projected output paired with its ORDER BY sort key, one entry per row.
type KeyedRows = Vec<(Vec<Value>, Vec<Value>)>;

/// A query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl Rows {
    /// An empty result with no columns.
    pub fn empty() -> Rows {
        Rows {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The single value of a 1x1 result, if that is the shape.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Index of a named output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// Executes a `SELECT` against the database.
pub fn execute_query(db: &Database, q: &Query) -> Result<Rows, DbError> {
    execute_query_impl(db, q, None, true)
}

/// Executes a `SELECT` with every access-path optimization disabled: plain
/// nested-loop joins and a single whole-expression `WHERE` pass.
///
/// This is the oracle for differential tests of the optimized path (index
/// probes, hash joins, predicate pushdown); results must be identical,
/// including row order.
pub fn execute_query_naive(db: &Database, q: &Query) -> Result<Rows, DbError> {
    execute_query_impl(db, q, None, false)
}

/// Executes a `SELECT`, with an optional outer context for correlated
/// subqueries.
pub(crate) fn execute_query_with_outer(
    db: &Database,
    q: &Query,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Rows, DbError> {
    execute_query_impl(db, q, outer, true)
}

fn execute_query_impl(
    db: &Database,
    q: &Query,
    outer: Option<&EvalCtx<'_>>,
    optimize: bool,
) -> Result<Rows, DbError> {
    // 1. Resolve every source table and build the *full* scope up front.
    //    Pushed-down conjuncts are classified against the full scope so name
    //    resolution — including ambiguity errors — matches what the final
    //    WHERE pass would have seen.
    let mut full_scope = Scope::default();
    let mut tables: Vec<&Table> = Vec::with_capacity(q.from.len() + q.joins.len());
    for tref in &q.from {
        let table = db.table(&tref.table)?;
        push_binding(&mut full_scope, tref.binding(), &table.schema.columns)?;
        tables.push(table);
    }
    for join in &q.joins {
        let table = db.table(&join.table.table)?;
        push_binding(&mut full_scope, join.table.binding(), &table.schema.columns)?;
        tables.push(table);
    }
    let nstages = tables.len();

    // 2. Split the WHERE clause into top-level AND conjuncts and push each
    //    *total* predicate (see `pushable_stage`) down to the earliest stage
    //    that binds all its columns. Fallible or unresolvable conjuncts stay
    //    in the residual WHERE pass, where they behave exactly as before.
    let mut stage_filters: Vec<Vec<&Expr>> = vec![Vec::new(); nstages];
    let mut residual: Vec<&Expr> = Vec::new();
    if let Some(w) = &q.where_clause {
        if optimize && nstages > 0 {
            let mut conjuncts = Vec::new();
            split_and(w, &mut conjuncts);
            for c in conjuncts {
                match pushable_stage(c, &full_scope) {
                    Some(stage) => stage_filters[stage].push(c),
                    None => residual.push(c),
                }
            }
        } else {
            residual.push(w);
        }
    }

    // 3. Enumerate source rows stage by stage (FROM tables, then JOINs).
    //    The scope grows as the naive evaluator's would, so join `ON`
    //    resolution sees only the bindings introduced so far.
    let mut scope = Scope::default();
    let mut source_rows: Vec<Vec<Value>> = vec![Vec::new()];
    for (stage, table) in tables.iter().enumerate() {
        let entry = &full_scope.entries[stage];
        scope.entries.push(entry.clone());
        let join = stage.checked_sub(q.from.len()).map(|j| &q.joins[j]);
        let mut filters = std::mem::take(&mut stage_filters[stage]);

        // Pick an access path. Both index paths skip rows before the join
        // `ON` is evaluated, so they are only safe when the `ON` itself is a
        // total predicate over already-bound columns (it cannot error on a
        // skipped row).
        let on_total = match join {
            None => true,
            Some(j) => pushable_stage(&j.on, &full_scope).is_some_and(|s| s <= stage),
        };
        let mut hash: Option<(usize, usize)> = None;
        let mut probe: Option<(usize, Value)> = None;
        if optimize && on_total {
            if let Some(j) = join {
                hash = hash_join_key(&j.on, entry, &full_scope);
            }
            if hash.is_none() {
                if let Some(pos) = filters
                    .iter()
                    .position(|c| literal_probe(c, entry, &full_scope).is_some())
                {
                    probe = literal_probe(filters.remove(pos), entry, &full_scope);
                }
            }
        }

        // Assembles base+row, applies the join `ON` (full expression, so a
        // hash path re-checks its own equality for free) and this stage's
        // pushed filters, and keeps survivors. Pushed filters never error,
        // so dropping a row here is indistinguishable from dropping it in
        // the final WHERE pass.
        let mut next: Vec<Vec<Value>> = Vec::new();
        let mut consider = |base: &[Value], row: &[Value]| -> Result<(), DbError> {
            let mut r = base.to_vec();
            r.extend(row.iter().cloned());
            let ctx = EvalCtx {
                db,
                scope: &scope,
                row: &r,
                outer,
            };
            if let Some(j) = join {
                if !value_to_cmp(&ctx.eval(&j.on)?)?.is_true() {
                    return Ok(());
                }
            }
            for f in &filters {
                if !value_to_cmp(&ctx.eval(f)?)?.is_true() {
                    return Ok(());
                }
            }
            next.push(r);
            Ok(())
        };

        if let Some((base_off, local)) = hash {
            // Hash equi-join: probe the joined table's equality index with
            // the already-bound side's value. Matching rows come back in
            // insertion order, preserving nested-loop emission order.
            let index = table.index_on(&[local]);
            for base in &source_rows {
                for &ri in index.rows_matching(std::slice::from_ref(&base[base_off])) {
                    consider(base, &table.rows_slice()[ri as usize])?;
                }
            }
        } else if let Some((local, lit)) = &probe {
            // `col = literal` selection: one index lookup serves every base
            // row.
            let index = table.index_on(&[*local]);
            let matches = index.rows_matching(std::slice::from_ref(lit));
            for base in &source_rows {
                for &ri in matches {
                    consider(base, &table.rows_slice()[ri as usize])?;
                }
            }
        } else {
            for base in &source_rows {
                for row in table.rows() {
                    consider(base, row)?;
                }
            }
        }
        source_rows = next;
    }

    if q.from.is_empty() {
        // `SELECT 1` style: a single empty source row, no bindings.
        source_rows = vec![Vec::new()];
    }

    // 4. Residual WHERE pass. Conjuncts are evaluated left to right with
    //    AND's short-circuit on FALSE; an UNKNOWN keeps evaluating (and so
    //    keeps surfacing later errors), matching single-pass evaluation of
    //    the original conjunction.
    let mut filtered = Vec::with_capacity(source_rows.len());
    for r in source_rows {
        let ctx = EvalCtx {
            db,
            scope: &scope,
            row: &r,
            outer,
        };
        let mut keep = true;
        for c in &residual {
            match value_to_cmp(&ctx.eval(c)?)? {
                CmpResult::True => {}
                CmpResult::False => {
                    keep = false;
                    break;
                }
                CmpResult::Unknown => keep = false,
            }
        }
        if keep {
            filtered.push(r);
        }
    }

    // 5. Grouping / projection.
    let grouped = q.has_aggregates() || !q.group_by.is_empty();
    let (columns, mut out): (Vec<String>, KeyedRows) = if grouped {
        project_grouped(db, q, &scope, filtered, outer)?
    } else {
        project_plain(db, q, &scope, filtered, outer)?
    };

    // 6. DISTINCT.
    if q.distinct == Distinctness::Distinct {
        let mut seen = std::collections::HashSet::new();
        out.retain(|(row, _)| seen.insert(row.clone()));
    }

    // 7. ORDER BY (sort keys were computed during projection).
    if !q.order_by.is_empty() {
        out.sort_by(|(_, ka), (_, kb)| {
            for (i, key) in q.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 8. LIMIT.
    let mut rows: Vec<Vec<Value>> = out.into_iter().map(|(row, _)| row).collect();
    if let Some(n) = q.limit {
        rows.truncate(n as usize);
    }
    Ok(Rows { columns, rows })
}

fn push_binding<'a>(
    scope: &mut Scope<'a>,
    binding: &str,
    columns: &'a [crate::schema::Column],
) -> Result<(), DbError> {
    if scope.entries.iter().any(|e| e.binding == binding) {
        return Err(DbError::Unsupported(format!(
            "duplicate table binding `{binding}` (add an alias)"
        )));
    }
    let offset = scope.width();
    scope.entries.push(ScopeEntry {
        binding: binding.to_string(),
        columns,
        offset,
    });
    Ok(())
}

/// Splits a predicate into its top-level `AND` conjuncts.
fn split_and<'q>(e: &'q Expr, out: &mut Vec<&'q Expr>) {
    if let Expr::Binary {
        op: BinaryOp::And,
        lhs,
        rhs,
    } = e
    {
        split_and(lhs, out);
        split_and(rhs, out);
    } else {
        out.push(e);
    }
}

/// The index of the scope entry whose columns cover row offset `off`.
fn stage_of_offset(scope: &Scope<'_>, off: usize) -> usize {
    scope
        .entries
        .iter()
        .rposition(|e| e.offset <= off)
        .expect("offset within scope")
}

/// The declared type of the column at row offset `off`.
fn column_ty_at(scope: &Scope<'_>, off: usize) -> SqlType {
    let e = &scope.entries[stage_of_offset(scope, off)];
    e.columns[off - e.offset].ty
}

/// If `e` is a *total predicate* — one whose evaluation can never raise an
/// error, whatever the row holds — returns the latest stage whose columns it
/// references (0 if none). `None` means the conjunct must stay in the final
/// WHERE pass: it may error (arithmetic overflow, `LIKE` on non-strings,
/// unbound parameters), contains a subquery, or references a name this scope
/// cannot resolve cleanly (ambiguous, unknown, or outer-correlated).
///
/// Totality matters because a single-pass evaluator only reaches the WHERE
/// clause for fully joined rows; evaluating a fallible conjunct early could
/// surface an error on a row a later join would have dropped.
fn pushable_stage(e: &Expr, scope: &Scope<'_>) -> Option<usize> {
    match e {
        Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
            Some(scalar_stage(lhs, scope)?.max(scalar_stage(rhs, scope)?))
        }
        Expr::Binary {
            op: BinaryOp::And | BinaryOp::Or,
            lhs,
            rhs,
        } => Some(pushable_stage(lhs, scope)?.max(pushable_stage(rhs, scope)?)),
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => pushable_stage(expr, scope),
        Expr::IsNull { expr, .. } => scalar_stage(expr, scope),
        Expr::InList { expr, list, .. } => {
            let mut stage = scalar_stage(expr, scope)?;
            for item in list {
                stage = stage.max(scalar_stage(item, scope)?);
            }
            Some(stage)
        }
        Expr::Between {
            expr, low, high, ..
        } => Some(
            scalar_stage(expr, scope)?
                .max(scalar_stage(low, scope)?)
                .max(scalar_stage(high, scope)?),
        ),
        Expr::Literal(Value::Bool(_)) | Expr::Literal(Value::Null) => Some(0),
        _ => None,
    }
}

/// Stage of a column or literal comparison operand; `None` for anything that
/// could error at evaluation time (arithmetic, parameters, subqueries) or
/// that does not resolve in this scope.
fn scalar_stage(e: &Expr, scope: &Scope<'_>) -> Option<usize> {
    match e {
        Expr::Literal(_) => Some(0),
        Expr::Column(c) => match scope.resolve(c) {
            Ok(Some(off)) => Some(stage_of_offset(scope, off)),
            _ => None,
        },
        _ => None,
    }
}

/// Matches `col = literal` (either orientation) where `col` is bound by
/// `entry` and the literal is a non-`NULL` value of the column's declared
/// type, so an equality-index probe selects exactly the rows a scan would
/// keep (stored values are shape-checked to the declared type or `NULL`,
/// and the index excludes `NULL`s).
fn literal_probe(e: &Expr, entry: &ScopeEntry<'_>, scope: &Scope<'_>) -> Option<(usize, Value)> {
    let Expr::Binary {
        op: BinaryOp::Eq,
        lhs,
        rhs,
    } = e
    else {
        return None;
    };
    let (col, lit) = match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => (c, v),
        _ => return None,
    };
    let off = scope.resolve(col).ok().flatten()?;
    let local = off.checked_sub(entry.offset)?;
    if local >= entry.columns.len() {
        return None;
    }
    (lit.sql_type() == Some(entry.columns[local].ty)).then(|| (local, lit.clone()))
}

/// Finds an equi-join key among the `ON` conjuncts: `a.x = b.y` with one
/// side bound by the joined table (`entry`) and the other by an earlier
/// stage, declared types equal. Returns `(base_row_offset, local_column)`.
fn hash_join_key(on: &Expr, entry: &ScopeEntry<'_>, scope: &Scope<'_>) -> Option<(usize, usize)> {
    let mut conjuncts = Vec::new();
    split_and(on, &mut conjuncts);
    let local_end = entry.offset + entry.columns.len();
    for c in conjuncts {
        let Expr::Binary {
            op: BinaryOp::Eq,
            lhs,
            rhs,
        } = c
        else {
            continue;
        };
        let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) else {
            continue;
        };
        let (Some(off_a), Some(off_b)) = (
            scope.resolve(a).ok().flatten(),
            scope.resolve(b).ok().flatten(),
        ) else {
            continue;
        };
        let (base_off, local) =
            if (entry.offset..local_end).contains(&off_a) && off_b < entry.offset {
                (off_b, off_a - entry.offset)
            } else if (entry.offset..local_end).contains(&off_b) && off_a < entry.offset {
                (off_a, off_b - entry.offset)
            } else {
                continue;
            };
        if column_ty_at(scope, base_off) == entry.columns[local].ty {
            return Some((base_off, local));
        }
    }
    None
}

/// Resolves output column names for the projection.
fn output_name(item: &SelectItem, idx: usize) -> String {
    match item {
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
            // Callers expand wildcards before asking for names.
            unreachable!("wildcards expanded before naming")
        }
        SelectItem::Expr { alias: Some(a), .. } => a.clone(),
        SelectItem::Expr {
            expr: Expr::Column(c),
            ..
        } => c.column.clone(),
        SelectItem::Expr { expr, .. } => {
            let printed = expr.to_string();
            if printed.len() <= 24 {
                printed
            } else {
                format!("col{idx}")
            }
        }
    }
}

/// Plain (non-aggregate) projection. Returns `(names, [(row, sort_keys)])`.
fn project_plain(
    db: &Database,
    q: &Query,
    scope: &Scope<'_>,
    source: Vec<Vec<Value>>,
    outer: Option<&EvalCtx<'_>>,
) -> Result<(Vec<String>, KeyedRows), DbError> {
    // Expand wildcards into concrete expressions.
    let mut names = Vec::new();
    let mut exprs: Vec<Expr> = Vec::new();
    for (i, item) in q.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for e in &scope.entries {
                    for c in e.columns {
                        names.push(c.name.clone());
                        exprs.push(Expr::qcol(e.binding.clone(), c.name.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let entry = scope
                    .entries
                    .iter()
                    .find(|e| &e.binding == t)
                    .ok_or_else(|| DbError::NoSuchTable(t.clone()))?;
                for c in entry.columns {
                    names.push(c.name.clone());
                    exprs.push(Expr::qcol(t.clone(), c.name.clone()));
                }
            }
            SelectItem::Expr { expr, .. } => {
                names.push(output_name(item, i));
                exprs.push(expr.clone());
            }
        }
    }

    let mut out = Vec::with_capacity(source.len());
    for r in &source {
        let ctx = EvalCtx {
            db,
            scope,
            row: r,
            outer,
        };
        let mut row = Vec::with_capacity(exprs.len());
        for e in &exprs {
            row.push(ctx.eval(e)?);
        }
        let mut keys = Vec::with_capacity(q.order_by.len());
        for k in &q.order_by {
            keys.push(eval_order_key(&ctx, &k.expr, &names, &row)?);
        }
        out.push((row, keys));
    }
    Ok((names, out))
}

/// Order keys may name an output column (alias) or any source expression.
fn eval_order_key(
    ctx: &EvalCtx<'_>,
    key: &Expr,
    names: &[String],
    output_row: &[Value],
) -> Result<Value, DbError> {
    if let Expr::Column(c) = key {
        if c.table.is_none() {
            if let Some(i) = names.iter().position(|n| n == &c.column) {
                return Ok(output_row[i].clone());
            }
        }
    }
    ctx.eval(key)
}

/// Aggregate projection: group rows, compute aggregates per group.
fn project_grouped(
    db: &Database,
    q: &Query,
    scope: &Scope<'_>,
    source: Vec<Vec<Value>>,
    outer: Option<&EvalCtx<'_>>,
) -> Result<(Vec<String>, KeyedRows), DbError> {
    for item in &q.items {
        if matches!(
            item,
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)
        ) {
            return Err(DbError::Unsupported("wildcard in aggregate query".into()));
        }
    }

    // Group rows by the GROUP BY key values.
    let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
    for r in source {
        let ctx = EvalCtx {
            db,
            scope,
            row: &r,
            outer,
        };
        let key: Vec<Value> = q
            .group_by
            .iter()
            .map(|g| ctx.eval(g))
            .collect::<Result<_, _>>()?;
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, rows)) => rows.push(r),
            None => groups.push((key, vec![r])),
        }
    }
    // A global aggregate over zero rows still yields one (empty) group.
    if groups.is_empty() && q.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let names: Vec<String> = q
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| output_name(item, i))
        .collect();

    let mut out = Vec::with_capacity(groups.len());
    for (_, rows) in groups {
        // HAVING filters whole groups.
        if let Some(h) = &q.having {
            let hv = eval_in_group(db, q, scope, &rows, h, outer)?;
            if !value_to_cmp(&hv)?.is_true() {
                continue;
            }
        }
        let mut row = Vec::with_capacity(q.items.len());
        for item in &q.items {
            if let SelectItem::Expr { expr, .. } = item {
                row.push(eval_in_group(db, q, scope, &rows, expr, outer)?);
            }
        }
        let mut keys = Vec::with_capacity(q.order_by.len());
        for k in &q.order_by {
            // Alias lookup first, then group-context evaluation.
            if let Expr::Column(c) = &k.expr {
                if c.table.is_none() {
                    if let Some(i) = names.iter().position(|n| n == &c.column) {
                        keys.push(row[i].clone());
                        continue;
                    }
                }
            }
            keys.push(eval_in_group(db, q, scope, &rows, &k.expr, outer)?);
        }
        out.push((row, keys));
    }
    Ok((names, out))
}

/// Evaluates an expression in the context of a group: aggregate nodes are
/// computed over the group's rows, everything else over the group's first row.
fn eval_in_group(
    db: &Database,
    _q: &Query,
    scope: &Scope<'_>,
    rows: &[Vec<Value>],
    expr: &Expr,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Value, DbError> {
    let materialized = materialize_aggs(db, scope, rows, expr, outer)?;
    let empty: Vec<Value> = vec![Value::Null; scope.width()];
    let row: &[Value] = rows.first().map(|r| r.as_slice()).unwrap_or(&empty);
    let ctx = EvalCtx {
        db,
        scope,
        row,
        outer,
    };
    ctx.eval(&materialized)
}

/// Replaces each aggregate subexpression with its computed literal value.
fn materialize_aggs(
    db: &Database,
    scope: &Scope<'_>,
    rows: &[Vec<Value>],
    expr: &Expr,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Expr, DbError> {
    Ok(match expr {
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Literal(compute_aggregate(
            db,
            scope,
            rows,
            *func,
            arg.as_deref(),
            *distinct,
            outer,
        )?),
        Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => expr.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(materialize_aggs(db, scope, rows, lhs, outer)?),
            rhs: Box::new(materialize_aggs(db, scope, rows, rhs, outer)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            list: list
                .iter()
                .map(|e| materialize_aggs(db, scope, rows, e, outer))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            low: Box::new(materialize_aggs(db, scope, rows, low, outer)?),
            high: Box::new(materialize_aggs(db, scope, rows, high, outer)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            pattern: Box::new(materialize_aggs(db, scope, rows, pattern, outer)?),
            negated: *negated,
        },
        // Subqueries inside aggregate queries evaluate against the first row.
        Expr::InSubquery { .. } | Expr::Exists { .. } => expr.clone(),
    })
}

fn compute_aggregate(
    db: &Database,
    scope: &Scope<'_>,
    rows: &[Vec<Value>],
    func: SetFunc,
    arg: Option<&Expr>,
    distinct: bool,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Value, DbError> {
    // COUNT(*) counts rows.
    let Some(arg) = arg else {
        return Ok(Value::Int(rows.len() as i64));
    };
    let mut vals = Vec::with_capacity(rows.len());
    for r in rows {
        let ctx = EvalCtx {
            db,
            scope,
            row: r,
            outer,
        };
        let v = ctx.eval(arg)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.clone()));
    }
    match func {
        SetFunc::Count => Ok(Value::Int(vals.len() as i64)),
        SetFunc::Min => Ok(vals
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null)),
        SetFunc::Max => Ok(vals
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null)),
        SetFunc::Sum | SetFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum: i64 = 0;
            for v in &vals {
                match v {
                    Value::Int(i) => {
                        sum = sum
                            .checked_add(*i)
                            .ok_or_else(|| DbError::Eval("SUM overflow".into()))?;
                    }
                    other => {
                        return Err(DbError::Eval(format!("SUM/AVG over non-integer {other:?}")))
                    }
                }
            }
            if func == SetFunc::Sum {
                Ok(Value::Int(sum))
            } else {
                // Integer average, truncated toward zero (documented subset
                // behaviour; minidb has no fractional numeric type).
                Ok(Value::Int(sum / vals.len() as i64))
            }
        }
    }
}
