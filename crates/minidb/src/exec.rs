//! Query execution: joins, filtering, grouping, projection, ordering.

use sqlir::{Distinctness, Expr, Query, SelectItem, SetFunc, Value};

use crate::db::Database;
use crate::error::DbError;
use crate::expr::{value_to_cmp, EvalCtx, Scope, ScopeEntry};

/// Projected output paired with its ORDER BY sort key, one entry per row.
type KeyedRows = Vec<(Vec<Value>, Vec<Value>)>;

/// A query result: column names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Rows {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl Rows {
    /// An empty result with no columns.
    pub fn empty() -> Rows {
        Rows {
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The single value of a 1x1 result, if that is the shape.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// Index of a named output column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// Executes a `SELECT` against the database.
pub fn execute_query(db: &Database, q: &Query) -> Result<Rows, DbError> {
    execute_query_with_outer(db, q, None)
}

/// Executes a `SELECT`, with an optional outer context for correlated
/// subqueries.
pub(crate) fn execute_query_with_outer(
    db: &Database,
    q: &Query,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Rows, DbError> {
    // 1. Build the scope and enumerate source rows.
    let mut scope = Scope::default();
    let mut source_rows: Vec<Vec<Value>> = vec![Vec::new()];

    for tref in &q.from {
        let table = db.table(&tref.table)?;
        push_binding(&mut scope, tref.binding(), &table.schema.columns)?;
        let mut next = Vec::new();
        for base in &source_rows {
            for row in table.rows() {
                let mut r = base.clone();
                r.extend(row.iter().cloned());
                next.push(r);
            }
        }
        source_rows = next;
    }

    for join in &q.joins {
        let table = db.table(&join.table.table)?;
        push_binding(&mut scope, join.table.binding(), &table.schema.columns)?;
        let mut next = Vec::new();
        for base in &source_rows {
            for row in table.rows() {
                let mut r = base.clone();
                r.extend(row.iter().cloned());
                let ctx = EvalCtx {
                    db,
                    scope: &scope,
                    row: &r,
                    outer,
                };
                if value_to_cmp(&ctx.eval(&join.on)?)?.is_true() {
                    next.push(r);
                }
            }
        }
        source_rows = next;
    }

    if q.from.is_empty() {
        // `SELECT 1` style: a single empty source row, no bindings.
        source_rows = vec![Vec::new()];
    }

    // 2. WHERE filter.
    let mut filtered = Vec::with_capacity(source_rows.len());
    for r in source_rows {
        let keep = match &q.where_clause {
            None => true,
            Some(w) => {
                let ctx = EvalCtx {
                    db,
                    scope: &scope,
                    row: &r,
                    outer,
                };
                value_to_cmp(&ctx.eval(w)?)?.is_true()
            }
        };
        if keep {
            filtered.push(r);
        }
    }

    // 3. Grouping / projection.
    let grouped = q.has_aggregates() || !q.group_by.is_empty();
    let (columns, mut out): (Vec<String>, KeyedRows) = if grouped {
        project_grouped(db, q, &scope, filtered, outer)?
    } else {
        project_plain(db, q, &scope, filtered, outer)?
    };

    // 4. DISTINCT.
    if q.distinct == Distinctness::Distinct {
        let mut seen = std::collections::HashSet::new();
        out.retain(|(row, _)| seen.insert(row.clone()));
    }

    // 5. ORDER BY (sort keys were computed during projection).
    if !q.order_by.is_empty() {
        out.sort_by(|(_, ka), (_, kb)| {
            for (i, key) in q.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 6. LIMIT.
    let mut rows: Vec<Vec<Value>> = out.into_iter().map(|(row, _)| row).collect();
    if let Some(n) = q.limit {
        rows.truncate(n as usize);
    }
    Ok(Rows { columns, rows })
}

fn push_binding<'a>(
    scope: &mut Scope<'a>,
    binding: &str,
    columns: &'a [crate::schema::Column],
) -> Result<(), DbError> {
    if scope.entries.iter().any(|e| e.binding == binding) {
        return Err(DbError::Unsupported(format!(
            "duplicate table binding `{binding}` (add an alias)"
        )));
    }
    let offset = scope.width();
    scope.entries.push(ScopeEntry {
        binding: binding.to_string(),
        columns,
        offset,
    });
    Ok(())
}

/// Resolves output column names for the projection.
fn output_name(item: &SelectItem, idx: usize) -> String {
    match item {
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
            // Callers expand wildcards before asking for names.
            unreachable!("wildcards expanded before naming")
        }
        SelectItem::Expr { alias: Some(a), .. } => a.clone(),
        SelectItem::Expr {
            expr: Expr::Column(c),
            ..
        } => c.column.clone(),
        SelectItem::Expr { expr, .. } => {
            let printed = expr.to_string();
            if printed.len() <= 24 {
                printed
            } else {
                format!("col{idx}")
            }
        }
    }
}

/// Plain (non-aggregate) projection. Returns `(names, [(row, sort_keys)])`.
fn project_plain(
    db: &Database,
    q: &Query,
    scope: &Scope<'_>,
    source: Vec<Vec<Value>>,
    outer: Option<&EvalCtx<'_>>,
) -> Result<(Vec<String>, KeyedRows), DbError> {
    // Expand wildcards into concrete expressions.
    let mut names = Vec::new();
    let mut exprs: Vec<Expr> = Vec::new();
    for (i, item) in q.items.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for e in &scope.entries {
                    for c in e.columns {
                        names.push(c.name.clone());
                        exprs.push(Expr::qcol(e.binding.clone(), c.name.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let entry = scope
                    .entries
                    .iter()
                    .find(|e| &e.binding == t)
                    .ok_or_else(|| DbError::NoSuchTable(t.clone()))?;
                for c in entry.columns {
                    names.push(c.name.clone());
                    exprs.push(Expr::qcol(t.clone(), c.name.clone()));
                }
            }
            SelectItem::Expr { expr, .. } => {
                names.push(output_name(item, i));
                exprs.push(expr.clone());
            }
        }
    }

    let mut out = Vec::with_capacity(source.len());
    for r in &source {
        let ctx = EvalCtx {
            db,
            scope,
            row: r,
            outer,
        };
        let mut row = Vec::with_capacity(exprs.len());
        for e in &exprs {
            row.push(ctx.eval(e)?);
        }
        let mut keys = Vec::with_capacity(q.order_by.len());
        for k in &q.order_by {
            keys.push(eval_order_key(&ctx, &k.expr, &names, &row)?);
        }
        out.push((row, keys));
    }
    Ok((names, out))
}

/// Order keys may name an output column (alias) or any source expression.
fn eval_order_key(
    ctx: &EvalCtx<'_>,
    key: &Expr,
    names: &[String],
    output_row: &[Value],
) -> Result<Value, DbError> {
    if let Expr::Column(c) = key {
        if c.table.is_none() {
            if let Some(i) = names.iter().position(|n| n == &c.column) {
                return Ok(output_row[i].clone());
            }
        }
    }
    ctx.eval(key)
}

/// Aggregate projection: group rows, compute aggregates per group.
fn project_grouped(
    db: &Database,
    q: &Query,
    scope: &Scope<'_>,
    source: Vec<Vec<Value>>,
    outer: Option<&EvalCtx<'_>>,
) -> Result<(Vec<String>, KeyedRows), DbError> {
    for item in &q.items {
        if matches!(
            item,
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)
        ) {
            return Err(DbError::Unsupported("wildcard in aggregate query".into()));
        }
    }

    // Group rows by the GROUP BY key values.
    let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
    for r in source {
        let ctx = EvalCtx {
            db,
            scope,
            row: &r,
            outer,
        };
        let key: Vec<Value> = q
            .group_by
            .iter()
            .map(|g| ctx.eval(g))
            .collect::<Result<_, _>>()?;
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, rows)) => rows.push(r),
            None => groups.push((key, vec![r])),
        }
    }
    // A global aggregate over zero rows still yields one (empty) group.
    if groups.is_empty() && q.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let names: Vec<String> = q
        .items
        .iter()
        .enumerate()
        .map(|(i, item)| output_name(item, i))
        .collect();

    let mut out = Vec::with_capacity(groups.len());
    for (_, rows) in groups {
        // HAVING filters whole groups.
        if let Some(h) = &q.having {
            let hv = eval_in_group(db, q, scope, &rows, h, outer)?;
            if !value_to_cmp(&hv)?.is_true() {
                continue;
            }
        }
        let mut row = Vec::with_capacity(q.items.len());
        for item in &q.items {
            if let SelectItem::Expr { expr, .. } = item {
                row.push(eval_in_group(db, q, scope, &rows, expr, outer)?);
            }
        }
        let mut keys = Vec::with_capacity(q.order_by.len());
        for k in &q.order_by {
            // Alias lookup first, then group-context evaluation.
            if let Expr::Column(c) = &k.expr {
                if c.table.is_none() {
                    if let Some(i) = names.iter().position(|n| n == &c.column) {
                        keys.push(row[i].clone());
                        continue;
                    }
                }
            }
            keys.push(eval_in_group(db, q, scope, &rows, &k.expr, outer)?);
        }
        out.push((row, keys));
    }
    Ok((names, out))
}

/// Evaluates an expression in the context of a group: aggregate nodes are
/// computed over the group's rows, everything else over the group's first row.
fn eval_in_group(
    db: &Database,
    _q: &Query,
    scope: &Scope<'_>,
    rows: &[Vec<Value>],
    expr: &Expr,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Value, DbError> {
    let materialized = materialize_aggs(db, scope, rows, expr, outer)?;
    let empty: Vec<Value> = vec![Value::Null; scope.width()];
    let row: &[Value] = rows.first().map(|r| r.as_slice()).unwrap_or(&empty);
    let ctx = EvalCtx {
        db,
        scope,
        row,
        outer,
    };
    ctx.eval(&materialized)
}

/// Replaces each aggregate subexpression with its computed literal value.
fn materialize_aggs(
    db: &Database,
    scope: &Scope<'_>,
    rows: &[Vec<Value>],
    expr: &Expr,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Expr, DbError> {
    Ok(match expr {
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Literal(compute_aggregate(
            db,
            scope,
            rows,
            *func,
            arg.as_deref(),
            *distinct,
            outer,
        )?),
        Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => expr.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(materialize_aggs(db, scope, rows, lhs, outer)?),
            rhs: Box::new(materialize_aggs(db, scope, rows, rhs, outer)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            list: list
                .iter()
                .map(|e| materialize_aggs(db, scope, rows, e, outer))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            low: Box::new(materialize_aggs(db, scope, rows, low, outer)?),
            high: Box::new(materialize_aggs(db, scope, rows, high, outer)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(materialize_aggs(db, scope, rows, expr, outer)?),
            pattern: Box::new(materialize_aggs(db, scope, rows, pattern, outer)?),
            negated: *negated,
        },
        // Subqueries inside aggregate queries evaluate against the first row.
        Expr::InSubquery { .. } | Expr::Exists { .. } => expr.clone(),
    })
}

fn compute_aggregate(
    db: &Database,
    scope: &Scope<'_>,
    rows: &[Vec<Value>],
    func: SetFunc,
    arg: Option<&Expr>,
    distinct: bool,
    outer: Option<&EvalCtx<'_>>,
) -> Result<Value, DbError> {
    // COUNT(*) counts rows.
    let Some(arg) = arg else {
        return Ok(Value::Int(rows.len() as i64));
    };
    let mut vals = Vec::with_capacity(rows.len());
    for r in rows {
        let ctx = EvalCtx {
            db,
            scope,
            row: r,
            outer,
        };
        let v = ctx.eval(arg)?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        vals.retain(|v| seen.insert(v.clone()));
    }
    match func {
        SetFunc::Count => Ok(Value::Int(vals.len() as i64)),
        SetFunc::Min => Ok(vals
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null)),
        SetFunc::Max => Ok(vals
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .cloned()
            .unwrap_or(Value::Null)),
        SetFunc::Sum | SetFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            let mut sum: i64 = 0;
            for v in &vals {
                match v {
                    Value::Int(i) => {
                        sum = sum
                            .checked_add(*i)
                            .ok_or_else(|| DbError::Eval("SUM overflow".into()))?;
                    }
                    other => {
                        return Err(DbError::Eval(format!("SUM/AVG over non-integer {other:?}")))
                    }
                }
            }
            if func == SetFunc::Sum {
                Ok(Value::Int(sum))
            } else {
                // Integer average, truncated toward zero (documented subset
                // behaviour; minidb has no fractional numeric type).
                Ok(Value::Int(sum / vals.len() as i64))
            }
        }
    }
}
