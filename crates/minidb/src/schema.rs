//! Schemas: tables, columns, and integrity constraints.

use sqlir::{ColumnDef, CreateTable, SqlType, TableConstraint};

use crate::error::DbError;

/// A column in a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: SqlType,
    /// Whether `NULL` is rejected.
    pub not_null: bool,
}

/// A foreign-key constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column indices (in the owning table).
    pub columns: Vec<usize>,
    /// Referenced table name.
    pub ref_table: String,
    /// Referenced column names.
    pub ref_columns: Vec<String>,
}

/// The schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns, in declaration order.
    pub columns: Vec<Column>,
    /// Primary-key column indices (empty if none declared).
    pub primary_key: Vec<usize>,
    /// Unique constraints (each a set of column indices), not including the
    /// primary key.
    pub uniques: Vec<Vec<usize>>,
    /// Foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Builds a schema from a parsed `CREATE TABLE`.
    pub fn from_create(ct: &CreateTable) -> Result<TableSchema, DbError> {
        let mut columns = Vec::with_capacity(ct.columns.len());
        let mut primary_key: Vec<usize> = Vec::new();
        let mut uniques: Vec<Vec<usize>> = Vec::new();

        for (idx, def) in ct.columns.iter().enumerate() {
            if columns.iter().any(|c: &Column| c.name == def.name) {
                return Err(DbError::BadSchema(format!(
                    "duplicate column {} in table {}",
                    def.name, ct.name
                )));
            }
            let ColumnDef {
                name,
                ty,
                not_null,
                primary_key: pk,
                unique,
            } = def;
            columns.push(Column {
                name: name.clone(),
                ty: *ty,
                // Primary-key columns are implicitly NOT NULL.
                not_null: *not_null || *pk,
            });
            if *pk {
                if !primary_key.is_empty() {
                    return Err(DbError::BadSchema(format!(
                        "multiple inline PRIMARY KEY columns in table {}",
                        ct.name
                    )));
                }
                primary_key.push(idx);
            }
            if *unique {
                uniques.push(vec![idx]);
            }
        }

        let mut schema = TableSchema {
            name: ct.name.clone(),
            columns,
            primary_key,
            uniques,
            foreign_keys: Vec::new(),
        };

        for con in &ct.constraints {
            match con {
                TableConstraint::PrimaryKey(cols) => {
                    if !schema.primary_key.is_empty() {
                        return Err(DbError::BadSchema(format!(
                            "table {} declares two primary keys",
                            ct.name
                        )));
                    }
                    let idxs = schema.resolve_columns(cols)?;
                    for &i in &idxs {
                        schema.columns[i].not_null = true;
                    }
                    schema.primary_key = idxs;
                }
                TableConstraint::Unique(cols) => {
                    let idxs = schema.resolve_columns(cols)?;
                    schema.uniques.push(idxs);
                }
                TableConstraint::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                } => {
                    let idxs = schema.resolve_columns(columns)?;
                    schema.foreign_keys.push(ForeignKey {
                        columns: idxs,
                        ref_table: ref_table.clone(),
                        ref_columns: ref_columns.clone(),
                    });
                }
            }
        }
        Ok(schema)
    }

    /// Returns the index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Resolves a list of column names to indices.
    pub fn resolve_columns(&self, names: &[String]) -> Result<Vec<usize>, DbError> {
        names
            .iter()
            .map(|n| {
                self.column_index(n)
                    .ok_or_else(|| DbError::NoSuchColumn(format!("{}.{}", self.name, n)))
            })
            .collect()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlir::parse_statement;

    fn schema_of(sql: &str) -> Result<TableSchema, DbError> {
        match parse_statement(sql).unwrap() {
            sqlir::Statement::CreateTable(ct) => TableSchema::from_create(&ct),
            _ => panic!("not a CREATE TABLE"),
        }
    }

    #[test]
    fn builds_schema_with_constraints() {
        let s = schema_of(
            "CREATE TABLE Attendance (UId INT NOT NULL, EId INT NOT NULL, Notes TEXT, \
             PRIMARY KEY (UId, EId), UNIQUE (Notes), \
             FOREIGN KEY (UId) REFERENCES Users (UId))",
        )
        .unwrap();
        assert_eq!(s.primary_key, vec![0, 1]);
        assert_eq!(s.uniques, vec![vec![2]]);
        assert_eq!(s.foreign_keys.len(), 1);
    }

    #[test]
    fn inline_primary_key_implies_not_null() {
        let s = schema_of("CREATE TABLE t (id INT PRIMARY KEY, x TEXT)").unwrap();
        assert!(s.columns[0].not_null);
        assert_eq!(s.primary_key, vec![0]);
    }

    #[test]
    fn rejects_duplicate_columns() {
        assert!(matches!(
            schema_of("CREATE TABLE t (a INT, a TEXT)"),
            Err(DbError::BadSchema(_))
        ));
    }

    #[test]
    fn rejects_double_primary_key() {
        assert!(schema_of("CREATE TABLE t (a INT PRIMARY KEY, b INT, PRIMARY KEY (b))").is_err());
    }

    #[test]
    fn rejects_unknown_constraint_column() {
        assert!(matches!(
            schema_of("CREATE TABLE t (a INT, UNIQUE (zzz))"),
            Err(DbError::NoSuchColumn(_))
        ));
    }
}
