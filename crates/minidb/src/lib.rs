//! An in-memory relational database engine.
//!
//! `minidb` executes the SQL subset defined by [`sqlir`] against in-memory
//! tables with full integrity enforcement (primary keys, `UNIQUE`,
//! `NOT NULL`, and restrict-mode foreign keys). It exists so that the rest of
//! the `beyond-enforcement` workspace — the access-control proxy, policy
//! extraction, and violation diagnosis — can run real applications against a
//! real query engine at laptop scale, standing in for the production DBMS a
//! deployment would use.
//!
//! Design notes:
//!
//! * Execution is straightforward nested-loop evaluation with incremental
//!   join filtering; there are no indexes. At the data sizes used by the
//!   paper's workloads (10²–10⁵ rows) this is more than fast enough and keeps
//!   the engine trivially auditable.
//! * SQL three-valued logic is implemented throughout (`WHERE` keeps only
//!   `TRUE`; `NOT IN` with a `NULL` behaves per the standard).
//! * [`Database`] is `Clone`, giving cheap whole-database snapshots; the
//!   diagnosis and active-learning components rely on this to explore
//!   hypothetical states.
//!
//! # Examples
//!
//! ```
//! use minidb::Database;
//!
//! let mut db = Database::new();
//! db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT)").unwrap();
//! db.execute_sql("INSERT INTO Events (EId, Title) VALUES (2, 'standup')").unwrap();
//! let rows = db.query_sql("SELECT Title FROM Events WHERE EId = 2").unwrap();
//! assert_eq!(rows.rows[0][0], sqlir::Value::str("standup"));
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod schema;
pub mod table;

pub use db::{Database, ExecResult};
pub use error::DbError;
pub use exec::Rows;
pub use schema::{Column, ForeignKey, TableSchema};
pub use table::Table;
