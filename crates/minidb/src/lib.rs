//! An in-memory relational database engine.
//!
//! `minidb` executes the SQL subset defined by [`sqlir`] against in-memory
//! tables with full integrity enforcement (primary keys, `UNIQUE`,
//! `NOT NULL`, and restrict-mode foreign keys). It exists so that the rest of
//! the `beyond-enforcement` workspace — the access-control proxy, policy
//! extraction, and violation diagnosis — can run real applications against a
//! real query engine at laptop scale, standing in for the production DBMS a
//! deployment would use.
//!
//! Design notes:
//!
//! * Execution is nested-loop evaluation with incremental join filtering,
//!   accelerated by lazily built equality indexes: `col = literal`
//!   selections and equi-joins probe a hash index, and total WHERE conjuncts
//!   are pushed down to the earliest join stage that binds their columns.
//!   The unoptimized path is kept callable ([`exec::execute_query_naive`])
//!   as the oracle for differential tests; results are identical including
//!   row order.
//! * SQL three-valued logic is implemented throughout (`WHERE` keeps only
//!   `TRUE`; `NOT IN` with a `NULL` behaves per the standard).
//! * [`Database`] is `Clone`, giving cheap whole-database snapshots; the
//!   diagnosis and active-learning components rely on this to explore
//!   hypothetical states.
//!
//! # Examples
//!
//! ```
//! use minidb::Database;
//!
//! let mut db = Database::new();
//! db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT)").unwrap();
//! db.execute_sql("INSERT INTO Events (EId, Title) VALUES (2, 'standup')").unwrap();
//! let rows = db.query_sql("SELECT Title FROM Events WHERE EId = 2").unwrap();
//! assert_eq!(rows.rows[0][0], sqlir::Value::str("standup"));
//! ```

#![warn(missing_docs)]

pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod schema;
pub mod table;

pub use db::{Database, ExecResult};
pub use error::DbError;
pub use exec::{execute_query_naive, Rows};
pub use schema::{Column, ForeignKey, TableSchema};
pub use table::{EqIndex, Table};
