//! Error types for the database engine.

use std::fmt;

use sqlir::ParseError;

/// Errors produced when defining schemas or executing statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The SQL text failed to parse.
    Parse(ParseError),
    /// A referenced table does not exist.
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// An unqualified column name matched more than one table in scope.
    AmbiguousColumn(String),
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        /// The offending column.
        column: String,
        /// The declared type name.
        expected: String,
        /// Description of the value found.
        found: String,
    },
    /// A `NOT NULL` column received `NULL`.
    NullViolation(String),
    /// A primary-key or unique constraint was violated.
    UniqueViolation {
        /// The constrained table.
        table: String,
        /// The constrained columns.
        columns: Vec<String>,
    },
    /// A foreign-key constraint was violated.
    ForeignKeyViolation {
        /// The referencing table.
        table: String,
        /// The referenced table.
        ref_table: String,
    },
    /// Row width or column list does not match the table schema.
    ArityMismatch {
        /// The target table.
        table: String,
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        found: usize,
    },
    /// The statement used a SQL feature outside the supported subset.
    Unsupported(String),
    /// A parameter placeholder survived to execution time.
    UnboundParameter(String),
    /// A runtime expression error (e.g. division by zero, bad operand types).
    Eval(String),
    /// A constraint declaration was invalid.
    BadSchema(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => e.fmt(f),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            DbError::TypeMismatch {
                column,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch for column {column}: expected {expected}, found {found}"
                )
            }
            DbError::NullViolation(c) => write!(f, "NOT NULL violation on column {c}"),
            DbError::UniqueViolation { table, columns } => {
                write!(f, "unique violation on {table}({})", columns.join(", "))
            }
            DbError::ForeignKeyViolation { table, ref_table } => {
                write!(f, "foreign-key violation: {table} references {ref_table}")
            }
            DbError::ArityMismatch {
                table,
                expected,
                found,
            } => {
                write!(
                    f,
                    "arity mismatch for {table}: expected {expected} values, found {found}"
                )
            }
            DbError::Unsupported(what) => write!(f, "unsupported SQL feature: {what}"),
            DbError::UnboundParameter(p) => write!(f, "unbound parameter reached executor: {p}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DbError::BadSchema(msg) => write!(f, "invalid schema: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> DbError {
        DbError::Parse(e)
    }
}
