//! Quick scaling sanity: bulk insert with PK+FK checks, then point lookups.
use minidb::Database;
use sqlir::Value;

fn main() {
    let n: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Posts (PId INT PRIMARY KEY, AuthorId INT, Title TEXT NOT NULL, \
         FOREIGN KEY (AuthorId) REFERENCES Users (UId))",
    )
    .unwrap();
    let t0 = std::time::Instant::now();
    for u in 0..n {
        db.execute_sql(&format!(
            "INSERT INTO Users (UId, Name) VALUES ({u}, 'u{u}')"
        ))
        .unwrap();
    }
    let t1 = std::time::Instant::now();
    for p in 0..n {
        db.execute_sql(&format!(
            "INSERT INTO Posts (PId, AuthorId, Title) VALUES ({p}, {}, 't{p}')",
            p % n
        ))
        .unwrap();
    }
    let t2 = std::time::Instant::now();
    let mut hits = 0;
    for i in 0..10_000 {
        let r = db
            .query_sql(&format!(
                "SELECT Title FROM Posts WHERE AuthorId = {}",
                i % n
            ))
            .unwrap();
        hits += r.len();
    }
    let t3 = std::time::Instant::now();
    let r = db
        .query_sql("SELECT COUNT(*) FROM Posts p JOIN Users u ON p.AuthorId = u.UId")
        .unwrap();
    let t4 = std::time::Instant::now();
    assert_eq!(r.scalar(), Some(&Value::Int(n)));
    println!(
        "n={n}: users {:.2}s, posts(fk) {:.2}s, 10k lookups {:.3}s ({hits} hits), join {:.3}s",
        (t1 - t0).as_secs_f64(),
        (t2 - t1).as_secs_f64(),
        (t3 - t2).as_secs_f64(),
        (t4 - t3).as_secs_f64()
    );
}
