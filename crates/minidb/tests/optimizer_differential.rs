//! Differential gate for the optimized executor: index probes, hash joins,
//! and predicate pushdown must produce *identical* results (including row
//! order) to the naive nested-loop + single-pass-WHERE evaluator.

use minidb::exec::{execute_query, execute_query_naive};
use minidb::Database;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqlir::parse_query;

/// A three-table schema exercising joins, NULLs, and duplicate column names
/// (`Name` exists in two tables, so unqualified references are ambiguous).
fn seeded_db(seed: u64, users: i64, posts_per_user: i64) -> Database {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL, Age INT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Posts (PId INT PRIMARY KEY, AuthorId INT, \
         Title TEXT NOT NULL, Score INT, FOREIGN KEY (AuthorId) REFERENCES Users (UId))",
    )
    .unwrap();
    db.execute_sql(
        "CREATE TABLE Follows (FollowerId INT, FolloweeId INT, Name TEXT, \
         FOREIGN KEY (FollowerId) REFERENCES Users (UId), \
         FOREIGN KEY (FolloweeId) REFERENCES Users (UId))",
    )
    .unwrap();
    for u in 0..users {
        let age = if rng.gen_bool(0.2) {
            "NULL".to_string()
        } else {
            format!("{}", rng.gen_range(18..80))
        };
        db.execute_sql(&format!(
            "INSERT INTO Users (UId, Name, Age) VALUES ({u}, 'user{u}', {age})"
        ))
        .unwrap();
        for k in 0..posts_per_user {
            let pid = u * posts_per_user + k;
            let author = if rng.gen_bool(0.1) {
                "NULL".to_string()
            } else {
                format!("{u}")
            };
            let score = rng.gen_range(0..10);
            db.execute_sql(&format!(
                "INSERT INTO Posts (PId, AuthorId, Title, Score) \
                 VALUES ({pid}, {author}, 'post{pid}', {score})"
            ))
            .unwrap();
        }
    }
    for _ in 0..users * 2 {
        let a = rng.gen_range(0..users);
        let b = rng.gen_range(0..users);
        db.execute_sql(&format!(
            "INSERT INTO Follows (FollowerId, FolloweeId, Name) VALUES ({a}, {b}, 'edge')"
        ))
        .unwrap();
    }
    db
}

/// Random SELECTs over the seeded schema: single-table probes, two- and
/// three-way equi-joins, pushdown-eligible and residual (fallible) WHERE
/// conjuncts, DISTINCT, ORDER BY, LIMIT, aggregates.
fn random_query(rng: &mut SmallRng, users: i64) -> String {
    let uid = rng.gen_range(0..users + 2); // sometimes misses
    let score = rng.gen_range(0..12);
    let shape = rng.gen_range(0..10);
    match shape {
        0 => format!("SELECT UId, Users.Name FROM Users WHERE UId = {uid}"),
        1 => format!(
            "SELECT PId, Title FROM Posts WHERE AuthorId = {uid} AND Score >= {score} \
             ORDER BY PId"
        ),
        2 => format!(
            "SELECT u.Name, p.Title FROM Users u JOIN Posts p ON u.UId = p.AuthorId \
             WHERE u.UId = {uid}"
        ),
        3 => format!(
            "SELECT u.Name, p.Title FROM Users u, Posts p \
             WHERE u.UId = p.AuthorId AND p.Score > {score}"
        ),
        4 => format!(
            "SELECT f.FolloweeId, u.Name FROM Follows f \
             JOIN Users u ON f.FolloweeId = u.UId WHERE f.FollowerId = {uid}"
        ),
        5 => format!(
            "SELECT u.Name, p2.Title FROM Users u \
             JOIN Follows f ON u.UId = f.FollowerId \
             JOIN Posts p2 ON f.FolloweeId = p2.AuthorId \
             WHERE u.UId = {uid} ORDER BY p2.PId LIMIT 5"
        ),
        6 => format!(
            "SELECT DISTINCT AuthorId FROM Posts WHERE Score >= {score} OR AuthorId = {uid}"
        ),
        7 => format!(
            "SELECT COUNT(*) FROM Posts p JOIN Users u ON p.AuthorId = u.UId \
             WHERE u.Age IS NOT NULL AND p.Score < {score}"
        ),
        // Residual-only shapes: arithmetic (fallible, never pushed) and a
        // correlated subquery.
        8 => format!("SELECT PId FROM Posts WHERE Score + 1 > {score} AND AuthorId = {uid}"),
        _ => format!(
            "SELECT u.UId FROM Users u WHERE EXISTS \
             (SELECT 1 FROM Posts p WHERE p.AuthorId = u.UId AND p.Score > {score})"
        ),
    }
}

#[test]
fn optimized_matches_naive_on_random_queries() {
    let users = 17;
    let db = seeded_db(0xBEEF, users, 3);
    let mut rng = SmallRng::seed_from_u64(42);
    for i in 0..400 {
        let sql = random_query(&mut rng, users);
        let q = parse_query(&sql).unwrap();
        let fast = execute_query(&db, &q);
        let slow = execute_query_naive(&db, &q);
        match (fast, slow) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "query #{i} diverged: {sql}"),
            (a, b) => panic!("query #{i} result kinds diverged: {sql}\n{a:?}\nvs\n{b:?}"),
        }
    }
}

#[test]
fn pushdown_preserves_ambiguity_errors() {
    let db = seeded_db(1, 5, 2);
    // `Name` exists in both Users and Follows: unqualified use is ambiguous
    // and must error identically on both paths.
    let q = parse_query(
        "SELECT u.UId FROM Users u JOIN Follows f ON u.UId = f.FollowerId WHERE Name = 'edge'",
    )
    .unwrap();
    let fast = execute_query(&db, &q);
    let slow = execute_query_naive(&db, &q);
    assert!(fast.is_err(), "ambiguous column must error");
    assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
}

#[test]
fn mutation_invalidates_index_results() {
    let mut db = seeded_db(2, 8, 2);
    let sql = "SELECT PId FROM Posts WHERE AuthorId = 3 ORDER BY PId";
    // Warm the index.
    let before = db.query_sql(sql).unwrap();
    assert!(!before.is_empty());
    db.execute_sql("DELETE FROM Posts WHERE AuthorId = 3")
        .unwrap();
    assert!(db.query_sql(sql).unwrap().is_empty());
    db.execute_sql("INSERT INTO Posts (PId, AuthorId, Title, Score) VALUES (900, 3, 'new', 1)")
        .unwrap();
    let after = db.query_sql(sql).unwrap();
    assert_eq!(after.rows.len(), 1);
    assert_eq!(after.rows[0][0], sqlir::Value::Int(900));
}
