//! Property-based tests of the query engine against a naive reference
//! implementation, plus integrity-constraint invariants under random DML.

use minidb::{Database, DbError};
use proptest::prelude::*;
use sqlir::Value;

fn db_with_rows(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE T (a INT, b INT)").unwrap();
    for (a, b) in rows {
        db.execute_sql(&format!("INSERT INTO T (a, b) VALUES ({a}, {b})"))
            .unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// WHERE filtering agrees with a direct Rust-side filter.
    #[test]
    fn where_matches_reference(
        rows in proptest::collection::vec((0i64..10, 0i64..10), 0..12),
        threshold in 0i64..10,
    ) {
        let db = db_with_rows(&rows);
        let got = db
            .query_sql(&format!("SELECT a, b FROM T WHERE a >= {threshold} AND b < a"))
            .unwrap();
        let expected: Vec<(i64, i64)> = rows
            .iter()
            .copied()
            .filter(|(a, b)| *a >= threshold && b < a)
            .collect();
        prop_assert_eq!(got.rows.len(), expected.len());
        for (a, b) in expected {
            prop_assert!(got
                .rows
                .iter()
                .any(|r| r[0] == Value::Int(a) && r[1] == Value::Int(b)));
        }
    }

    /// Aggregates agree with Rust-side computation.
    #[test]
    fn aggregates_match_reference(
        rows in proptest::collection::vec((0i64..10, 0i64..100), 1..12),
    ) {
        let db = db_with_rows(&rows);
        let got = db
            .query_sql("SELECT COUNT(*), SUM(b), MIN(b), MAX(b) FROM T")
            .unwrap();
        let bs: Vec<i64> = rows.iter().map(|(_, b)| *b).collect();
        prop_assert_eq!(&got.rows[0][0], &Value::Int(bs.len() as i64));
        prop_assert_eq!(&got.rows[0][1], &Value::Int(bs.iter().sum::<i64>()));
        prop_assert_eq!(&got.rows[0][2], &Value::Int(*bs.iter().min().unwrap()));
        prop_assert_eq!(&got.rows[0][3], &Value::Int(*bs.iter().max().unwrap()));
    }

    /// GROUP BY partitions the rows: group counts sum to the total.
    #[test]
    fn group_by_partitions(
        rows in proptest::collection::vec((0i64..4, 0i64..10), 0..16),
    ) {
        let db = db_with_rows(&rows);
        let got = db
            .query_sql("SELECT a, COUNT(*) FROM T GROUP BY a")
            .unwrap();
        let total: i64 = got.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
        prop_assert_eq!(total, rows.len() as i64);
        // Distinct keys only.
        let mut keys: Vec<&Value> = got.rows.iter().map(|r| &r[0]).collect();
        let before = keys.len();
        keys.dedup();
        keys.sort_by(|a, b| a.total_cmp(b));
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    /// ORDER BY produces a sorted, permutation-preserving result.
    #[test]
    fn order_by_sorts(
        rows in proptest::collection::vec((0i64..10, 0i64..10), 0..16),
    ) {
        let db = db_with_rows(&rows);
        let got = db.query_sql("SELECT a FROM T ORDER BY a DESC").unwrap();
        let mut expected: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expected.sort_unstable_by(|x, y| y.cmp(x));
        let got_vals: Vec<i64> = got.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        prop_assert_eq!(got_vals, expected);
    }

    /// Joins agree with the nested-loop reference.
    #[test]
    fn join_matches_reference(
        left in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
        right in proptest::collection::vec((0i64..5, 0i64..5), 0..8),
    ) {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE L (k INT, v INT)").unwrap();
        db.execute_sql("CREATE TABLE R (k INT, w INT)").unwrap();
        for (k, v) in &left {
            db.execute_sql(&format!("INSERT INTO L (k, v) VALUES ({k}, {v})")).unwrap();
        }
        for (k, w) in &right {
            db.execute_sql(&format!("INSERT INTO R (k, w) VALUES ({k}, {w})")).unwrap();
        }
        let got = db
            .query_sql("SELECT l.v, r.w FROM L l JOIN R r ON l.k = r.k")
            .unwrap();
        let mut expected = 0usize;
        for (lk, _) in &left {
            for (rk, _) in &right {
                if lk == rk {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(got.rows.len(), expected);
    }

    /// The primary key is never violated, no matter the insert order, and
    /// failed inserts leave the table unchanged.
    #[test]
    fn primary_key_invariant(
        inserts in proptest::collection::vec((0i64..6, 0i64..100), 0..20),
    ) {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE P (id INT PRIMARY KEY, v INT)").unwrap();
        let mut seen = Vec::new();
        for (id, v) in &inserts {
            let result =
                db.execute_sql(&format!("INSERT INTO P (id, v) VALUES ({id}, {v})"));
            if seen.contains(id) {
                let is_unique_violation =
                    matches!(result, Err(DbError::UniqueViolation { .. }));
                prop_assert!(is_unique_violation);
            } else {
                prop_assert!(result.is_ok());
                seen.push(*id);
            }
        }
        let rows = db.query_sql("SELECT id FROM P").unwrap();
        prop_assert_eq!(rows.rows.len(), seen.len());
    }

    /// Referential integrity survives arbitrary delete attempts.
    #[test]
    fn foreign_key_invariant(
        links in proptest::collection::vec(0i64..4, 0..8),
        delete in 0i64..4,
    ) {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Parent (id INT PRIMARY KEY)").unwrap();
        db.execute_sql(
            "CREATE TABLE Child (cid INT PRIMARY KEY, pid INT, \
             FOREIGN KEY (pid) REFERENCES Parent (id))",
        )
        .unwrap();
        for id in 0..4 {
            db.execute_sql(&format!("INSERT INTO Parent (id) VALUES ({id})")).unwrap();
        }
        for (i, pid) in links.iter().enumerate() {
            db.execute_sql(&format!("INSERT INTO Child (cid, pid) VALUES ({i}, {pid})"))
                .unwrap();
        }
        let referenced = links.contains(&delete);
        let result = db.execute_sql(&format!("DELETE FROM Parent WHERE id = {delete}"));
        if referenced {
            let is_fk_violation =
                matches!(result, Err(DbError::ForeignKeyViolation { .. }));
            prop_assert!(is_fk_violation);
        } else {
            prop_assert!(result.is_ok());
        }
        // No dangling children, ever.
        let dangling = db
            .query_sql(
                "SELECT 1 FROM Child c WHERE NOT EXISTS \
                 (SELECT 1 FROM Parent p WHERE p.id = c.pid)",
            )
            .unwrap();
        prop_assert!(dangling.is_empty());
    }

    /// DISTINCT removes exactly the duplicates.
    #[test]
    fn distinct_dedups(
        rows in proptest::collection::vec((0i64..3, 0i64..3), 0..12),
    ) {
        let db = db_with_rows(&rows);
        let got = db.query_sql("SELECT DISTINCT a, b FROM T").unwrap();
        let mut expected = rows.clone();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(got.rows.len(), expected.len());
    }
}
