//! Additional engine behaviour tests: subqueries in DML, expression
//! evaluation edge cases, and error taxonomy under malformed input.

use minidb::{Database, DbError};
use sqlir::Value;

fn db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE T (k INT PRIMARY KEY, v INT, s TEXT)")
        .unwrap();
    db.execute_sql("INSERT INTO T (k, v, s) VALUES (1, 10, 'a'), (2, 20, 'b'), (3, 30, NULL)")
        .unwrap();
    db
}

#[test]
fn update_with_subquery_in_where() {
    let mut db = db();
    db.execute_sql("CREATE TABLE Sel (k INT)").unwrap();
    db.execute_sql("INSERT INTO Sel (k) VALUES (1), (3)")
        .unwrap();
    let n = db
        .execute_sql("UPDATE T SET v = v + 1 WHERE k IN (SELECT k FROM Sel)")
        .unwrap();
    assert_eq!(n, minidb::ExecResult::Affected(2));
    let rows = db.query_sql("SELECT v FROM T ORDER BY k").unwrap();
    assert_eq!(
        rows.rows,
        vec![
            vec![Value::Int(11)],
            vec![Value::Int(20)],
            vec![Value::Int(31)]
        ]
    );
}

#[test]
fn delete_with_correlated_subquery() {
    let mut db = db();
    db.execute_sql("CREATE TABLE Keep (k INT)").unwrap();
    db.execute_sql("INSERT INTO Keep (k) VALUES (2)").unwrap();
    db.execute_sql("DELETE FROM T WHERE NOT EXISTS (SELECT 1 FROM Keep kk WHERE kk.k = T.k)")
        .unwrap();
    let rows = db.query_sql("SELECT k FROM T").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn arithmetic_type_errors() {
    let db = db();
    assert!(matches!(
        db.query_sql("SELECT s + 1 FROM T WHERE k = 1"),
        Err(DbError::Eval(_))
    ));
    // NULL arithmetic propagates instead of erroring.
    let rows = db.query_sql("SELECT v + NULL FROM T WHERE k = 1").unwrap();
    assert_eq!(rows.rows[0][0], Value::Null);
}

#[test]
fn like_on_non_string_is_an_error() {
    let db = db();
    assert!(matches!(
        db.query_sql("SELECT 1 FROM T WHERE v LIKE 'x%'"),
        Err(DbError::Eval(_))
    ));
}

#[test]
fn between_with_null_bound_is_unknown() {
    let db = db();
    // v BETWEEN NULL AND 100 is unknown for all rows except... always
    // unknown-or-true: `>= NULL` is unknown, so the conjunction is never
    // TRUE — no rows.
    let rows = db
        .query_sql("SELECT k FROM T WHERE v BETWEEN NULL AND 100")
        .unwrap();
    assert!(rows.is_empty());
}

#[test]
fn order_by_null_first() {
    let db = db();
    let rows = db.query_sql("SELECT s FROM T ORDER BY s").unwrap();
    assert_eq!(rows.rows[0][0], Value::Null, "NULL sorts first");
}

#[test]
fn count_distinct() {
    let mut db = db();
    db.execute_sql("INSERT INTO T (k, v, s) VALUES (4, 10, 'a')")
        .unwrap();
    let rows = db
        .query_sql("SELECT COUNT(DISTINCT v), COUNT(v) FROM T")
        .unwrap();
    assert_eq!(rows.rows[0], vec![Value::Int(3), Value::Int(4)]);
}

#[test]
fn group_by_with_nulls_groups_them_together() {
    let mut db = db();
    db.execute_sql("INSERT INTO T (k, v, s) VALUES (4, 40, NULL)")
        .unwrap();
    let rows = db
        .query_sql("SELECT s, COUNT(*) FROM T GROUP BY s ORDER BY s")
        .unwrap();
    // NULL group first, with two members.
    assert_eq!(rows.rows[0], vec![Value::Null, Value::Int(2)]);
}

#[test]
fn insert_arity_and_unknown_column_errors() {
    let mut db = db();
    assert!(matches!(
        db.execute_sql("INSERT INTO T (k, v) VALUES (9)"),
        Err(DbError::ArityMismatch { .. })
    ));
    assert!(matches!(
        db.execute_sql("INSERT INTO T (nope) VALUES (1)"),
        Err(DbError::NoSuchColumn(_))
    ));
    assert!(matches!(
        db.execute_sql("INSERT INTO Nope (k) VALUES (1)"),
        Err(DbError::NoSuchTable(_))
    ));
}

#[test]
fn duplicate_binding_requires_alias() {
    let db = db();
    let err = db.query_sql("SELECT 1 FROM T, T").unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)));
    // With aliases the self-join works.
    let rows = db.query_sql("SELECT COUNT(*) FROM T a, T b").unwrap();
    assert_eq!(rows.scalar(), Some(&Value::Int(9)));
}

#[test]
fn table_create_twice_fails() {
    let mut db = db();
    assert!(matches!(
        db.execute_sql("CREATE TABLE T (x INT)"),
        Err(DbError::TableExists(_))
    ));
}

#[test]
fn in_subquery_wrong_arity_is_reported() {
    let db = db();
    let err = db
        .query_sql("SELECT 1 FROM T WHERE k IN (SELECT k, v FROM T)")
        .unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)));
}

#[test]
fn limit_zero_and_large() {
    let db = db();
    assert_eq!(db.query_sql("SELECT k FROM T LIMIT 0").unwrap().len(), 0);
    assert_eq!(db.query_sql("SELECT k FROM T LIMIT 99").unwrap().len(), 3);
}

#[test]
fn update_without_where_touches_all() {
    let mut db = db();
    let n = db.execute_sql("UPDATE T SET v = 0").unwrap();
    assert_eq!(n, minidb::ExecResult::Affected(3));
    let rows = db.query_sql("SELECT DISTINCT v FROM T").unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(0)]]);
}
