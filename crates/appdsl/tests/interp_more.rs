//! Additional interpreter behaviour tests: control flow, scoping, blocked
//! propagation through every statement form, and error taxonomy.

use appdsl::{
    parse_handler, run_handler, DslError, Emitted, Limits, Outcome, PortOutcome, QueryPort,
};
use minidb::Database;
use sqlir::Value;

fn db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE T (k INT PRIMARY KEY, v INT)")
        .unwrap();
    db.execute_sql("INSERT INTO T (k, v) VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    db
}

#[test]
fn else_if_chains_select_correct_branch() {
    let h = parse_handler(
        r#"
        handler classify(x) {
            if params.x == 1 {
                emit "one";
            } else if params.x == 2 {
                emit "two";
            } else {
                emit "many";
            }
        }
        "#,
    )
    .unwrap();
    for (x, expected) in [(1, "one"), (2, "two"), (7, "many")] {
        let mut db = db();
        let r = run_handler(
            &mut db,
            &h,
            &[],
            &[("x".into(), Value::Int(x))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.emitted, vec![Emitted::Scalar(Value::str(expected))]);
    }
}

#[test]
fn let_rebinding_shadows() {
    let h = parse_handler(
        r#"
        handler f() {
            let x = 1;
            let x = 2;
            emit x;
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let r = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap();
    assert_eq!(r.emitted, vec![Emitted::Scalar(Value::Int(2))]);
}

#[test]
fn loop_variable_scoping_and_accumulation() {
    let h = parse_handler(
        r#"
        handler sum_like() {
            let rows = sql("SELECT v FROM T ORDER BY v");
            let last = 0;
            for r in rows {
                let last = r.v;
                emit last;
            }
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let r = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap();
    assert_eq!(
        r.emitted,
        vec![
            Emitted::Scalar(Value::Int(10)),
            Emitted::Scalar(Value::Int(20)),
            Emitted::Scalar(Value::Int(30)),
        ]
    );
}

#[test]
fn return_inside_loop_stops_everything() {
    let h = parse_handler(
        r#"
        handler first() {
            let rows = sql("SELECT v FROM T ORDER BY v");
            for r in rows {
                emit r.v;
                return;
            }
            emit 999;
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let r = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap();
    assert_eq!(r.emitted, vec![Emitted::Scalar(Value::Int(10))]);
    assert_eq!(r.outcome, Outcome::Ok);
}

#[test]
fn comparison_on_null_is_false() {
    let h = parse_handler(
        r#"
        handler f() {
            let rows = sql("SELECT v FROM T WHERE k = 999");
            if rows.first.v == 10 {
                emit "yes";
            } else {
                emit "no";
            }
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let r = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap();
    // `rows.first.v` on an empty result is NULL; NULL == 10 is unknown,
    // which is falsy.
    assert_eq!(r.emitted, vec![Emitted::Scalar(Value::str("no"))]);
}

#[test]
fn kind_errors_are_reported() {
    let h = parse_handler(
        r#"
        handler f() {
            let x = 1;
            for r in x { emit 1; }
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let err = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap_err();
    assert!(matches!(err, DslError::Kind(_)));
}

#[test]
fn unknown_column_in_field_access() {
    let h = parse_handler(
        r#"
        handler f() {
            let rows = sql("SELECT v FROM T WHERE k = 1");
            emit rows.first.nope;
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let err = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap_err();
    assert!(matches!(err, DslError::Kind(_)));
}

/// A port that blocks everything: blocked-ness must propagate out of any
/// statement form (let, if-cond, for-source, emit, run).
struct BlockAll;

impl QueryPort for BlockAll {
    fn run(&mut self, _sql: &str, _bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        Ok(PortOutcome::Blocked("nope".into()))
    }
}

#[test]
fn blocked_propagates_from_every_position() {
    for src in [
        r#"handler f() { let x = sql("SELECT v FROM T"); }"#,
        r#"handler f() { if sql("SELECT v FROM T").is_empty() { emit 1; } }"#,
        r#"handler f() { for r in sql("SELECT v FROM T") { emit 1; } }"#,
        r#"handler f() { emit sql("SELECT v FROM T"); }"#,
        r#"handler f() { run sql("DELETE FROM T WHERE k = 1"); }"#,
    ] {
        let h = parse_handler(src).unwrap();
        let r = run_handler(&mut BlockAll, &h, &[], &[], Limits::default()).unwrap();
        assert!(
            matches!(r.outcome, Outcome::Blocked { .. }),
            "blocked must propagate from: {src}"
        );
    }
}

#[test]
fn emitted_scalar_from_count() {
    let h = parse_handler(
        r#"
        handler f() {
            let rows = sql("SELECT v FROM T WHERE v > 10");
            emit rows.count();
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let r = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap();
    assert_eq!(r.emitted, vec![Emitted::Scalar(Value::Int(2))]);
    // The source query's emitted flag is set: its data reached the user.
    assert!(r.queries[0].emitted);
}

#[test]
fn boolean_operators_short_circuit_queries() {
    // The rhs query must not be issued when the lhs decides.
    let h = parse_handler(
        r#"
        handler f() {
            if true || sql("SELECT v FROM T").is_empty() {
                emit 1;
            }
        }
        "#,
    )
    .unwrap();
    let mut db = db();
    let r = run_handler(&mut db, &h, &[], &[], Limits::default()).unwrap();
    assert_eq!(r.queries.len(), 0, "short-circuit skipped the query");
    assert_eq!(r.emitted, vec![Emitted::Scalar(Value::Int(1))]);
}
