//! Error types for the handler language.

use std::fmt;

/// Errors from parsing or running DSL programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DslError {
    /// A syntax error with byte position.
    Parse {
        /// Description.
        message: String,
        /// Byte offset.
        offset: usize,
    },
    /// An unbound name was referenced.
    Unbound(String),
    /// A value had the wrong runtime kind (e.g. field access on a scalar).
    Kind(String),
    /// A SQL parameter could not be resolved from the environment.
    UnresolvedSqlParam(String),
    /// The underlying database or proxy failed.
    Port(String),
    /// Execution exceeded the configured step budget (runaway loop guard).
    StepBudgetExceeded,
}

impl DslError {
    /// Creates a parse error.
    pub fn parse(message: impl Into<String>, offset: usize) -> DslError {
        DslError::Parse {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DslError::Parse { message, offset } => {
                write!(f, "DSL parse error at byte {offset}: {message}")
            }
            DslError::Unbound(n) => write!(f, "unbound name: {n}"),
            DslError::Kind(msg) => write!(f, "kind error: {msg}"),
            DslError::UnresolvedSqlParam(p) => {
                write!(f, "SQL parameter ?{p} not found in scope")
            }
            DslError::Port(msg) => write!(f, "query port error: {msg}"),
            DslError::StepBudgetExceeded => f.write_str("execution step budget exceeded"),
        }
    }
}

impl std::error::Error for DslError {}
