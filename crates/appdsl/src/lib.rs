//! A small handler language for database-backed applications.
//!
//! The paper's Listing 1 is written in an (idealized) dynamic web language.
//! `appdsl` is that language made concrete: handlers take request
//! parameters, read session fields, issue SQL with named parameters, branch
//! on result emptiness, loop over rows, and `emit` data to the user.
//!
//! The crate ships the AST ([`ast`]), a parser ([`parser`]), and a concrete
//! interpreter ([`interp`]) that runs against any [`QueryPort`] — a bare
//! database or the enforcing proxy. The *symbolic* executor over the same
//! AST lives in `bep-extract`, because it is part of the paper's
//! contribution rather than substrate.
//!
//! # Examples
//!
//! ```
//! use appdsl::{parse_handler, run_handler, Limits};
//! use minidb::Database;
//! use sqlir::Value;
//!
//! let mut db = Database::new();
//! db.execute_sql("CREATE TABLE T (x INT)").unwrap();
//! db.execute_sql("INSERT INTO T (x) VALUES (41)").unwrap();
//!
//! let handler = parse_handler(
//!     r#"handler get() { emit sql("SELECT x FROM T"); }"#,
//! ).unwrap();
//! let result = run_handler(&mut db, &handler, &[], &[], Limits::default()).unwrap();
//! assert!(result.ok());
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod interp;
pub mod parser;

pub use ast::{App, DBinOp, DExpr, Handler, Stmt};
pub use error::DslError;
pub use interp::{
    run_handler, Emitted, IssuedQuery, Limits, Outcome, PortOutcome, QueryPort, Request, RunResult,
};
pub use parser::{parse_app, parse_handler};
