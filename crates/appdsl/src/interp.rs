//! Concrete interpreter for handler programs.
//!
//! Handlers run against a [`QueryPort`] — anything that can answer SQL. The
//! two ports used in practice are a bare [`minidb::Database`] (development,
//! trace mining) and the enforcing proxy from `bep-core` (production, via an
//! adapter in `appsim`). The interpreter records every issued query, which
//! is exactly the trace the black-box extraction pipeline consumes.

use minidb::Rows;
use sqlir::{CmpResult, Value};

use crate::ast::{DBinOp, DExpr, Handler, Stmt};
use crate::error::DslError;

/// Anything that can answer SQL with named-parameter bindings.
pub trait QueryPort {
    /// Executes one statement.
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError>;
}

/// The result of one port call.
#[derive(Debug, Clone, PartialEq)]
pub enum PortOutcome {
    /// A `SELECT`'s rows.
    Rows(Rows),
    /// DML affected-row count.
    Affected(usize),
    /// The statement was blocked by enforcement.
    Blocked(String),
}

impl QueryPort for minidb::Database {
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        let stmt = sqlir::parse_statement(sql).map_err(|e| DslError::Port(e.to_string()))?;
        let mut pb = sqlir::ParamBindings::new();
        for (k, v) in bindings {
            pb.set(k.clone(), v.clone());
        }
        let bound = sqlir::bind_statement(&stmt, &pb).map_err(|e| DslError::Port(e.to_string()))?;
        match self
            .execute(&bound)
            .map_err(|e| DslError::Port(e.to_string()))?
        {
            minidb::ExecResult::Rows(r) => Ok(PortOutcome::Rows(r)),
            minidb::ExecResult::Affected(n) => Ok(PortOutcome::Affected(n)),
            minidb::ExecResult::Created => Ok(PortOutcome::Affected(0)),
        }
    }
}

/// One request to an application: which handler, as whom, with what
/// parameters. Used by workload generators and the mining pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Handler to invoke.
    pub handler: String,
    /// Session fields (e.g. `MyUId = 1`).
    pub session: Vec<(String, Value)>,
    /// Request parameters.
    pub params: Vec<(String, Value)>,
}

/// A handler run's final status.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Completed normally.
    Ok,
    /// Terminated with an HTTP error (`abort(code)`).
    Http(u16),
    /// A query was blocked by the enforcement layer.
    Blocked {
        /// The blocked SQL template.
        sql: String,
    },
}

/// One query issued during a run.
#[derive(Debug, Clone, PartialEq)]
pub struct IssuedQuery {
    /// The SQL template as written in the program.
    pub sql: String,
    /// The parameter bindings used.
    pub bindings: Vec<(String, Value)>,
    /// Rows returned (0 for DML).
    pub row_count: usize,
    /// Whether the result was emitted to the user.
    pub emitted: bool,
}

/// Data emitted to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum Emitted {
    /// A whole result set.
    Rows(Rows),
    /// A single scalar.
    Scalar(Value),
}

/// The complete record of one handler run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Final status.
    pub outcome: Outcome,
    /// Everything shown to the user, in order.
    pub emitted: Vec<Emitted>,
    /// Every query issued, in order.
    pub queries: Vec<IssuedQuery>,
}

impl RunResult {
    /// `true` if the run completed without abort or block.
    pub fn ok(&self) -> bool {
        self.outcome == Outcome::Ok
    }
}

/// Interpreter limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum statements executed (runaway-loop guard).
    pub max_steps: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits { max_steps: 100_000 }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum RtVal {
    Scalar(Value),
    /// A result set, with the index of the producing query (provenance for
    /// emitted-data tracking).
    Rows(Rows, Option<usize>),
    Row {
        columns: Vec<String>,
        values: Vec<Value>,
        source: Option<usize>,
    },
}

impl RtVal {
    /// The producing query's index, if the value carries one.
    fn source_query(&self) -> Option<usize> {
        match self {
            RtVal::Rows(_, src) | RtVal::Row { source: src, .. } => *src,
            RtVal::Scalar(_) => None,
        }
    }
}

enum Flow {
    Normal,
    Return,
    Abort(u16),
    Blocked(String),
}

struct Interp<'a> {
    port: &'a mut dyn QueryPort,
    session: &'a [(String, Value)],
    params: &'a [(String, Value)],
    vars: Vec<(String, RtVal)>,
    result: RunResult,
    steps: usize,
    limits: Limits,
}

/// Runs a handler against a port.
///
/// `session` holds the session fields (shared namespace with the policy's
/// parameters, e.g. `MyUId`); `params` holds the request parameters.
pub fn run_handler(
    port: &mut dyn QueryPort,
    handler: &Handler,
    session: &[(String, Value)],
    params: &[(String, Value)],
    limits: Limits,
) -> Result<RunResult, DslError> {
    for p in &handler.params {
        if !params.iter().any(|(n, _)| n == p) {
            return Err(DslError::Unbound(format!("request parameter {p}")));
        }
    }
    let mut interp = Interp {
        port,
        session,
        params,
        vars: Vec::new(),
        result: RunResult {
            outcome: Outcome::Ok,
            emitted: Vec::new(),
            queries: Vec::new(),
        },
        steps: 0,
        limits,
    };
    let flow = interp.block(&handler.body)?;
    interp.result.outcome = match flow {
        Flow::Normal | Flow::Return => Outcome::Ok,
        Flow::Abort(code) => Outcome::Http(code),
        Flow::Blocked(sql) => Outcome::Blocked { sql },
    };
    Ok(interp.result)
}

impl<'a> Interp<'a> {
    fn tick(&mut self) -> Result<(), DslError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(DslError::StepBudgetExceeded);
        }
        Ok(())
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<Flow, DslError> {
        for s in stmts {
            match self.stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Flow, DslError> {
        self.tick()?;
        match s {
            Stmt::Let { var, expr } => match self.eval(expr)? {
                Err(sql) => Ok(Flow::Blocked(sql)),
                Ok(v) => {
                    self.set_var(var, v);
                    Ok(Flow::Normal)
                }
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = match self.eval(cond)? {
                    Err(sql) => return Ok(Flow::Blocked(sql)),
                    Ok(v) => v,
                };
                if truthy(&c)? {
                    self.block(then_branch)
                } else {
                    self.block(else_branch)
                }
            }
            Stmt::ForRow { var, rows, body } => {
                let rv = match self.eval(rows)? {
                    Err(sql) => return Ok(Flow::Blocked(sql)),
                    Ok(v) => v,
                };
                let RtVal::Rows(rows, source) = rv else {
                    return Err(DslError::Kind("for-in expects a rows value".into()));
                };
                for row in &rows.rows {
                    self.set_var(
                        var,
                        RtVal::Row {
                            columns: rows.columns.clone(),
                            values: row.clone(),
                            source,
                        },
                    );
                    match self.block(body)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Emit { expr } => {
                // Mark SQL issued directly in an emit as emitted-to-user.
                let emitted_directly = matches!(expr, DExpr::Sql { .. });
                let v = match self.eval(expr)? {
                    Err(sql) => return Ok(Flow::Blocked(sql)),
                    Ok(v) => v,
                };
                if emitted_directly {
                    if let Some(q) = self.result.queries.last_mut() {
                        q.emitted = true;
                    }
                }
                // Data-flow marking: the emitted value's own provenance,
                // plus any rows-typed variable the expression touched
                // (covers `emit rows.count()` and `emit row.Col`).
                if let Some(idx) = v.source_query() {
                    if let Some(q) = self.result.queries.get_mut(idx) {
                        q.emitted = true;
                    }
                }
                let mut sources: Vec<usize> = Vec::new();
                collect_var_sources(expr, &self.vars, &mut sources);
                for idx in sources {
                    if let Some(q) = self.result.queries.get_mut(idx) {
                        q.emitted = true;
                    }
                }
                match v {
                    RtVal::Rows(r, _) => self.result.emitted.push(Emitted::Rows(r)),
                    RtVal::Scalar(v) => self.result.emitted.push(Emitted::Scalar(v)),
                    RtVal::Row {
                        values, columns, ..
                    } => self.result.emitted.push(Emitted::Rows(Rows {
                        columns,
                        rows: vec![values],
                    })),
                }
                Ok(Flow::Normal)
            }
            Stmt::Run { sql } => match self.issue(sql)? {
                Err(blocked_sql) => Ok(Flow::Blocked(blocked_sql)),
                Ok(_) => Ok(Flow::Normal),
            },
            Stmt::Abort { code } => Ok(Flow::Abort(*code)),
            Stmt::Return => Ok(Flow::Return),
        }
    }

    fn set_var(&mut self, name: &str, v: RtVal) {
        if let Some(slot) = self.vars.iter_mut().find(|(n, _)| n == name) {
            slot.1 = v;
        } else {
            self.vars.push((name.to_string(), v));
        }
    }

    /// Resolves the named parameters a SQL string needs, then issues it.
    /// Returns `Err(sql)` inside `Ok` when the enforcement layer blocked it.
    #[allow(clippy::type_complexity)]
    fn issue(&mut self, sql: &str) -> Result<Result<RtVal, String>, DslError> {
        let stmt = sqlir::parse_statement(sql).map_err(|e| DslError::Port(e.to_string()))?;
        let (named, _positional) = sqlir::collect_params(&stmt);
        let mut bindings = Vec::new();
        for name in named {
            let v = self.resolve_scalar(&name)?;
            bindings.push((name, v));
        }
        let outcome = self.port.run(sql, &bindings)?;
        let issued_index = self.result.queries.len();
        let (val, count) = match outcome {
            PortOutcome::Rows(r) => {
                let n = r.len();
                (RtVal::Rows(r, Some(issued_index)), n)
            }
            PortOutcome::Affected(n) => (RtVal::Scalar(Value::Int(n as i64)), n),
            PortOutcome::Blocked(_reason) => {
                self.result.queries.push(IssuedQuery {
                    sql: sql.to_string(),
                    bindings,
                    row_count: 0,
                    emitted: false,
                });
                return Ok(Err(sql.to_string()));
            }
        };
        self.result.queries.push(IssuedQuery {
            sql: sql.to_string(),
            bindings,
            row_count: count,
            emitted: false,
        });
        Ok(Ok(val))
    }

    /// Resolution order for `?name` in SQL and bare names in expressions:
    /// let-bound scalars, then request parameters, then session fields.
    fn resolve_scalar(&self, name: &str) -> Result<Value, DslError> {
        if let Some((_, v)) = self.vars.iter().find(|(n, _)| n == name) {
            return match v {
                RtVal::Scalar(s) => Ok(s.clone()),
                _ => Err(DslError::Kind(format!("{name} is not a scalar"))),
            };
        }
        if let Some((_, v)) = self.params.iter().find(|(n, _)| n == name) {
            return Ok(v.clone());
        }
        if let Some((_, v)) = self.session.iter().find(|(n, _)| n == name) {
            return Ok(v.clone());
        }
        Err(DslError::UnresolvedSqlParam(name.to_string()))
    }

    #[allow(clippy::type_complexity)]
    fn eval(&mut self, e: &DExpr) -> Result<Result<RtVal, String>, DslError> {
        self.tick()?;
        Ok(match e {
            DExpr::Lit(v) => Ok(RtVal::Scalar(v.clone())),
            DExpr::Param(p) => match self.params.iter().find(|(n, _)| n == p) {
                Some((_, v)) => Ok(RtVal::Scalar(v.clone())),
                None => return Err(DslError::Unbound(format!("params.{p}"))),
            },
            DExpr::Session(s) => match self.session.iter().find(|(n, _)| n == s) {
                Some((_, v)) => Ok(RtVal::Scalar(v.clone())),
                None => return Err(DslError::Unbound(format!("session.{s}"))),
            },
            DExpr::Var(v) => match self.vars.iter().find(|(n, _)| n == v) {
                Some((_, val)) => Ok(val.clone()),
                None => return Err(DslError::Unbound(v.clone())),
            },
            DExpr::Sql { sql } => self.issue(sql)?,
            DExpr::IsEmpty(inner) => match self.eval(inner)? {
                Err(b) => Err(b),
                Ok(RtVal::Rows(r, _)) => Ok(RtVal::Scalar(Value::Bool(r.is_empty()))),
                Ok(_) => return Err(DslError::Kind("is_empty() expects rows".into())),
            },
            DExpr::Count(inner) => match self.eval(inner)? {
                Err(b) => Err(b),
                Ok(RtVal::Rows(r, _)) => Ok(RtVal::Scalar(Value::Int(r.len() as i64))),
                Ok(_) => return Err(DslError::Kind("count() expects rows".into())),
            },
            DExpr::Field { base, column } => match self.eval(base)? {
                Err(b) => Err(b),
                Ok(RtVal::Rows(r, _)) => {
                    let idx = r
                        .column_index(column)
                        .ok_or_else(|| DslError::Kind(format!("no column {column}")))?;
                    match r.rows.first() {
                        Some(row) => Ok(RtVal::Scalar(row[idx].clone())),
                        None => Ok(RtVal::Scalar(Value::Null)),
                    }
                }
                Ok(RtVal::Row {
                    columns, values, ..
                }) => {
                    let idx = columns
                        .iter()
                        .position(|c| c == column)
                        .ok_or_else(|| DslError::Kind(format!("no column {column}")))?;
                    Ok(RtVal::Scalar(values[idx].clone()))
                }
                Ok(RtVal::Scalar(_)) => {
                    return Err(DslError::Kind(format!(
                        "field access .{column} on a scalar"
                    )))
                }
            },
            DExpr::Not(inner) => match self.eval(inner)? {
                Err(b) => Err(b),
                Ok(v) => Ok(RtVal::Scalar(Value::Bool(!truthy(&v)?))),
            },
            DExpr::Binary { op, lhs, rhs } => {
                let l = match self.eval(lhs)? {
                    Err(b) => return Ok(Err(b)),
                    Ok(v) => v,
                };
                // Short-circuit logical operators.
                if *op == DBinOp::And && !truthy(&l)? {
                    return Ok(Ok(RtVal::Scalar(Value::Bool(false))));
                }
                if *op == DBinOp::Or && truthy(&l)? {
                    return Ok(Ok(RtVal::Scalar(Value::Bool(true))));
                }
                let r = match self.eval(rhs)? {
                    Err(b) => return Ok(Err(b)),
                    Ok(v) => v,
                };
                match op {
                    DBinOp::And | DBinOp::Or => Ok(RtVal::Scalar(Value::Bool(truthy(&r)?))),
                    cmp => {
                        let (RtVal::Scalar(a), RtVal::Scalar(b)) = (&l, &r) else {
                            return Err(DslError::Kind("comparison on non-scalars".into()));
                        };
                        let res = match a.sql_cmp(b) {
                            None => CmpResult::Unknown,
                            Some(ord) => {
                                use std::cmp::Ordering::*;
                                CmpResult::from_bool(match cmp {
                                    DBinOp::Eq => ord == Equal,
                                    DBinOp::Ne => ord != Equal,
                                    DBinOp::Lt => ord == Less,
                                    DBinOp::Le => ord != Greater,
                                    DBinOp::Gt => ord == Greater,
                                    DBinOp::Ge => ord != Less,
                                    DBinOp::And | DBinOp::Or => unreachable!(),
                                })
                            }
                        };
                        Ok(RtVal::Scalar(Value::Bool(res.is_true())))
                    }
                }
            }
        })
    }
}

/// Collects the producing-query indices of rows-typed variables referenced
/// anywhere in an expression (the data-flow half of emitted-data marking).
fn collect_var_sources(expr: &DExpr, vars: &[(String, RtVal)], out: &mut Vec<usize>) {
    match expr {
        DExpr::Var(v) => {
            if let Some((_, val)) = vars.iter().find(|(n, _)| n == v) {
                if let Some(idx) = val.source_query() {
                    if !out.contains(&idx) {
                        out.push(idx);
                    }
                }
            }
        }
        DExpr::Lit(_) | DExpr::Param(_) | DExpr::Session(_) | DExpr::Sql { .. } => {}
        DExpr::IsEmpty(inner) | DExpr::Count(inner) | DExpr::Not(inner) => {
            collect_var_sources(inner, vars, out)
        }
        DExpr::Field { base, .. } => collect_var_sources(base, vars, out),
        DExpr::Binary { lhs, rhs, .. } => {
            collect_var_sources(lhs, vars, out);
            collect_var_sources(rhs, vars, out);
        }
    }
}

/// DSL truthiness: booleans as themselves; `NULL` is false; anything else is
/// a kind error (no implicit int-to-bool coercion).
fn truthy(v: &RtVal) -> Result<bool, DslError> {
    match v {
        RtVal::Scalar(Value::Bool(b)) => Ok(*b),
        RtVal::Scalar(Value::Null) => Ok(false),
        other => Err(DslError::Kind(format!("expected boolean, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_handler;
    use minidb::Database;

    fn calendar_db() -> Database {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), \
             (3, 'party', 'fun')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')",
        )
        .unwrap();
        db
    }

    const LISTING_1: &str = r#"
        handler show_event(event_id) {
            let rows = sql("SELECT 1 FROM Attendance
                            WHERE UId = ?MyUId AND EId = ?event_id");
            if rows.is_empty() {
                abort(404);
            }
            emit sql("SELECT * FROM Events WHERE EId = ?event_id");
        }
    "#;

    fn session(uid: i64) -> Vec<(String, Value)> {
        vec![("MyUId".to_string(), Value::Int(uid))]
    }

    #[test]
    fn listing_1_happy_path() {
        let mut db = calendar_db();
        let h = parse_handler(LISTING_1).unwrap();
        let r = run_handler(
            &mut db,
            &h,
            &session(1),
            &[("event_id".into(), Value::Int(2))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);
        assert_eq!(r.queries.len(), 2);
        assert!(!r.queries[0].emitted, "the access check is not shown");
        assert!(r.queries[1].emitted, "the event fetch is shown");
        match &r.emitted[0] {
            Emitted::Rows(rows) => assert_eq!(rows.rows[0][1], Value::str("standup")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn listing_1_denies_non_attendee() {
        let mut db = calendar_db();
        let h = parse_handler(LISTING_1).unwrap();
        let r = run_handler(
            &mut db,
            &h,
            &session(1),
            &[("event_id".into(), Value::Int(3))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Http(404));
        assert_eq!(r.queries.len(), 1, "the fetch is never issued");
    }

    #[test]
    fn loops_iterate_rows() {
        let mut db = calendar_db();
        let h = parse_handler(
            r#"
            handler my_event_kinds() {
                let rs = sql("SELECT EId FROM Attendance WHERE UId = ?MyUId");
                for r in rs {
                    let e = sql("SELECT Kind FROM Events WHERE EId = ?eid");
                    emit e;
                }
            }
            "#,
        );
        // `?eid` must resolve against the loop row — which needs a let
        // binding of the scalar first.
        let h = h.unwrap();
        let err = run_handler(&mut db, &h, &session(1), &[], Limits::default()).unwrap_err();
        assert!(matches!(err, DslError::UnresolvedSqlParam(_)));

        let h = parse_handler(
            r#"
            handler my_event_kinds() {
                let rs = sql("SELECT EId FROM Attendance WHERE UId = ?MyUId");
                for r in rs {
                    let eid = r.EId;
                    let e = sql("SELECT Kind FROM Events WHERE EId = ?eid");
                    emit e;
                }
            }
            "#,
        )
        .unwrap();
        let r = run_handler(&mut db, &h, &session(2), &[], Limits::default()).unwrap();
        assert_eq!(r.outcome, Outcome::Ok);
        assert_eq!(r.emitted.len(), 1);
        match &r.emitted[0] {
            Emitted::Rows(rows) => assert_eq!(rows.rows[0][0], Value::str("fun")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn field_and_comparison() {
        let mut db = calendar_db();
        let h = parse_handler(
            r#"
            handler kind_gate(event_id) {
                let e = sql("SELECT Kind FROM Events WHERE EId = ?event_id");
                if e.is_empty() {
                    abort(404);
                }
                if e.first.Kind == "work" {
                    emit 1;
                } else {
                    emit 0;
                }
            }
            "#,
        )
        .unwrap();
        let r = run_handler(
            &mut db,
            &h,
            &session(1),
            &[("event_id".into(), Value::Int(2))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.emitted, vec![Emitted::Scalar(Value::Int(1))]);
    }

    #[test]
    fn run_executes_dml() {
        let mut db = calendar_db();
        let h = parse_handler(
            r#"
            handler join_event(event_id) {
                run sql("INSERT INTO Attendance (UId, EId, Notes)
                         VALUES (?MyUId, ?event_id, NULL)");
            }
            "#,
        )
        .unwrap();
        run_handler(
            &mut db,
            &h,
            &session(1),
            &[("event_id".into(), Value::Int(3))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(db.table("Attendance").unwrap().len(), 3);
    }

    #[test]
    fn step_budget_stops_runaway() {
        let mut db = calendar_db();
        let h = parse_handler(
            r#"
            handler spin() {
                let rs = sql("SELECT EId FROM Events");
                for a in rs {
                    for b in rs {
                        emit 1;
                    }
                }
            }
            "#,
        )
        .unwrap();
        let err = run_handler(&mut db, &h, &session(1), &[], Limits { max_steps: 5 }).unwrap_err();
        assert_eq!(err, DslError::StepBudgetExceeded);
    }

    #[test]
    fn missing_request_param_is_an_error() {
        let mut db = calendar_db();
        let h = parse_handler(LISTING_1).unwrap();
        let err = run_handler(&mut db, &h, &session(1), &[], Limits::default()).unwrap_err();
        assert!(matches!(err, DslError::Unbound(_)));
    }
}
