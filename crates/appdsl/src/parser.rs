//! Parser for the handler language.
//!
//! Example program (Listing 1 of the paper):
//!
//! ```text
//! handler show_event(event_id) {
//!     let rows = sql("SELECT 1 FROM Attendance
//!                     WHERE UId = ?MyUId AND EId = ?event_id");
//!     if rows.is_empty() {
//!         abort(404);
//!     }
//!     emit sql("SELECT * FROM Events WHERE EId = ?event_id");
//! }
//! ```
//!
//! SQL strings are double-quoted (so SQL's single-quoted literals nest
//! without escaping); `.first` is optional sugar — a field access on a rows
//! value reads the first row.

use sqlir::Value;

use crate::ast::{App, DBinOp, DExpr, Handler, Stmt};
use crate::error::DslError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Dot,
    Comma,
    Semi,
    Assign,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

fn lex(input: &str) -> Result<Vec<(Tok, usize)>, DslError> {
    let b = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        match b[i] as char {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push((Tok::LParen, start));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, start));
                i += 1;
            }
            '{' => {
                toks.push((Tok::LBrace, start));
                i += 1;
            }
            '}' => {
                toks.push((Tok::RBrace, start));
                i += 1;
            }
            '.' => {
                toks.push((Tok::Dot, start));
                i += 1;
            }
            ',' => {
                toks.push((Tok::Comma, start));
                i += 1;
            }
            ';' => {
                toks.push((Tok::Semi, start));
                i += 1;
            }
            '=' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::EqEq, start));
                    i += 2;
                } else {
                    toks.push((Tok::Assign, start));
                    i += 1;
                }
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::NotEq, start));
                    i += 2;
                } else {
                    toks.push((Tok::Bang, start));
                    i += 1;
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Le, start));
                    i += 2;
                } else {
                    toks.push((Tok::Lt, start));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    toks.push((Tok::Ge, start));
                    i += 2;
                } else {
                    toks.push((Tok::Gt, start));
                    i += 1;
                }
            }
            '&' if b.get(i + 1) == Some(&b'&') => {
                toks.push((Tok::AndAnd, start));
                i += 2;
            }
            '|' if b.get(i + 1) == Some(&b'|') => {
                toks.push((Tok::OrOr, start));
                i += 2;
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(DslError::parse("unterminated string", start));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if b.get(i + 1) == Some(&b'"') => {
                            s.push('"');
                            i += 2;
                        }
                        _ => {
                            let len = match b[i] {
                                0x00..=0x7f => 1,
                                0xc0..=0xdf => 2,
                                0xe0..=0xef => 3,
                                _ => 4,
                            };
                            s.push_str(&input[i..i + len]);
                            i += len;
                        }
                    }
                }
                toks.push((Tok::Str(s), start));
            }
            '0'..='9' => {
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let v = input[start..i]
                    .parse()
                    .map_err(|_| DslError::parse("integer out of range", start))?;
                toks.push((Tok::Int(v), start));
            }
            '-' if b.get(i + 1).map(|c| c.is_ascii_digit()).unwrap_or(false) => {
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let v = input[start..i]
                    .parse()
                    .map_err(|_| DslError::parse("integer out of range", start))?;
                toks.push((Tok::Int(v), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(input[start..i].to_string()), start));
            }
            other => {
                return Err(DslError::parse(
                    format!("unexpected character `{other}`"),
                    start,
                ))
            }
        }
    }
    toks.push((Tok::Eof, input.len()));
    Ok(toks)
}

/// Parses a whole application (one or more handlers).
pub fn parse_app(input: &str) -> Result<App, DslError> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let mut handlers = Vec::new();
    while p.peek() != &Tok::Eof {
        handlers.push(p.handler()?);
    }
    Ok(App { handlers })
}

/// Parses a single handler.
pub fn parse_handler(input: &str) -> Result<Handler, DslError> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let h = p.handler()?;
    if p.peek() != &Tok::Eof {
        return Err(p.err("trailing input after handler"));
    }
    Ok(h)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        DslError::parse(msg, self.offset())
    }

    fn expect(&mut self, t: Tok) -> Result<(), DslError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, DslError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DslError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn handler(&mut self) -> Result<Handler, DslError> {
        self.expect_kw("handler")?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                params.push(self.ident()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Handler { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, DslError> {
        self.expect(Tok::LBrace)?;
        let mut out = Vec::new();
        while self.peek() != &Tok::RBrace {
            out.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, DslError> {
        if self.eat_kw("let") {
            let var = self.ident()?;
            self.expect(Tok::Assign)?;
            let expr = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Let { var, expr });
        }
        if self.eat_kw("if") {
            let cond = self.expr()?;
            let then_branch = self.block()?;
            let else_branch = if self.eat_kw("else") {
                if matches!(self.peek(), Tok::Ident(s) if s == "if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_branch,
                else_branch,
            });
        }
        if self.eat_kw("for") {
            let var = self.ident()?;
            self.expect_kw("in")?;
            let rows = self.expr()?;
            let body = self.block()?;
            return Ok(Stmt::ForRow { var, rows, body });
        }
        if self.eat_kw("emit") {
            let expr = self.expr()?;
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Emit { expr });
        }
        if self.eat_kw("run") {
            self.expect_kw("sql")?;
            self.expect(Tok::LParen)?;
            let sql = match self.bump() {
                Tok::Str(s) => s,
                other => return Err(self.err(format!("expected SQL string, found {other:?}"))),
            };
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Run { sql });
        }
        if self.eat_kw("abort") {
            self.expect(Tok::LParen)?;
            let code = match self.bump() {
                Tok::Int(i) if (100..=599).contains(&i) => i as u16,
                other => return Err(self.err(format!("expected HTTP status, found {other:?}"))),
            };
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Abort { code });
        }
        if self.eat_kw("return") {
            self.expect(Tok::Semi)?;
            return Ok(Stmt::Return);
        }
        Err(self.err(format!("expected statement, found {:?}", self.peek())))
    }

    fn expr(&mut self) -> Result<DExpr, DslError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<DExpr, DslError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = DExpr::Binary {
                op: DBinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<DExpr, DslError> {
        let mut lhs = self.not_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = DExpr::Binary {
                op: DBinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<DExpr, DslError> {
        if self.peek() == &Tok::Bang {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(DExpr::Not(Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<DExpr, DslError> {
        let lhs = self.postfix()?;
        let op = match self.peek() {
            Tok::EqEq => Some(DBinOp::Eq),
            Tok::NotEq => Some(DBinOp::Ne),
            Tok::Lt => Some(DBinOp::Lt),
            Tok::Le => Some(DBinOp::Le),
            Tok::Gt => Some(DBinOp::Gt),
            Tok::Ge => Some(DBinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.postfix()?;
            return Ok(DExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn postfix(&mut self) -> Result<DExpr, DslError> {
        let mut base = self.primary()?;
        while self.peek() == &Tok::Dot {
            self.bump();
            let name = self.ident()?;
            match name.as_str() {
                "is_empty" => {
                    self.expect(Tok::LParen)?;
                    self.expect(Tok::RParen)?;
                    base = DExpr::IsEmpty(Box::new(base));
                }
                "count" => {
                    self.expect(Tok::LParen)?;
                    self.expect(Tok::RParen)?;
                    base = DExpr::Count(Box::new(base));
                }
                "first" => { /* sugar: field access on rows reads row 0 */ }
                column => {
                    base = DExpr::Field {
                        base: Box::new(base),
                        column: column.to_string(),
                    }
                }
            }
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<DExpr, DslError> {
        match self.bump() {
            Tok::Int(i) => Ok(DExpr::Lit(Value::Int(i))),
            Tok::Str(s) => Ok(DExpr::Lit(Value::Str(s))),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(DExpr::Lit(Value::Bool(true))),
                "false" => Ok(DExpr::Lit(Value::Bool(false))),
                "null" => Ok(DExpr::Lit(Value::Null)),
                "sql" => {
                    self.expect(Tok::LParen)?;
                    let sql = match self.bump() {
                        Tok::Str(s) => s,
                        other => {
                            return Err(self.err(format!("expected SQL string, found {other:?}")))
                        }
                    };
                    self.expect(Tok::RParen)?;
                    Ok(DExpr::Sql { sql })
                }
                "params" => {
                    self.expect(Tok::Dot)?;
                    Ok(DExpr::Param(self.ident()?))
                }
                "session" => {
                    self.expect(Tok::Dot)?;
                    Ok(DExpr::Session(self.ident()?))
                }
                _ => Ok(DExpr::Var(name)),
            },
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 1 of the paper, in the DSL.
    pub const LISTING_1: &str = r#"
        handler show_event(event_id) {
            let rows = sql("SELECT 1 FROM Attendance
                            WHERE UId = ?MyUId AND EId = ?event_id");
            if rows.is_empty() {
                abort(404);
            }
            emit sql("SELECT * FROM Events WHERE EId = ?event_id");
        }
    "#;

    #[test]
    fn parses_listing_1() {
        let h = parse_handler(LISTING_1).unwrap();
        assert_eq!(h.name, "show_event");
        assert_eq!(h.params, vec!["event_id"]);
        assert_eq!(h.body.len(), 3);
        assert!(matches!(&h.body[0], Stmt::Let { var, .. } if var == "rows"));
        assert!(matches!(&h.body[1], Stmt::If { .. }));
        assert!(matches!(&h.body[2], Stmt::Emit { .. }));
    }

    #[test]
    fn parses_loops_and_fields() {
        let h = parse_handler(
            r#"
            handler list(x) {
                let rs = sql("SELECT EId FROM Attendance WHERE UId = ?MyUId");
                for r in rs {
                    emit r.EId;
                }
            }
            "#,
        )
        .unwrap();
        match &h.body[1] {
            Stmt::ForRow { var, body, .. } => {
                assert_eq!(var, "r");
                assert!(matches!(
                    &body[0],
                    Stmt::Emit { expr: DExpr::Field { column, .. } } if column == "EId"
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_conditions() {
        let h = parse_handler(
            r#"
            handler f() {
                let r = sql("SELECT Kind FROM Events WHERE EId = 1");
                if !r.is_empty() && r.first.Kind == "work" || r.count() > 3 {
                    return;
                } else {
                    abort(403);
                }
            }
            "#,
        )
        .unwrap();
        assert!(matches!(&h.body[1], Stmt::If { else_branch, .. } if else_branch.len() == 1));
    }

    #[test]
    fn parses_else_if_chain() {
        let h = parse_handler(
            r#"
            handler f(x) {
                if params.x == 1 {
                    return;
                } else if params.x == 2 {
                    abort(400);
                } else {
                    abort(404);
                }
            }
            "#,
        )
        .unwrap();
        match &h.body[0] {
            Stmt::If { else_branch, .. } => {
                assert!(matches!(&else_branch[0], Stmt::If { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_app_with_multiple_handlers() {
        let app = parse_app(
            r#"
            handler a() { return; }
            handler b(x) { run sql("DELETE FROM t WHERE id = ?x"); }
            "#,
        )
        .unwrap();
        assert_eq!(app.handlers.len(), 2);
        assert!(app.handler("b").is_some());
    }

    #[test]
    fn sql_strings_keep_single_quotes() {
        let h = parse_handler(r#"handler f() { emit sql("SELECT 1 FROM t WHERE k = 'it''s'"); }"#)
            .unwrap();
        let mut seen = Vec::new();
        h.body[0].walk_sql(&mut |s| seen.push(s.to_string()));
        assert!(seen[0].contains("'it''s'"));
    }

    #[test]
    fn reports_parse_errors_with_position() {
        let err = parse_handler("handler f( { }").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}
