//! AST of the application handler language.
//!
//! The language is deliberately small — it is the shape of real web-handler
//! code (Listing 1 of the paper) distilled to what matters for access
//! control: issuing SQL, branching on results, looping over rows, and
//! emitting data to the user.

use sqlir::Value;

/// A complete application: a set of named handlers.
#[derive(Debug, Clone, PartialEq)]
pub struct App {
    /// The handlers, in declaration order.
    pub handlers: Vec<Handler>,
}

impl App {
    /// Looks up a handler by name.
    pub fn handler(&self, name: &str) -> Option<&Handler> {
        self.handlers.iter().find(|h| h.name == name)
    }
}

/// One request handler.
#[derive(Debug, Clone, PartialEq)]
pub struct Handler {
    /// Handler (route) name.
    pub name: String,
    /// Request parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = <expr>;`
    Let {
        /// Bound variable.
        var: String,
        /// Initializer.
        expr: DExpr,
    },
    /// `if <cond> { ... } else { ... }`
    If {
        /// Condition.
        cond: DExpr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `for row in <expr> { ... }` — iterate over a rows value.
    ForRow {
        /// Loop variable (bound to each row).
        var: String,
        /// The rows expression.
        rows: DExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `emit <expr>;` — append data to the response.
    Emit {
        /// The emitted expression (rows or scalar).
        expr: DExpr,
    },
    /// `run sql("...");` — execute DML for its side effect.
    Run {
        /// The SQL text (may contain named parameters).
        sql: String,
    },
    /// `abort(404);` — terminate with an HTTP error.
    Abort {
        /// HTTP status code.
        code: u16,
    },
    /// `return;` — terminate normally.
    Return,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum DExpr {
    /// A literal value.
    Lit(Value),
    /// `params.<name>` — a request parameter.
    Param(String),
    /// `session.<name>` — a session field (shares the policy's namespace,
    /// e.g. `session.MyUId`).
    Session(String),
    /// A `let`-bound or loop variable.
    Var(String),
    /// `sql("...")` — issue a query, producing a rows value.
    Sql {
        /// The SQL text (may contain named parameters).
        sql: String,
    },
    /// `<rows>.is_empty()`.
    IsEmpty(Box<DExpr>),
    /// `<rows>.count()` — the number of rows, as an integer.
    Count(Box<DExpr>),
    /// `<rows>.first.<col>` or `<rowvar>.<col>` — a cell value.
    Field {
        /// The rows/row expression.
        base: Box<DExpr>,
        /// Column name.
        column: String,
    },
    /// Comparison or boolean combination.
    Binary {
        /// Operator.
        op: DBinOp,
        /// Left operand.
        lhs: Box<DExpr>,
        /// Right operand.
        rhs: Box<DExpr>,
    },
    /// Logical negation.
    Not(Box<DExpr>),
}

/// Binary operators of the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DBinOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl Stmt {
    /// Visits every SQL string in this statement (queries and DML).
    pub fn walk_sql(&self, f: &mut dyn FnMut(&str)) {
        match self {
            Stmt::Let { expr, .. } | Stmt::Emit { expr } => expr.walk_sql(f),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.walk_sql(f);
                for s in then_branch.iter().chain(else_branch) {
                    s.walk_sql(f);
                }
            }
            Stmt::ForRow { rows, body, .. } => {
                rows.walk_sql(f);
                for s in body {
                    s.walk_sql(f);
                }
            }
            Stmt::Run { sql } => f(sql),
            Stmt::Abort { .. } | Stmt::Return => {}
        }
    }
}

impl DExpr {
    /// Visits every SQL string in this expression.
    pub fn walk_sql(&self, f: &mut dyn FnMut(&str)) {
        match self {
            DExpr::Sql { sql } => f(sql),
            DExpr::IsEmpty(e) | DExpr::Count(e) | DExpr::Not(e) => e.walk_sql(f),
            DExpr::Field { base, .. } => base.walk_sql(f),
            DExpr::Binary { lhs, rhs, .. } => {
                lhs.walk_sql(f);
                rhs.walk_sql(f);
            }
            DExpr::Lit(_) | DExpr::Param(_) | DExpr::Session(_) | DExpr::Var(_) => {}
        }
    }
}
