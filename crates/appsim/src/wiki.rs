//! A wiki with group-scoped documents — the fifth application.
//!
//! Its role in the evaluation is to exercise the parts of the §3.2.2 mining
//! pipeline the other apps don't stress:
//!
//! * the `show_doc` handler issues an *analytics probe* whose result never
//!   gates anything — the correlation heuristic conjoins it and invariant
//!   workloads pin its group id, which only **active constraint discovery**
//!   can generalize away (every document in the seeded data lives in one of
//!   two groups, and test workloads tend to touch one);
//! * the membership gate flows a *field-linked* value (the document's
//!   group) into the check, the pattern that needs key dependencies.

use crate::simapp::SimApp;

/// The wiki application definition.
pub const WIKI: SimApp = SimApp {
    name: "wiki",
    ddl: &[
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Spaces (SId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Access (UId INT NOT NULL, SId INT NOT NULL, \
         PRIMARY KEY (UId, SId), \
         FOREIGN KEY (UId) REFERENCES Users (UId), \
         FOREIGN KEY (SId) REFERENCES Spaces (SId))",
        "CREATE TABLE Docs (DId INT PRIMARY KEY, SId INT NOT NULL, Title TEXT NOT NULL, \
         Body TEXT NOT NULL, \
         FOREIGN KEY (SId) REFERENCES Spaces (SId))",
    ],
    source: r#"
        handler show_doc(doc_id) {
            let meta = sql("SELECT SId, Title FROM Docs WHERE DId = ?doc_id");
            if meta.is_empty() {
                abort(404);
            }
            let sid = meta.SId;
            // Analytics probe: issued on every hit, result ignored.
            let probe = sql("SELECT 1 FROM Spaces WHERE SId = ?sid");
            let m = sql("SELECT 1 FROM Access WHERE UId = ?MyUId AND SId = ?sid");
            if m.is_empty() {
                abort(403);
            }
            emit sql("SELECT DId, Title, Body FROM Docs WHERE DId = ?doc_id");
        }

        handler my_spaces() {
            emit sql("SELECT s.SId, s.Name FROM Spaces s
                      JOIN Access a ON s.SId = a.SId
                      WHERE a.UId = ?MyUId");
        }

        handler space_docs(space_id) {
            let m = sql("SELECT 1 FROM Access WHERE UId = ?MyUId AND SId = ?space_id");
            if m.is_empty() {
                abort(403);
            }
            emit sql("SELECT DId, Title FROM Docs WHERE SId = ?space_id");
        }
    "#,
    buggy_source: r#"
        // BUG: space listing without the access gate — and it leaks the
        // document bodies, which (unlike titles) the policy protects.
        handler space_docs_nocheck(space_id) {
            emit sql("SELECT DId, Title, Body FROM Docs WHERE SId = ?space_id");
        }
    "#,
    ground_truth: &[
        // Document routing metadata (DId -> SId, Title) is read ungated by
        // the pre-authorization fetch.
        ("DocMeta", "SELECT DId, SId, Title FROM Docs"),
        // The analytics probe reads space existence, always through a
        // document's SId (the probe never sees a doc-less space).
        (
            "DocSpaceProbe",
            "SELECT d.DId, s.SId FROM Spaces s \
             JOIN Docs d ON d.SId = s.SId",
        ),
        ("MyAccess", "SELECT SId FROM Access WHERE UId = ?MyUId"),
        (
            "MySpaces",
            "SELECT s.SId, s.Name FROM Spaces s \
             JOIN Access a ON s.SId = a.SId WHERE a.UId = ?MyUId",
        ),
        (
            "MyDocs",
            "SELECT d.DId, d.Title, d.Body FROM Docs d \
             JOIN Access a ON d.SId = a.SId WHERE a.UId = ?MyUId",
        ),
    ],
    session_params: &["MyUId"],
};

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::{run_handler, Limits, Outcome};
    use sqlir::Value;

    fn seeded() -> minidb::Database {
        let mut db = WIKI.empty_db();
        db.execute_sql("INSERT INTO Users (UId, Name) VALUES (101, 'ann'), (102, 'bob')")
            .unwrap();
        db.execute_sql("INSERT INTO Spaces (SId, Name) VALUES (7, 'eng'), (8, 'ops')")
            .unwrap();
        db.execute_sql("INSERT INTO Access (UId, SId) VALUES (101, 7)")
            .unwrap();
        db.execute_sql(
            "INSERT INTO Docs (DId, SId, Title, Body) VALUES \
             (51, 7, 'road map', 'q3 plans'), (52, 8, 'oncall', 'rotations')",
        )
        .unwrap();
        db
    }

    #[test]
    fn definition_is_wellformed() {
        assert_eq!(WIKI.app().handlers.len(), 3);
        assert_eq!(WIKI.policy().unwrap().len(), 5);
    }

    #[test]
    fn gate_works() {
        let mut db = seeded();
        let app = WIKI.app();
        let ann = vec![("MyUId".to_string(), Value::Int(101))];
        let r = run_handler(
            &mut db,
            app.handler("show_doc").unwrap(),
            &ann,
            &[("doc_id".into(), Value::Int(51))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);
        let r = run_handler(
            &mut db,
            app.handler("show_doc").unwrap(),
            &ann,
            &[("doc_id".into(), Value::Int(52))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Http(403), "no access to space 8");
    }

    #[test]
    fn runs_clean_under_ground_truth_policy() {
        use crate::simapp::ProxyPort;
        let db = seeded();
        let checker = bep_core::ComplianceChecker::new(WIKI.schema(), WIKI.policy().unwrap());
        let proxy = bep_core::SqlProxy::new(db, checker, bep_core::ProxyConfig::default());
        let app = WIKI.app();
        let ann = vec![("MyUId".to_string(), Value::Int(101))];
        for (handler, params) in [
            ("show_doc", vec![("doc_id".to_string(), Value::Int(51))]),
            ("my_spaces", vec![]),
            ("space_docs", vec![("space_id".to_string(), Value::Int(7))]),
        ] {
            let session = proxy.begin_session(ann.clone());
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            let r = run_handler(
                &mut port,
                app.handler(handler).unwrap(),
                &ann,
                &params,
                Limits::default(),
            )
            .unwrap();
            assert!(
                !matches!(r.outcome, Outcome::Blocked { .. }),
                "{handler} blocked: {:?}",
                r.outcome
            );
            proxy.end_session(session);
        }
    }
}
