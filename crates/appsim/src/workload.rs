//! Request workload generation.
//!
//! Workloads mix authorized and unauthorized requests (probing events the
//! user does not attend, groups they are not in) so that enforcement,
//! extraction, and diagnosis all see both sides of every check.

use appdsl::Request;
use minidb::{Database, DbError};
use rand::Rng;
use sqlir::Value;

/// Workload generation failed: the seeded database does not hold the values
/// a generator needs. Silently producing an empty workload here used to
/// mask mis-seeded databases; callers now get a typed error instead.
#[derive(Debug)]
pub enum WorkloadError {
    /// A seed-value scan failed outright.
    Query {
        /// The scan that failed.
        sql: String,
        /// The underlying database error.
        source: DbError,
    },
    /// A seed-value scan returned no usable values.
    Empty {
        /// The scan that came back empty.
        sql: String,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Query { sql, source } => {
                write!(f, "workload seed scan `{sql}` failed: {source}")
            }
            WorkloadError::Empty { sql } => {
                write!(
                    f,
                    "workload seed scan `{sql}` returned no values (mis-seeded database?)"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Query { source, .. } => Some(source),
            WorkloadError::Empty { .. } => None,
        }
    }
}

/// Reads the distinct values of one integer column; errors if the scan
/// fails or yields nothing.
fn int_column(db: &Database, sql: &str) -> Result<Vec<i64>, WorkloadError> {
    let rows = db.query_sql(sql).map_err(|source| WorkloadError::Query {
        sql: sql.to_string(),
        source,
    })?;
    let vals: Vec<i64> = rows.rows.iter().filter_map(|r| r[0].as_int()).collect();
    if vals.is_empty() {
        return Err(WorkloadError::Empty {
            sql: sql.to_string(),
        });
    }
    Ok(vals)
}

fn pick<T: Copy>(rng: &mut impl Rng, items: &[T]) -> Option<T> {
    if items.is_empty() {
        None
    } else {
        Some(items[rng.gen_range(0..items.len())])
    }
}

fn session(uid: i64) -> Vec<(String, Value)> {
    vec![("MyUId".to_string(), Value::Int(uid))]
}

/// Generates a calendar workload of `n` requests.
pub fn calendar_workload(
    db: &Database,
    rng: &mut impl Rng,
    n: usize,
) -> Result<Vec<Request>, WorkloadError> {
    let users = int_column(db, "SELECT UId FROM Users")?;
    let events = int_column(db, "SELECT EId FROM Events")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let Some(uid) = pick(rng, &users) else { break };
        let request = match rng.gen_range(0..10) {
            0..=3 => Request {
                handler: "show_event".into(),
                session: session(uid),
                params: vec![(
                    "event_id".into(),
                    Value::Int(pick(rng, &events).unwrap_or(1)),
                )],
            },
            4..=5 => Request {
                handler: "my_events".into(),
                session: session(uid),
                params: vec![],
            },
            6..=7 => Request {
                handler: "event_notes".into(),
                session: session(uid),
                params: vec![(
                    "event_id".into(),
                    Value::Int(pick(rng, &events).unwrap_or(1)),
                )],
            },
            _ => Request {
                handler: "attendees".into(),
                session: session(uid),
                params: vec![(
                    "event_id".into(),
                    Value::Int(pick(rng, &events).unwrap_or(1)),
                )],
            },
        };
        out.push(request);
    }
    Ok(out)
}

/// Generates a hospital workload (staff sessions carry no parameters).
pub fn hospital_workload(
    db: &Database,
    rng: &mut impl Rng,
    n: usize,
) -> Result<Vec<Request>, WorkloadError> {
    let patients = int_column(db, "SELECT PId FROM Patients")?;
    let doctors = int_column(db, "SELECT DId FROM Doctors")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let request = match rng.gen_range(0..4) {
            0 => Request {
                handler: "patient_doctor".into(),
                session: vec![],
                params: vec![(
                    "patient_id".into(),
                    Value::Int(pick(rng, &patients).unwrap_or(1)),
                )],
            },
            1 => Request {
                handler: "doctor_diseases".into(),
                session: vec![],
                params: vec![(
                    "doctor_id".into(),
                    Value::Int(pick(rng, &doctors).unwrap_or(500)),
                )],
            },
            2 => Request {
                handler: "assignments".into(),
                session: vec![],
                params: vec![],
            },
            _ => Request {
                handler: "specialties".into(),
                session: vec![],
                params: vec![],
            },
        };
        out.push(request);
    }
    Ok(out)
}

const DEPTS: &[&str] = &["eng", "ops", "sales", "legal"];

/// Generates an employees workload.
pub fn employees_workload(
    _db: &Database,
    rng: &mut impl Rng,
    n: usize,
) -> Result<Vec<Request>, WorkloadError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let dept = DEPTS[rng.gen_range(0..DEPTS.len())];
        let request = match rng.gen_range(0..3) {
            0 => Request {
                handler: "directory".into(),
                session: vec![],
                params: vec![],
            },
            1 => Request {
                handler: "dept_list".into(),
                session: vec![],
                params: vec![("dept".into(), Value::str(dept))],
            },
            _ => Request {
                handler: "adult_count".into(),
                session: vec![],
                params: vec![("dept".into(), Value::str(dept))],
            },
        };
        out.push(request);
    }
    Ok(out)
}

/// Generates a forum workload of `n` requests.
pub fn forum_workload(
    db: &Database,
    rng: &mut impl Rng,
    n: usize,
) -> Result<Vec<Request>, WorkloadError> {
    let users = int_column(db, "SELECT UId FROM Users")?;
    let groups = int_column(db, "SELECT GId FROM Groups")?;
    let posts = int_column(db, "SELECT PId FROM Posts")?;
    let mut out = Vec::with_capacity(n);
    let mut next_comment = 900_000i64;
    for _ in 0..n {
        let Some(uid) = pick(rng, &users) else { break };
        let request = match rng.gen_range(0..12) {
            0..=3 => Request {
                handler: "view_post".into(),
                session: session(uid),
                params: vec![(
                    "post_id".into(),
                    Value::Int(pick(rng, &posts).unwrap_or(1000)),
                )],
            },
            4..=5 => Request {
                handler: "group_posts".into(),
                session: session(uid),
                params: vec![(
                    "group_id".into(),
                    Value::Int(pick(rng, &groups).unwrap_or(1)),
                )],
            },
            6..=7 => Request {
                handler: "my_groups".into(),
                session: session(uid),
                params: vec![],
            },
            8 => Request {
                handler: "public_groups".into(),
                session: session(uid),
                params: vec![],
            },
            9..=10 => Request {
                handler: "view_comments".into(),
                session: session(uid),
                params: vec![(
                    "post_id".into(),
                    Value::Int(pick(rng, &posts).unwrap_or(1000)),
                )],
            },
            _ => {
                next_comment += 1;
                Request {
                    handler: "add_comment".into(),
                    session: session(uid),
                    params: vec![
                        (
                            "post_id".into(),
                            Value::Int(pick(rng, &posts).unwrap_or(1000)),
                        ),
                        ("comment_id".into(), Value::Int(next_comment)),
                        ("body".into(), Value::str("generated")),
                    ],
                }
            }
        };
        out.push(request);
    }
    Ok(out)
}

/// Generates a wiki workload of `n` requests.
pub fn wiki_workload(
    db: &Database,
    rng: &mut impl Rng,
    n: usize,
) -> Result<Vec<Request>, WorkloadError> {
    let users = int_column(db, "SELECT UId FROM Users")?;
    let docs = int_column(db, "SELECT DId FROM Docs")?;
    let spaces = int_column(db, "SELECT SId FROM Spaces")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let Some(uid) = pick(rng, &users) else { break };
        let request = match rng.gen_range(0..6) {
            0..=2 => Request {
                handler: "show_doc".into(),
                session: session(uid),
                params: vec![("doc_id".into(), Value::Int(pick(rng, &docs).unwrap_or(100)))],
            },
            3 => Request {
                handler: "my_spaces".into(),
                session: session(uid),
                params: vec![],
            },
            _ => Request {
                handler: "space_docs".into(),
                session: session(uid),
                params: vec![(
                    "space_id".into(),
                    Value::Int(pick(rng, &spaces).unwrap_or(1)),
                )],
            },
        };
        out.push(request);
    }
    Ok(out)
}

/// Generates a workload for the named application.
pub fn workload_for(
    name: &str,
    db: &Database,
    rng: &mut impl Rng,
    n: usize,
) -> Result<Vec<Request>, WorkloadError> {
    match name {
        "calendar" => calendar_workload(db, rng, n),
        "hospital" => hospital_workload(db, rng, n),
        "employees" => employees_workload(db, rng, n),
        "forum" => forum_workload(db, rng, n),
        "wiki" => wiki_workload(db, rng, n),
        other => panic!("unknown app {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{seed_app, Scale};
    use crate::{CALENDAR, EMPLOYEES, FORUM, HOSPITAL, WIKI};
    use appdsl::{run_handler, Limits};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn workloads_execute_cleanly_on_every_app() {
        for app in [&CALENDAR, &HOSPITAL, &EMPLOYEES, &FORUM, &WIKI] {
            let mut rng = SmallRng::seed_from_u64(11);
            let mut db = app.empty_db();
            seed_app(app.name, &mut db, &mut rng, &Scale::small());
            let requests = workload_for(app.name, &db, &mut rng, 30).expect("workload");
            assert_eq!(requests.len(), 30, "{}", app.name);
            let parsed = app.app();
            for req in &requests {
                let handler = parsed.handler(&req.handler).expect("handler exists");
                run_handler(
                    &mut db,
                    handler,
                    &req.session,
                    &req.params,
                    Limits::default(),
                )
                .unwrap_or_else(|e| panic!("{}::{}: {e}", app.name, req.handler));
            }
        }
    }

    #[test]
    fn unseeded_database_is_a_typed_error() {
        let db = CALENDAR.empty_db();
        let mut rng = SmallRng::seed_from_u64(5);
        match calendar_workload(&db, &mut rng, 10) {
            Err(WorkloadError::Empty { sql }) => assert!(sql.contains("Users"), "{sql}"),
            other => panic!("expected Empty error, got {other:?}"),
        }
    }

    #[test]
    fn workload_mixes_outcomes() {
        // At small scale with random probing, the calendar workload must
        // contain both authorized and unauthorized show_event requests.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut db = CALENDAR.empty_db();
        seed_app("calendar", &mut db, &mut rng, &Scale::small());
        let requests = calendar_workload(&db, &mut rng, 60).expect("workload");
        let app = CALENDAR.app();
        let mut ok = 0;
        let mut denied = 0;
        for req in &requests {
            let handler = app.handler(&req.handler).unwrap();
            let r = run_handler(
                &mut db,
                handler,
                &req.session,
                &req.params,
                Limits::default(),
            )
            .unwrap();
            match r.outcome {
                appdsl::Outcome::Ok => ok += 1,
                appdsl::Outcome::Http(_) => denied += 1,
                appdsl::Outcome::Blocked { .. } => {}
            }
        }
        assert!(ok > 0, "some requests succeed");
        assert!(denied > 0, "some requests hit the access check");
    }
}
