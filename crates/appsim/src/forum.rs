//! A group-based forum — the largest simulated application, stressing
//! extraction and enforcement with deeper joins, membership gating, public
//! content, and multi-step handlers.

use crate::simapp::SimApp;

/// The forum application definition.
pub const FORUM: SimApp = SimApp {
    name: "forum",
    ddl: &[
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Groups (GId INT PRIMARY KEY, Name TEXT NOT NULL, Public BOOL NOT NULL)",
        "CREATE TABLE Membership (UId INT NOT NULL, GId INT NOT NULL, Role TEXT NOT NULL, \
         PRIMARY KEY (UId, GId), \
         FOREIGN KEY (UId) REFERENCES Users (UId), \
         FOREIGN KEY (GId) REFERENCES Groups (GId))",
        "CREATE TABLE Posts (PId INT PRIMARY KEY, GId INT NOT NULL, AuthorId INT NOT NULL, \
         Title TEXT NOT NULL, Body TEXT NOT NULL, \
         FOREIGN KEY (GId) REFERENCES Groups (GId), \
         FOREIGN KEY (AuthorId) REFERENCES Users (UId))",
        "CREATE TABLE Comments (CId INT PRIMARY KEY, PId INT NOT NULL, AuthorId INT NOT NULL, \
         Body TEXT NOT NULL, \
         FOREIGN KEY (PId) REFERENCES Posts (PId), \
         FOREIGN KEY (AuthorId) REFERENCES Users (UId))",
    ],
    source: r#"
        handler my_groups() {
            emit sql("SELECT g.GId, g.Name FROM Groups g
                      JOIN Membership m ON g.GId = m.GId
                      WHERE m.UId = ?MyUId");
        }

        handler public_groups() {
            emit sql("SELECT GId, Name FROM Groups WHERE Public = TRUE");
        }

        handler view_post(post_id) {
            // Fetch only the routing metadata first (post -> group), then
            // authorize, then fetch the content — the restructuring real
            // apps adopt under a proxy.
            let meta = sql("SELECT GId FROM Posts WHERE PId = ?post_id");
            if meta.is_empty() {
                abort(404);
            }
            let gid = meta.GId;
            let m = sql("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = ?gid");
            if m.is_empty() {
                abort(403);
            }
            emit sql("SELECT PId, Title, Body, AuthorId FROM Posts WHERE PId = ?post_id");
        }

        handler group_posts(group_id) {
            let m = sql("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = ?group_id");
            if m.is_empty() {
                abort(403);
            }
            emit sql("SELECT PId, Title FROM Posts WHERE GId = ?group_id");
        }

        handler view_comments(post_id) {
            let meta = sql("SELECT GId FROM Posts WHERE PId = ?post_id");
            if meta.is_empty() {
                abort(404);
            }
            let gid = meta.GId;
            let m = sql("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = ?gid");
            if m.is_empty() {
                abort(403);
            }
            emit sql("SELECT CId, AuthorId, Body FROM Comments WHERE PId = ?post_id");
        }

        handler add_comment(post_id, comment_id, body) {
            let meta = sql("SELECT GId FROM Posts WHERE PId = ?post_id");
            if meta.is_empty() {
                abort(404);
            }
            let gid = meta.GId;
            let m = sql("SELECT 1 FROM Membership WHERE UId = ?MyUId AND GId = ?gid");
            if m.is_empty() {
                abort(403);
            }
            run sql("INSERT INTO Comments (CId, PId, AuthorId, Body)
                     VALUES (?comment_id, ?post_id, ?MyUId, ?body)");
        }
    "#,
    buggy_source: r#"
        // BUG: membership check against the wrong column (the post id
        // instead of the group id) — a classic confused-deputy slip.
        handler view_post_confused(post_id) {
            let m = sql("SELECT 1 FROM Membership
                         WHERE UId = ?MyUId AND GId = ?post_id");
            if m.is_empty() {
                abort(403);
            }
            emit sql("SELECT PId, Title, Body, AuthorId FROM Posts WHERE PId = ?post_id");
        }

        // BUG: no gate at all on comments.
        handler comments_nocheck(post_id) {
            emit sql("SELECT CId, AuthorId, Body FROM Comments WHERE PId = ?post_id");
        }
    "#,
    ground_truth: &[
        // Post routing metadata is observable through the 404/403 split.
        ("PostGroups", "SELECT PId, GId FROM Posts"),
        (
            "MyMemberships",
            "SELECT GId FROM Membership WHERE UId = ?MyUId",
        ),
        (
            "MyGroups",
            "SELECT g.GId, g.Name FROM Groups g \
             JOIN Membership m ON g.GId = m.GId WHERE m.UId = ?MyUId",
        ),
        (
            "PublicGroups",
            "SELECT GId, Name FROM Groups WHERE Public = TRUE",
        ),
        (
            "GroupPosts",
            "SELECT p.PId, p.GId, p.Title, p.Body, p.AuthorId FROM Posts p \
             JOIN Membership m ON p.GId = m.GId WHERE m.UId = ?MyUId",
        ),
        (
            "GroupComments",
            "SELECT c.CId, c.PId, c.AuthorId, c.Body FROM Comments c \
             JOIN Posts p ON c.PId = p.PId \
             JOIN Membership m ON p.GId = m.GId WHERE m.UId = ?MyUId",
        ),
    ],
    session_params: &["MyUId"],
};

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::{run_handler, Limits, Outcome};
    use sqlir::Value;

    fn seeded() -> minidb::Database {
        let mut db = FORUM.empty_db();
        db.execute_sql(
            "INSERT INTO Users (UId, Name) VALUES (101, 'ann'), (102, 'bob'), (103, 'cy')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Groups (GId, Name, Public) VALUES \
             (1, 'eng', FALSE), (2, 'announce', TRUE)",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Membership (UId, GId, Role) VALUES \
             (101, 1, 'member'), (102, 1, 'admin'), (102, 2, 'member')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Posts (PId, GId, AuthorId, Title, Body) VALUES \
             (10, 1, 101, 'design doc', 'secret plans'), \
             (11, 2, 102, 'welcome', 'hello world')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Comments (CId, PId, AuthorId, Body) VALUES \
             (100, 10, 102, 'lgtm'), (101, 11, 102, 'hi')",
        )
        .unwrap();
        db
    }

    #[test]
    fn definition_is_wellformed() {
        assert_eq!(FORUM.app().handlers.len(), 6);
        assert_eq!(FORUM.policy().unwrap().len(), 6);
        assert_eq!(FORUM.policy().unwrap().params(), vec!["MyUId"]);
    }

    #[test]
    fn membership_gating_works() {
        let mut db = seeded();
        let app = FORUM.app();
        let ann = vec![("MyUId".to_string(), Value::Int(101))];
        let cy = vec![("MyUId".to_string(), Value::Int(103))];

        // Ann is in group 1 and can read post 10.
        let r = run_handler(
            &mut db,
            app.handler("view_post").unwrap(),
            &ann,
            &[("post_id".into(), Value::Int(10))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);

        // Cy is in no group: 403.
        let r = run_handler(
            &mut db,
            app.handler("view_post").unwrap(),
            &cy,
            &[("post_id".into(), Value::Int(10))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Http(403));

        // Nonexistent post: 404.
        let r = run_handler(
            &mut db,
            app.handler("view_post").unwrap(),
            &ann,
            &[("post_id".into(), Value::Int(99))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Http(404));
    }

    #[test]
    fn add_comment_inserts_when_authorized() {
        let mut db = seeded();
        let app = FORUM.app();
        let ann = vec![("MyUId".to_string(), Value::Int(101))];
        let r = run_handler(
            &mut db,
            app.handler("add_comment").unwrap(),
            &ann,
            &[
                ("post_id".into(), Value::Int(10)),
                ("comment_id".into(), Value::Int(999)),
                ("body".into(), Value::str("nice")),
            ],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);
        assert_eq!(db.table("Comments").unwrap().len(), 3);
    }
}
