//! The hospital-management system of Example 4.1.
//!
//! A single `Treatment(PId, DId, Disease)` relation links a patient, their
//! assigned doctor, and the disease being treated. The staff-wide policy
//! reveals (1) the doctor assigned to each patient and (2) the diseases
//! treated by each doctor; the disease each patient is treated *for* is
//! sensitive — and, per the paper, partially disclosed anyway.

use crate::simapp::SimApp;

/// The hospital application definition.
pub const HOSPITAL: SimApp = SimApp {
    name: "hospital",
    ddl: &[
        "CREATE TABLE Patients (PId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Doctors (DId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Treatment (PId INT NOT NULL, DId INT NOT NULL, Disease TEXT NOT NULL, \
         PRIMARY KEY (PId, Disease), \
         FOREIGN KEY (PId) REFERENCES Patients (PId), \
         FOREIGN KEY (DId) REFERENCES Doctors (DId))",
    ],
    source: r#"
        handler patient_doctor(patient_id) {
            emit sql("SELECT DId FROM Treatment WHERE PId = ?patient_id");
        }

        handler doctor_diseases(doctor_id) {
            emit sql("SELECT Disease FROM Treatment WHERE DId = ?doctor_id");
        }

        handler assignments() {
            emit sql("SELECT PId, DId FROM Treatment");
        }

        handler specialties() {
            emit sql("SELECT DId, Disease FROM Treatment");
        }
    "#,
    buggy_source: r#"
        // BUG: exposes the sensitive patient-disease link directly.
        handler patient_chart(patient_id) {
            emit sql("SELECT Disease FROM Treatment WHERE PId = ?patient_id");
        }
    "#,
    ground_truth: &[
        ("VA", "SELECT PId, DId FROM Treatment"),
        ("VB", "SELECT DId, Disease FROM Treatment"),
    ],
    session_params: &[],
};

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::{run_handler, Limits, Outcome};
    use sqlir::Value;

    fn seeded() -> minidb::Database {
        let mut db = HOSPITAL.empty_db();
        db.execute_sql("INSERT INTO Patients (PId, Name) VALUES (1, 'john'), (2, 'mary')")
            .unwrap();
        db.execute_sql("INSERT INTO Doctors (DId, Name) VALUES (10, 'dr. a'), (11, 'dr. b')")
            .unwrap();
        db.execute_sql(
            "INSERT INTO Treatment (PId, DId, Disease) VALUES \
             (1, 10, 'pneumonia'), (2, 10, 'tuberculosis'), (2, 11, 'flu')",
        )
        .unwrap();
        db
    }

    #[test]
    fn definition_is_wellformed() {
        assert_eq!(HOSPITAL.app().handlers.len(), 4);
        assert_eq!(HOSPITAL.policy().unwrap().len(), 2);
        assert!(HOSPITAL.policy().unwrap().params().is_empty());
    }

    #[test]
    fn views_run() {
        let mut db = seeded();
        let app = HOSPITAL.app();
        let r = run_handler(
            &mut db,
            app.handler("patient_doctor").unwrap(),
            &[],
            &[("patient_id".into(), Value::Int(1))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);
        match &r.emitted[0] {
            appdsl::Emitted::Rows(rows) => assert_eq!(rows.rows[0][0], Value::Int(10)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
