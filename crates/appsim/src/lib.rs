//! Simulated database-backed applications, data generators, and request
//! workloads.
//!
//! Four complete applications exercise the toolkit, each shipping its
//! schema, DSL handler code, *injected-bug* variants for the diagnosis
//! experiments, and a hand-written ground-truth policy for scoring
//! extraction:
//!
//! * [`CALENDAR`] — the paper's running example (Listing 1, Examples 2.1
//!   and 3.1);
//! * [`HOSPITAL`] — the disclosure scenario of Example 4.1;
//! * [`EMPLOYEES`] — the age-threshold queries of Example 4.2;
//! * [`FORUM`] — a larger group-membership app stressing deeper joins and
//!   multi-step authorization;
//! * [`WIKI`] — group-scoped documents with an ungated analytics probe,
//!   the scenario where active constraint discovery earns its keep.
//!
//! [`ProxyPort`] adapts the enforcing proxy to the DSL interpreter, so any
//! of these applications can run under enforcement unchanged.

#![warn(missing_docs)]

pub mod calendar;
pub mod datagen;
pub mod employees;
pub mod forum;
pub mod hospital;
pub mod simapp;
pub mod wiki;
pub mod workload;

pub use calendar::CALENDAR;
pub use datagen::{populate_app, seed_app, stream_app, BatchSink, Scale, BATCH_ROWS, FIRST_UID};
pub use employees::EMPLOYEES;
pub use forum::FORUM;
pub use hospital::HOSPITAL;
pub use simapp::{AppSpec, ProxyPort, SimApp};
pub use wiki::WIKI;
pub use workload::{
    calendar_workload, employees_workload, forum_workload, hospital_workload, wiki_workload,
    workload_for, WorkloadError,
};

/// All five applications.
pub const ALL_APPS: [&SimApp; 5] = [&CALENDAR, &HOSPITAL, &EMPLOYEES, &FORUM, &WIKI];
