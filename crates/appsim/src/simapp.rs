//! The [`SimApp`] bundle: everything one simulated application ships with.

use appdsl::{parse_app, App, DslError, PortOutcome, QueryPort};
use bep_core::{CoreError, Policy, ProxyResponse, SqlProxy};
use minidb::Database;
use qlogic::RelSchema;
use sqlir::Value;

/// One simulated application: schema, code, and its intended policy.
#[derive(Debug, Clone, Copy)]
pub struct SimApp {
    /// Application name.
    pub name: &'static str,
    /// `CREATE TABLE` statements.
    pub ddl: &'static [&'static str],
    /// Handler source (the whole application, in the DSL).
    pub source: &'static str,
    /// Additional handlers with *injected bugs* (for the diagnosis
    /// experiments); not part of the correct application.
    pub buggy_source: &'static str,
    /// The intended (ground-truth) policy as `(name, SQL)` views.
    pub ground_truth: &'static [(&'static str, &'static str)],
    /// Session parameter names (shared with the policy namespace).
    pub session_params: &'static [&'static str],
}

impl SimApp {
    /// Parses the correct application.
    pub fn app(&self) -> App {
        parse_app(self.source).unwrap_or_else(|e| panic!("{} source: {e}", self.name))
    }

    /// Parses the application including the buggy handlers.
    pub fn app_with_bugs(&self) -> App {
        let combined = format!("{}\n{}", self.source, self.buggy_source);
        parse_app(&combined).unwrap_or_else(|e| panic!("{} buggy source: {e}", self.name))
    }

    /// Creates an empty database with the application's schema.
    pub fn empty_db(&self) -> Database {
        let mut db = Database::new();
        for ddl in self.ddl {
            db.execute_sql(ddl)
                .unwrap_or_else(|e| panic!("{} ddl: {e}", self.name));
        }
        db
    }

    /// The relational schema (for the logic layer).
    pub fn schema(&self) -> RelSchema {
        bep_core::schema_of_database(&self.empty_db())
    }

    /// Compiles the ground-truth policy.
    pub fn policy(&self) -> Result<Policy, CoreError> {
        Policy::from_sql(&self.schema(), self.ground_truth)
    }

    /// The ground-truth views as conjunctive queries.
    pub fn ground_truth_cqs(&self) -> Vec<qlogic::Cq> {
        self.policy()
            .expect("ground truth compiles")
            .views()
            .iter()
            .map(|v| v.cq.clone())
            .collect()
    }
}

/// What every application — hand-written ([`SimApp`]) or generated (the
/// `scenario` crate's fleet) — provides to run under the enforcement,
/// extraction, and diagnosis pipelines.
///
/// The provided methods mirror [`SimApp`]'s helpers so pipeline code can be
/// written once against `&dyn AppSpec`.
pub trait AppSpec {
    /// Application name.
    fn name(&self) -> &str;
    /// `CREATE TABLE` statements.
    fn ddl(&self) -> Vec<String>;
    /// Handler source (the whole application, in the DSL).
    fn source(&self) -> &str;
    /// The intended (ground-truth) policy as `(name, SQL)` views.
    fn ground_truth(&self) -> Vec<(String, String)>;
    /// Session parameter names (shared with the policy namespace).
    fn session_params(&self) -> Vec<String>;

    /// Parses the application.
    fn app(&self) -> App {
        parse_app(self.source()).unwrap_or_else(|e| panic!("{} source: {e}", self.name()))
    }

    /// Creates an empty database with the application's schema.
    fn empty_db(&self) -> Database {
        let mut db = Database::new();
        for ddl in self.ddl() {
            db.execute_sql(&ddl)
                .unwrap_or_else(|e| panic!("{} ddl: {e}", self.name()));
        }
        db
    }

    /// The relational schema (for the logic layer).
    fn schema(&self) -> RelSchema {
        bep_core::schema_of_database(&self.empty_db())
    }

    /// Compiles the ground-truth policy.
    fn policy(&self) -> Result<Policy, CoreError> {
        let gt = self.ground_truth();
        let views: Vec<(&str, &str)> = gt.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        Policy::from_sql(&self.schema(), &views)
    }

    /// The ground-truth views as conjunctive queries.
    fn ground_truth_cqs(&self) -> Vec<qlogic::Cq> {
        self.policy()
            .expect("ground truth compiles")
            .views()
            .iter()
            .map(|v| v.cq.clone())
            .collect()
    }
}

impl AppSpec for SimApp {
    fn name(&self) -> &str {
        self.name
    }

    fn ddl(&self) -> Vec<String> {
        self.ddl.iter().map(|s| s.to_string()).collect()
    }

    fn source(&self) -> &str {
        self.source
    }

    fn ground_truth(&self) -> Vec<(String, String)> {
        self.ground_truth
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect()
    }

    fn session_params(&self) -> Vec<String> {
        self.session_params.iter().map(|s| s.to_string()).collect()
    }
}

/// A [`QueryPort`] adapter running handlers through the enforcing proxy.
///
/// Holds a shared reference: any number of ports (one per worker thread,
/// say) can drive the same proxy concurrently.
pub struct ProxyPort<'a> {
    /// The proxy.
    pub proxy: &'a SqlProxy,
    /// The session id to execute under.
    pub session: u64,
}

impl QueryPort for ProxyPort<'_> {
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        match self.proxy.execute(self.session, sql, bindings) {
            Ok(ProxyResponse::Rows(r)) => Ok(PortOutcome::Rows(r)),
            Ok(ProxyResponse::Affected(n)) => Ok(PortOutcome::Affected(n)),
            Ok(ProxyResponse::Blocked(reason)) => Ok(PortOutcome::Blocked(format!("{reason:?}"))),
            Err(e) => Err(DslError::Port(e.to_string())),
        }
    }
}
