//! The employee directory of Example 4.2 (age-threshold queries).

use crate::simapp::SimApp;

/// The employees application definition.
pub const EMPLOYEES: SimApp = SimApp {
    name: "employees",
    ddl: &[
        "CREATE TABLE Employees (EmpId INT PRIMARY KEY, Name TEXT NOT NULL, \
         Age INT NOT NULL, Dept TEXT NOT NULL, Salary INT NOT NULL)",
    ],
    source: r#"
        handler directory() {
            emit sql("SELECT Name FROM Employees WHERE Age >= 18");
        }

        handler dept_list(dept) {
            emit sql("SELECT Name FROM Employees WHERE Age >= 18 AND Dept = ?dept");
        }

        handler adult_count(dept) {
            let rows = sql("SELECT Name FROM Employees WHERE Age >= 18 AND Dept = ?dept");
            emit rows.count();
        }
    "#,
    buggy_source: r#"
        // BUG (or a new requirement the policy does not yet cover): the
        // seniors report reveals an age-based subset the policy cannot
        // express from the adults view alone.
        handler senior_report() {
            emit sql("SELECT Name FROM Employees WHERE Age >= 60");
        }

        // BUG: salary disclosure.
        handler payroll(dept) {
            emit sql("SELECT Name, Salary FROM Employees WHERE Dept = ?dept");
        }
    "#,
    ground_truth: &[
        ("Adults", "SELECT Name FROM Employees WHERE Age >= 18"),
        (
            "AdultDepts",
            "SELECT Name, Dept FROM Employees WHERE Age >= 18",
        ),
    ],
    session_params: &[],
};

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::{run_handler, Emitted, Limits};
    use sqlir::Value;

    fn seeded() -> minidb::Database {
        let mut db = EMPLOYEES.empty_db();
        db.execute_sql(
            "INSERT INTO Employees (EmpId, Name, Age, Dept, Salary) VALUES \
             (1, 'alex', 62, 'eng', 200), \
             (2, 'bo', 30, 'eng', 150), \
             (3, 'cy', 17, 'intern', 10), \
             (4, 'di', 45, 'ops', 120)",
        )
        .unwrap();
        db
    }

    #[test]
    fn definition_is_wellformed() {
        assert_eq!(EMPLOYEES.app().handlers.len(), 3);
        assert_eq!(EMPLOYEES.policy().unwrap().len(), 2);
    }

    #[test]
    fn directory_excludes_minors() {
        let mut db = seeded();
        let app = EMPLOYEES.app();
        let r = run_handler(
            &mut db,
            app.handler("directory").unwrap(),
            &[],
            &[],
            Limits::default(),
        )
        .unwrap();
        match &r.emitted[0] {
            Emitted::Rows(rows) => {
                assert_eq!(rows.len(), 3);
                assert!(!rows.rows.iter().any(|r| r[0] == Value::str("cy")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_handler_emits_scalar() {
        let mut db = seeded();
        let app = EMPLOYEES.app();
        let r = run_handler(
            &mut db,
            app.handler("adult_count").unwrap(),
            &[],
            &[("dept".into(), Value::str("eng"))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.emitted, vec![Emitted::Scalar(Value::Int(2))]);
    }
}
