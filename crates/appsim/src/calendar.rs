//! The paper's calendar application (Examples 2.1 and 3.1, Listing 1).

use crate::simapp::SimApp;

/// The calendar application definition.
pub const CALENDAR: SimApp = SimApp {
    name: "calendar",
    ddl: &[
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)",
        "CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT NOT NULL, Kind TEXT NOT NULL)",
        "CREATE TABLE Attendance (UId INT NOT NULL, EId INT NOT NULL, Notes TEXT, \
         PRIMARY KEY (UId, EId), \
         FOREIGN KEY (UId) REFERENCES Users (UId), \
         FOREIGN KEY (EId) REFERENCES Events (EId))",
    ],
    source: r#"
        // Listing 1 of the paper.
        handler show_event(event_id) {
            let rows = sql("SELECT 1 FROM Attendance
                            WHERE UId = ?MyUId AND EId = ?event_id");
            if rows.is_empty() {
                abort(404);
            }
            emit sql("SELECT EId, Title, Kind FROM Events WHERE EId = ?event_id");
        }

        handler my_events() {
            emit sql("SELECT a.EId, e.Title FROM Attendance a
                      JOIN Events e ON a.EId = e.EId
                      WHERE a.UId = ?MyUId");
        }

        handler event_notes(event_id) {
            emit sql("SELECT Notes FROM Attendance
                      WHERE UId = ?MyUId AND EId = ?event_id");
        }

        handler attendees(event_id) {
            let mine = sql("SELECT 1 FROM Attendance
                            WHERE UId = ?MyUId AND EId = ?event_id");
            if mine.is_empty() {
                abort(404);
            }
            emit sql("SELECT u.Name FROM Users u
                      JOIN Attendance a ON u.UId = a.UId
                      WHERE a.EId = ?event_id");
        }

        handler join_event(event_id) {
            let exists = sql("SELECT 1 FROM Events WHERE EId = ?event_id");
            if exists.is_empty() {
                abort(404);
            }
            run sql("INSERT INTO Attendance (UId, EId, Notes)
                     VALUES (?MyUId, ?event_id, NULL)");
        }
    "#,
    buggy_source: r#"
        // BUG: the developer forgot the attendance check (the WordPress-
        // style disclosure the paper's intro cites).
        handler show_event_nocheck(event_id) {
            emit sql("SELECT EId, Title, Kind FROM Events WHERE EId = ?event_id");
        }

        // BUG: shows everyone's notes, not just the current user's.
        handler event_notes_all(event_id) {
            emit sql("SELECT UId, Notes FROM Attendance WHERE EId = ?event_id");
        }
    "#,
    ground_truth: &[
        ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
        (
            "V2",
            "SELECT e.EId, e.Title, e.Kind FROM Events e \
             JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
        ),
        ("V3", "SELECT EId, Notes FROM Attendance WHERE UId = ?MyUId"),
        (
            "V4",
            "SELECT a.EId, u.Name FROM Users u \
             JOIN Attendance a ON u.UId = a.UId \
             JOIN Attendance mine ON mine.EId = a.EId \
             WHERE mine.UId = ?MyUId",
        ),
        // Existence of events is public (join_event probes it).
        ("V5", "SELECT EId FROM Events"),
    ],
    session_params: &["MyUId"],
};

#[cfg(test)]
mod tests {
    use super::*;
    use appdsl::{run_handler, Limits, Outcome};
    use sqlir::Value;

    #[test]
    fn definition_is_wellformed() {
        let app = CALENDAR.app();
        assert_eq!(app.handlers.len(), 5);
        assert_eq!(CALENDAR.app_with_bugs().handlers.len(), 7);
        let policy = CALENDAR.policy().unwrap();
        assert_eq!(policy.len(), 5);
        assert_eq!(policy.params(), vec!["MyUId"]);
    }

    #[test]
    fn handlers_run_against_seeded_db() {
        let mut db = CALENDAR.empty_db();
        db.execute_sql("INSERT INTO Users (UId, Name) VALUES (101, 'ann'), (102, 'bob')")
            .unwrap();
        db.execute_sql(
            "INSERT INTO Events (EId, Title, Kind) VALUES (1, 'standup', 'work'), \
             (2, 'party', 'fun')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (101, 1, NULL), (102, 1, 'x')",
        )
        .unwrap();

        let app = CALENDAR.app();
        let session = vec![("MyUId".to_string(), Value::Int(101))];

        let r = run_handler(
            &mut db,
            app.handler("show_event").unwrap(),
            &session,
            &[("event_id".into(), Value::Int(1))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);

        let r = run_handler(
            &mut db,
            app.handler("show_event").unwrap(),
            &session,
            &[("event_id".into(), Value::Int(2))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Http(404));

        let r = run_handler(
            &mut db,
            app.handler("attendees").unwrap(),
            &session,
            &[("event_id".into(), Value::Int(1))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);
        match &r.emitted[0] {
            appdsl::Emitted::Rows(rows) => assert_eq!(rows.len(), 2),
            other => panic!("unexpected {other:?}"),
        }

        let r = run_handler(
            &mut db,
            app.handler("join_event").unwrap(),
            &session,
            &[("event_id".into(), Value::Int(2))],
            Limits::default(),
        )
        .unwrap();
        assert_eq!(r.outcome, Outcome::Ok);
        assert_eq!(db.table("Attendance").unwrap().len(), 3);
    }
}
