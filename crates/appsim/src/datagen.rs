//! Seeded random data population for the simulated applications.
//!
//! Population is *streaming*: each family emits typed rows into a
//! [`BatchSink`] that flushes bounded batches into the database, so peak
//! memory is one batch regardless of scale — there is never a materialized
//! all-rows `Vec`, and no SQL text is formatted or parsed per row.

use minidb::{Database, DbError};
use rand::Rng;
use sqlir::Value;

/// Data-set scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of users (patients/employees for the respective apps).
    pub users: usize,
    /// Number of primary entities (events/groups/doctors).
    pub entities: usize,
    /// Links per user (attendance/membership rows).
    pub links_per_user: usize,
}

impl Scale {
    /// A small data set for tests.
    pub fn small() -> Scale {
        Scale {
            users: 8,
            entities: 6,
            links_per_user: 2,
        }
    }

    /// A medium data set for benchmarks.
    pub fn medium() -> Scale {
        Scale {
            users: 50,
            entities: 30,
            links_per_user: 5,
        }
    }

    /// A larger data set for throughput measurements.
    pub fn large() -> Scale {
        Scale {
            users: 200,
            entities: 100,
            links_per_user: 8,
        }
    }
}

/// User ids start here (kept clear of entity ids so black-box session
/// linking can't confuse a user id with an event id).
pub const FIRST_UID: i64 = 101;

const KINDS: &[&str] = &["work", "fun", "family", "errand"];
const DISEASES: &[&str] = &["pneumonia", "tuberculosis", "flu", "migraine", "asthma"];
const DEPTS: &[&str] = &["eng", "ops", "sales", "legal"];

/// Rows per insert batch; bounds the populate path's peak memory.
pub const BATCH_ROWS: usize = 4096;

/// A batching row sink: buffers consecutive rows for one table and flushes
/// them through [`Database::insert_rows`] when the batch fills or the
/// target table changes. Constraint checks still run per row inside the
/// database; the batching only amortizes call overhead and bounds memory.
pub struct BatchSink<'a> {
    db: &'a mut Database,
    table: String,
    buf: Vec<Vec<Value>>,
    total: usize,
}

impl<'a> BatchSink<'a> {
    /// Wraps a database for streaming population.
    pub fn new(db: &'a mut Database) -> BatchSink<'a> {
        BatchSink {
            db,
            table: String::new(),
            buf: Vec::new(),
            total: 0,
        }
    }

    /// Queues one row for `table`, flushing as needed.
    pub fn push(&mut self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        if self.table != table {
            self.flush()?;
            self.table = table.to_string();
        }
        self.buf.push(row);
        if self.buf.len() >= BATCH_ROWS {
            self.flush()?;
        }
        Ok(())
    }

    /// Flushes any buffered rows.
    pub fn flush(&mut self) -> Result<(), DbError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let rows = std::mem::take(&mut self.buf);
        self.total += self.db.insert_rows(&self.table, rows)?;
        Ok(())
    }

    /// Total rows inserted so far (flushed only).
    pub fn total(&self) -> usize {
        self.total
    }
}

fn int(v: i64) -> Value {
    Value::Int(v)
}

fn text(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// Streams the calendar schema's rows.
pub fn stream_calendar(
    sink: &mut BatchSink<'_>,
    rng: &mut impl Rng,
    scale: &Scale,
) -> Result<(), DbError> {
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        sink.push("Users", vec![int(uid), text(format!("user{u}"))])?;
    }
    for e in 0..scale.entities {
        let eid = 1 + e as i64;
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        sink.push(
            "Events",
            vec![int(eid), text(format!("event{e}")), text(kind)],
        )?;
    }
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        let mut joined: Vec<i64> = Vec::new();
        for _ in 0..scale.links_per_user {
            let eid = 1 + rng.gen_range(0..scale.entities) as i64;
            if joined.contains(&eid) {
                continue;
            }
            joined.push(eid);
            let notes = if rng.gen_bool(0.3) {
                text(format!("note{u}x{eid}"))
            } else {
                Value::Null
            };
            sink.push("Attendance", vec![int(uid), int(eid), notes])?;
        }
    }
    Ok(())
}

/// Streams the hospital schema's rows.
pub fn stream_hospital(
    sink: &mut BatchSink<'_>,
    rng: &mut impl Rng,
    scale: &Scale,
) -> Result<(), DbError> {
    for p in 0..scale.users {
        let pid = 1 + p as i64;
        sink.push("Patients", vec![int(pid), text(format!("patient{p}"))])?;
    }
    let doctors = scale.entities.max(1);
    for d in 0..doctors {
        let did = 500 + d as i64;
        sink.push("Doctors", vec![int(did), text(format!("dr{d}"))])?;
    }
    for p in 0..scale.users {
        let pid = 1 + p as i64;
        let did = 500 + rng.gen_range(0..doctors) as i64;
        let disease = DISEASES[rng.gen_range(0..DISEASES.len())];
        sink.push("Treatment", vec![int(pid), int(did), text(disease)])?;
    }
    Ok(())
}

/// Streams the employees schema's rows.
pub fn stream_employees(
    sink: &mut BatchSink<'_>,
    rng: &mut impl Rng,
    scale: &Scale,
) -> Result<(), DbError> {
    for e in 0..scale.users {
        let id = 1 + e as i64;
        let age = rng.gen_range(16i64..70);
        let dept = DEPTS[rng.gen_range(0..DEPTS.len())];
        let salary = rng.gen_range(50i64..250) * 1000;
        sink.push(
            "Employees",
            vec![
                int(id),
                text(format!("emp{e}")),
                int(age),
                text(dept),
                int(salary),
            ],
        )?;
    }
    Ok(())
}

/// Streams the forum schema's rows.
pub fn stream_forum(
    sink: &mut BatchSink<'_>,
    rng: &mut impl Rng,
    scale: &Scale,
) -> Result<(), DbError> {
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        sink.push("Users", vec![int(uid), text(format!("user{u}"))])?;
    }
    for g in 0..scale.entities {
        let gid = 1 + g as i64;
        let public = rng.gen_bool(0.25);
        sink.push(
            "Groups",
            vec![int(gid), text(format!("group{g}")), Value::Bool(public)],
        )?;
    }
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        let mut joined: Vec<i64> = Vec::new();
        for _ in 0..scale.links_per_user {
            let gid = 1 + rng.gen_range(0..scale.entities) as i64;
            if joined.contains(&gid) {
                continue;
            }
            joined.push(gid);
            let role = if rng.gen_bool(0.1) { "admin" } else { "member" };
            sink.push("Membership", vec![int(uid), int(gid), text(role)])?;
        }
    }
    let posts = scale.entities * 2;
    for p in 0..posts {
        let pid = 1000 + p as i64;
        let gid = 1 + rng.gen_range(0..scale.entities) as i64;
        let author = FIRST_UID + rng.gen_range(0..scale.users) as i64;
        sink.push(
            "Posts",
            vec![
                int(pid),
                int(gid),
                int(author),
                text(format!("post{p}")),
                text(format!("body of post {p}")),
            ],
        )?;
        // A couple of comments per post.
        for c in 0..rng.gen_range(0..3) {
            let cid = pid * 10 + c;
            let commenter = FIRST_UID + rng.gen_range(0..scale.users) as i64;
            sink.push(
                "Comments",
                vec![
                    int(cid),
                    int(pid),
                    int(commenter),
                    text(format!("comment {cid}")),
                ],
            )?;
        }
    }
    Ok(())
}

/// Streams the wiki schema's rows. The space distribution is deliberately
/// skewed (most documents land in the first space) so that small workloads
/// leave the analytics probe's space id invariant — the trap active
/// constraint discovery exists to undo.
pub fn stream_wiki(
    sink: &mut BatchSink<'_>,
    rng: &mut impl Rng,
    scale: &Scale,
) -> Result<(), DbError> {
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        sink.push("Users", vec![int(uid), text(format!("user{u}"))])?;
    }
    let spaces = scale.entities.clamp(2, 8);
    for s in 0..spaces {
        let sid = 1 + s as i64;
        sink.push("Spaces", vec![int(sid), text(format!("space{s}"))])?;
    }
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        let mut joined: Vec<i64> = vec![1]; // everyone can read space 1
        sink.push("Access", vec![int(uid), int(1)])?;
        for _ in 0..scale.links_per_user {
            let sid = 1 + rng.gen_range(0..spaces) as i64;
            if joined.contains(&sid) {
                continue;
            }
            joined.push(sid);
            sink.push("Access", vec![int(uid), int(sid)])?;
        }
    }
    for d in 0..scale.entities * 2 {
        let did = 100 + d as i64;
        // Skewed: 80% of documents live in space 1.
        let sid = if rng.gen_bool(0.8) {
            1
        } else {
            1 + rng.gen_range(0..spaces) as i64
        };
        sink.push(
            "Docs",
            vec![
                int(did),
                int(sid),
                text(format!("doc{d}")),
                text(format!("body of doc {d}")),
            ],
        )?;
    }
    Ok(())
}

/// Streams the named application's rows into `sink`.
pub fn stream_app(
    name: &str,
    sink: &mut BatchSink<'_>,
    rng: &mut impl Rng,
    scale: &Scale,
) -> Result<(), DbError> {
    match name {
        "calendar" => stream_calendar(sink, rng, scale),
        "hospital" => stream_hospital(sink, rng, scale),
        "employees" => stream_employees(sink, rng, scale),
        "forum" => stream_forum(sink, rng, scale),
        "wiki" => stream_wiki(sink, rng, scale),
        other => panic!("unknown app {other}"),
    }
}

/// Populates the database for the named application, returning the number
/// of rows inserted.
pub fn populate_app(
    name: &str,
    db: &mut Database,
    rng: &mut impl Rng,
    scale: &Scale,
) -> Result<usize, DbError> {
    let mut sink = BatchSink::new(db);
    stream_app(name, &mut sink, rng, scale)?;
    sink.flush()?;
    Ok(sink.total())
}

/// Populates the calendar schema (thin wrapper over the streaming API).
pub fn seed_calendar(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    populate_app("calendar", db, rng, scale).expect("seed calendar");
}

/// Populates the hospital schema (thin wrapper over the streaming API).
pub fn seed_hospital(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    populate_app("hospital", db, rng, scale).expect("seed hospital");
}

/// Populates the employees schema (thin wrapper over the streaming API).
pub fn seed_employees(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    populate_app("employees", db, rng, scale).expect("seed employees");
}

/// Populates the forum schema (thin wrapper over the streaming API).
pub fn seed_forum(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    populate_app("forum", db, rng, scale).expect("seed forum");
}

/// Populates the wiki schema (thin wrapper over the streaming API).
pub fn seed_wiki(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    populate_app("wiki", db, rng, scale).expect("seed wiki");
}

/// Seeds the database for the named application.
pub fn seed_app(name: &str, db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    populate_app(name, db, rng, scale).expect("seed app");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CALENDAR, EMPLOYEES, FORUM, HOSPITAL, WIKI};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn seeding_respects_constraints() {
        let mut rng = SmallRng::seed_from_u64(7);
        for app in [&CALENDAR, &HOSPITAL, &EMPLOYEES, &FORUM, &WIKI] {
            let mut db = app.empty_db();
            seed_app(app.name, &mut db, &mut rng, &Scale::small());
            assert!(db.total_rows() > 0, "{} seeded", app.name);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut db1 = CALENDAR.empty_db();
        let mut db2 = CALENDAR.empty_db();
        seed_calendar(&mut db1, &mut SmallRng::seed_from_u64(42), &Scale::small());
        seed_calendar(&mut db2, &mut SmallRng::seed_from_u64(42), &Scale::small());
        assert_eq!(
            db1.query_sql("SELECT UId, EId FROM Attendance ORDER BY UId, EId")
                .unwrap(),
            db2.query_sql("SELECT UId, EId FROM Attendance ORDER BY UId, EId")
                .unwrap(),
        );
    }

    #[test]
    fn scales_grow() {
        let mut small = FORUM.empty_db();
        let mut medium = FORUM.empty_db();
        seed_forum(&mut small, &mut SmallRng::seed_from_u64(1), &Scale::small());
        seed_forum(
            &mut medium,
            &mut SmallRng::seed_from_u64(1),
            &Scale::medium(),
        );
        assert!(medium.total_rows() > small.total_rows());
    }

    #[test]
    fn populate_reports_row_count() {
        let mut db = CALENDAR.empty_db();
        let n = populate_app(
            "calendar",
            &mut db,
            &mut SmallRng::seed_from_u64(3),
            &Scale::small(),
        )
        .unwrap();
        assert_eq!(n, db.total_rows());
    }
}
