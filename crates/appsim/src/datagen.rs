//! Seeded random data population for the simulated applications.

use minidb::Database;
use rand::Rng;

/// Data-set scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of users (patients/employees for the respective apps).
    pub users: usize,
    /// Number of primary entities (events/groups/doctors).
    pub entities: usize,
    /// Links per user (attendance/membership rows).
    pub links_per_user: usize,
}

impl Scale {
    /// A small data set for tests.
    pub fn small() -> Scale {
        Scale {
            users: 8,
            entities: 6,
            links_per_user: 2,
        }
    }

    /// A medium data set for benchmarks.
    pub fn medium() -> Scale {
        Scale {
            users: 50,
            entities: 30,
            links_per_user: 5,
        }
    }

    /// A larger data set for throughput measurements.
    pub fn large() -> Scale {
        Scale {
            users: 200,
            entities: 100,
            links_per_user: 8,
        }
    }
}

/// User ids start here (kept clear of entity ids so black-box session
/// linking can't confuse a user id with an event id).
pub const FIRST_UID: i64 = 101;

const KINDS: &[&str] = &["work", "fun", "family", "errand"];
const DISEASES: &[&str] = &["pneumonia", "tuberculosis", "flu", "migraine", "asthma"];
const DEPTS: &[&str] = &["eng", "ops", "sales", "legal"];

/// Populates the calendar schema.
pub fn seed_calendar(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        db.execute_sql(&format!(
            "INSERT INTO Users (UId, Name) VALUES ({uid}, 'user{u}')"
        ))
        .expect("seed user");
    }
    for e in 0..scale.entities {
        let eid = 1 + e as i64;
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        db.execute_sql(&format!(
            "INSERT INTO Events (EId, Title, Kind) VALUES ({eid}, 'event{e}', '{kind}')"
        ))
        .expect("seed event");
    }
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        let mut joined: Vec<i64> = Vec::new();
        for _ in 0..scale.links_per_user {
            let eid = 1 + rng.gen_range(0..scale.entities) as i64;
            if joined.contains(&eid) {
                continue;
            }
            joined.push(eid);
            let notes = if rng.gen_bool(0.3) {
                format!("'note{u}x{eid}'")
            } else {
                "NULL".into()
            };
            db.execute_sql(&format!(
                "INSERT INTO Attendance (UId, EId, Notes) VALUES ({uid}, {eid}, {notes})"
            ))
            .expect("seed attendance");
        }
    }
}

/// Populates the hospital schema.
pub fn seed_hospital(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    for p in 0..scale.users {
        let pid = 1 + p as i64;
        db.execute_sql(&format!(
            "INSERT INTO Patients (PId, Name) VALUES ({pid}, 'patient{p}')"
        ))
        .expect("seed patient");
    }
    let doctors = scale.entities.max(1);
    for d in 0..doctors {
        let did = 500 + d as i64;
        db.execute_sql(&format!(
            "INSERT INTO Doctors (DId, Name) VALUES ({did}, 'dr{d}')"
        ))
        .expect("seed doctor");
    }
    for p in 0..scale.users {
        let pid = 1 + p as i64;
        let did = 500 + rng.gen_range(0..doctors) as i64;
        let disease = DISEASES[rng.gen_range(0..DISEASES.len())];
        db.execute_sql(&format!(
            "INSERT INTO Treatment (PId, DId, Disease) VALUES ({pid}, {did}, '{disease}')"
        ))
        .expect("seed treatment");
    }
}

/// Populates the employees schema.
pub fn seed_employees(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    for e in 0..scale.users {
        let id = 1 + e as i64;
        let age = rng.gen_range(16..70);
        let dept = DEPTS[rng.gen_range(0..DEPTS.len())];
        let salary = rng.gen_range(50..250) * 1000;
        db.execute_sql(&format!(
            "INSERT INTO Employees (EmpId, Name, Age, Dept, Salary) VALUES \
             ({id}, 'emp{e}', {age}, '{dept}', {salary})"
        ))
        .expect("seed employee");
    }
}

/// Populates the forum schema.
pub fn seed_forum(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        db.execute_sql(&format!(
            "INSERT INTO Users (UId, Name) VALUES ({uid}, 'user{u}')"
        ))
        .expect("seed user");
    }
    for g in 0..scale.entities {
        let gid = 1 + g as i64;
        let public = if rng.gen_bool(0.25) { "TRUE" } else { "FALSE" };
        db.execute_sql(&format!(
            "INSERT INTO Groups (GId, Name, Public) VALUES ({gid}, 'group{g}', {public})"
        ))
        .expect("seed group");
    }
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        let mut joined: Vec<i64> = Vec::new();
        for _ in 0..scale.links_per_user {
            let gid = 1 + rng.gen_range(0..scale.entities) as i64;
            if joined.contains(&gid) {
                continue;
            }
            joined.push(gid);
            let role = if rng.gen_bool(0.1) { "admin" } else { "member" };
            db.execute_sql(&format!(
                "INSERT INTO Membership (UId, GId, Role) VALUES ({uid}, {gid}, '{role}')"
            ))
            .expect("seed membership");
        }
    }
    let posts = scale.entities * 2;
    for p in 0..posts {
        let pid = 1000 + p as i64;
        let gid = 1 + rng.gen_range(0..scale.entities) as i64;
        let author = FIRST_UID + rng.gen_range(0..scale.users) as i64;
        db.execute_sql(&format!(
            "INSERT INTO Posts (PId, GId, AuthorId, Title, Body) VALUES \
             ({pid}, {gid}, {author}, 'post{p}', 'body of post {p}')"
        ))
        .expect("seed post");
        // A couple of comments per post.
        for c in 0..rng.gen_range(0..3) {
            let cid = pid * 10 + c;
            let commenter = FIRST_UID + rng.gen_range(0..scale.users) as i64;
            db.execute_sql(&format!(
                "INSERT INTO Comments (CId, PId, AuthorId, Body) VALUES \
                 ({cid}, {pid}, {commenter}, 'comment {cid}')"
            ))
            .expect("seed comment");
        }
    }
}

/// Populates the wiki schema. The space distribution is deliberately
/// skewed (most documents land in the first space) so that small workloads
/// leave the analytics probe's space id invariant — the trap active
/// constraint discovery exists to undo.
pub fn seed_wiki(db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        db.execute_sql(&format!(
            "INSERT INTO Users (UId, Name) VALUES ({uid}, 'user{u}')"
        ))
        .expect("seed user");
    }
    let spaces = scale.entities.clamp(2, 8);
    for s in 0..spaces {
        let sid = 1 + s as i64;
        db.execute_sql(&format!(
            "INSERT INTO Spaces (SId, Name) VALUES ({sid}, 'space{s}')"
        ))
        .expect("seed space");
    }
    for u in 0..scale.users {
        let uid = FIRST_UID + u as i64;
        let mut joined: Vec<i64> = vec![1]; // everyone can read space 1
        db.execute_sql(&format!("INSERT INTO Access (UId, SId) VALUES ({uid}, 1)"))
            .expect("seed access");
        for _ in 0..scale.links_per_user {
            let sid = 1 + rng.gen_range(0..spaces) as i64;
            if joined.contains(&sid) {
                continue;
            }
            joined.push(sid);
            db.execute_sql(&format!(
                "INSERT INTO Access (UId, SId) VALUES ({uid}, {sid})"
            ))
            .expect("seed access");
        }
    }
    for d in 0..scale.entities * 2 {
        let did = 100 + d as i64;
        // Skewed: 80% of documents live in space 1.
        let sid = if rng.gen_bool(0.8) {
            1
        } else {
            1 + rng.gen_range(0..spaces) as i64
        };
        db.execute_sql(&format!(
            "INSERT INTO Docs (DId, SId, Title, Body) VALUES \
             ({did}, {sid}, 'doc{d}', 'body of doc {d}')"
        ))
        .expect("seed doc");
    }
}

/// Seeds the database for the named application.
pub fn seed_app(name: &str, db: &mut Database, rng: &mut impl Rng, scale: &Scale) {
    match name {
        "calendar" => seed_calendar(db, rng, scale),
        "hospital" => seed_hospital(db, rng, scale),
        "employees" => seed_employees(db, rng, scale),
        "forum" => seed_forum(db, rng, scale),
        "wiki" => seed_wiki(db, rng, scale),
        other => panic!("unknown app {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CALENDAR, EMPLOYEES, FORUM, HOSPITAL, WIKI};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn seeding_respects_constraints() {
        let mut rng = SmallRng::seed_from_u64(7);
        for app in [&CALENDAR, &HOSPITAL, &EMPLOYEES, &FORUM, &WIKI] {
            let mut db = app.empty_db();
            seed_app(app.name, &mut db, &mut rng, &Scale::small());
            assert!(db.total_rows() > 0, "{} seeded", app.name);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut db1 = CALENDAR.empty_db();
        let mut db2 = CALENDAR.empty_db();
        seed_calendar(&mut db1, &mut SmallRng::seed_from_u64(42), &Scale::small());
        seed_calendar(&mut db2, &mut SmallRng::seed_from_u64(42), &Scale::small());
        assert_eq!(
            db1.query_sql("SELECT UId, EId FROM Attendance ORDER BY UId, EId")
                .unwrap(),
            db2.query_sql("SELECT UId, EId FROM Attendance ORDER BY UId, EId")
                .unwrap(),
        );
    }

    #[test]
    fn scales_grow() {
        let mut small = FORUM.empty_db();
        let mut medium = FORUM.empty_db();
        seed_forum(&mut small, &mut SmallRng::seed_from_u64(1), &Scale::small());
        seed_forum(
            &mut medium,
            &mut SmallRng::seed_from_u64(1),
            &Scale::medium(),
        );
        assert!(medium.total_rows() > small.total_rows());
    }
}
