//! Error types for violation diagnosis.

use std::fmt;

/// Errors raised by the diagnosis tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagnoseError {
    /// A logic-layer failure.
    Logic(String),
    /// The query was not actually blocked (nothing to diagnose).
    NotBlocked,
    /// Schema information was missing for SQL rendering.
    Schema(String),
}

impl fmt::Display for DiagnoseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagnoseError::Logic(m) => write!(f, "logic error: {m}"),
            DiagnoseError::NotBlocked => f.write_str("query is compliant; nothing to diagnose"),
            DiagnoseError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for DiagnoseError {}

impl From<qlogic::LogicError> for DiagnoseError {
    fn from(e: qlogic::LogicError) -> DiagnoseError {
        DiagnoseError::Logic(e.to_string())
    }
}
