//! Violation diagnosis (§5 of the paper): when the proxy blocks a query,
//! help the operator figure out *why* and *what to do*.
//!
//! * [`counterexample`] — a pair of databases agreeing on all views (and the
//!   trace) but disagreeing on the blocked query: the proof-of-violation.
//! * [`query_patch`] — narrow the offending query via maximally-contained
//!   rewriting over the views, unfolded back to SQL (§5.2.2 form 1).
//! * [`check_patch`] — abduce a database-content statement that, once
//!   checked by the application, makes the query compliant (§5.2.2 form 2):
//!   the "`Attendance` contains `(UId=1, EId=2)`" example.
//! * [`policy_patch`] — extraction-delta policy additions (§5.2.1).
//! * [`rank`] — patch ranking and the application-vs-policy culprit
//!   heuristic.
//!
//! [`diagnose`] assembles everything for one blocked query.

#![warn(missing_docs)]

pub mod check_patch;
pub mod counterexample;
pub mod error;
pub mod policy_patch;
pub mod query_patch;
pub mod rank;

use qlogic::{equivalent_rewriting, Atom, Cq, RelSchema, ViewSet};

pub use check_patch::{abduce_checks, AbductionOptions, AccessCheckPatch};
pub use counterexample::{find_counterexample, ground_body, Counterexample};
pub use error::DiagnoseError;
pub use policy_patch::{extraction_delta, propose as propose_policy_patch, PolicyPatch};
pub use query_patch::{narrow_query, retained_fraction, QueryPatch};
pub use rank::{Culprit, DiagnosisReport, Patch};

/// Inputs to a full diagnosis.
pub struct DiagnosisInput<'a> {
    /// The blocked query (instantiated).
    pub query: &'a Cq,
    /// The policy views (instantiated for the session).
    pub views: &'a ViewSet,
    /// The session's trace facts at the time of blocking.
    pub trace_facts: &'a [Atom],
    /// Schema (for rendering SQL).
    pub schema: &'a RelSchema,
    /// Views freshly extracted from the (possibly updated) application, if
    /// the operator ran extraction; enables policy patches.
    pub extracted: Option<&'a [Cq]>,
}

/// Runs the full diagnosis pipeline for a blocked query.
///
/// Returns [`DiagnoseError::NotBlocked`] if the query is actually compliant.
pub fn diagnose(input: &DiagnosisInput<'_>) -> Result<DiagnosisReport, DiagnoseError> {
    if equivalent_rewriting(input.query, input.views, input.trace_facts).is_some() {
        return Err(DiagnoseError::NotBlocked);
    }
    let counterexample = find_counterexample(input.query, input.views, input.trace_facts);

    let mut patches: Vec<Patch> = Vec::new();
    for p in abduce_checks(
        input.query,
        input.views,
        input.trace_facts,
        input.schema,
        AbductionOptions::default(),
    ) {
        patches.push(Patch::AccessCheck(p));
    }
    for p in narrow_query(input.query, input.views, input.schema)? {
        patches.push(Patch::Query(p));
    }
    if let Some(extracted) = input.extracted {
        let current: Vec<Cq> = input.views.views().to_vec();
        if let Some(p) = policy_patch::propose(&current, extracted, input.query, input.trace_facts)?
        {
            patches.push(Patch::Policy(p));
        }
    }

    let mut report = DiagnosisReport {
        query: input.query.clone(),
        counterexample,
        patches,
    };
    report.sort();
    Ok(report)
}

/// Runs the diagnosis pipeline for a rejected mutation.
///
/// `input.query` is the written-row query the proxy attaches to a
/// `WriteNotCovered` denial: head = the written row's terms, body = the
/// written atom. Unlike [`diagnose`], no compliance re-check gates the
/// pipeline — write coverage is decided by unifying the written row
/// against view bodies, not by equivalent rewriting, so the proxy's
/// verdict is taken as given and a row query that happens to be
/// *readable* still gets a report rather than [`DiagnoseError::NotBlocked`].
///
/// The patch set reads the same way as for reads, with one omission:
/// query patches (maximally-contained narrowing) are skipped, because
/// silently writing a narrower row than the application asked for would
/// change its semantics. An access-check patch means "the application
/// should verify this row is visible to the session before writing it";
/// a counterexample is a pair of databases the policy cannot tell apart
/// that disagree on the written row.
pub fn diagnose_write(input: &DiagnosisInput<'_>) -> Result<DiagnosisReport, DiagnoseError> {
    let counterexample = find_counterexample(input.query, input.views, input.trace_facts);

    let mut patches: Vec<Patch> = Vec::new();
    for p in abduce_checks(
        input.query,
        input.views,
        input.trace_facts,
        input.schema,
        AbductionOptions::default(),
    ) {
        patches.push(Patch::AccessCheck(p));
    }
    if let Some(extracted) = input.extracted {
        let current: Vec<Cq> = input.views.views().to_vec();
        if let Some(p) = policy_patch::propose(&current, extracted, input.query, input.trace_facts)?
        {
            patches.push(Patch::Policy(p));
        }
    }

    let mut report = DiagnosisReport {
        query: input.query.clone(),
        counterexample,
        patches,
    };
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Term;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    fn calendar_views() -> ViewSet {
        let mut v1 = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        v1.name = Some("V1".into());
        let mut v2 = Cq::new(
            vec![
                Term::var("e"),
                Term::var("t"),
                Term::var("k"),
                Term::var("n"),
            ],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        v2.name = Some("V2".into());
        ViewSet::new(vec![v1, v2]).unwrap()
    }

    #[test]
    fn full_diagnosis_of_isolated_q2() {
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let views = calendar_views();
        let schema = schema();
        let report = diagnose(&DiagnosisInput {
            query: &q2,
            views: &views,
            trace_facts: &[],
            schema: &schema,
            extracted: None,
        })
        .unwrap();
        assert!(report.counterexample.is_some());
        assert!(!report.patches.is_empty());
        // The least-invasive patch is the access check from the paper.
        match &report.patches[0] {
            Patch::AccessCheck(p) => {
                assert!(p.check_sql.contains("Attendance"));
            }
            other => panic!("expected access-check first, got {}", other.kind()),
        }
        let text = report.to_string();
        assert!(text.contains("access-check"));
    }

    #[test]
    fn compliant_query_is_rejected() {
        // Q1 is compliant under the calendar policy.
        let q1 = Cq::new(
            vec![Term::int(1)],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::int(2), Term::var("n")],
            )],
            vec![],
        );
        let views = calendar_views();
        let schema = schema();
        let err = diagnose(&DiagnosisInput {
            query: &q1,
            views: &views,
            trace_facts: &[],
            schema: &schema,
            extracted: None,
        })
        .unwrap_err();
        assert_eq!(err, DiagnoseError::NotBlocked);
    }

    #[test]
    fn rejected_write_gets_counterexample_and_check_patch() {
        // The row query of a blocked
        // `INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, 'x')`:
        // V1 hides Notes, and V2's Events join is undischarged without a
        // trace fact, so the proxy denied it.
        let w = Cq::new(
            vec![Term::int(1), Term::int(2), Term::var("w0")],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::int(2), Term::var("w0")],
            )],
            vec![],
        );
        let views = calendar_views();
        let schema = schema();
        let report = diagnose_write(&DiagnosisInput {
            query: &w,
            views: &views,
            trace_facts: &[],
            schema: &schema,
            extracted: None,
        })
        .unwrap();
        assert!(report.counterexample.is_some());
        // The abduced check is the paper's §5.2.2 shape: verify database
        // content (the joined Events row) before performing the write.
        assert!(
            report
                .patches
                .iter()
                .any(|p| matches!(p, Patch::AccessCheck(_))),
            "{report}"
        );
    }

    #[test]
    fn diagnose_write_skips_the_compliance_gate() {
        // This row query is equivalent-rewritable over V1 (it asks only
        // for the EId), so `diagnose` would refuse with NotBlocked — but
        // write coverage is a different judgment, and the caller already
        // holds a denial. The write variant must still report.
        let q = Cq::new(
            vec![Term::int(2)],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::int(2), Term::var("n")],
            )],
            vec![],
        );
        let views = calendar_views();
        let schema = schema();
        let input = DiagnosisInput {
            query: &q,
            views: &views,
            trace_facts: &[],
            schema: &schema,
            extracted: None,
        };
        assert_eq!(diagnose(&input).unwrap_err(), DiagnoseError::NotBlocked);
        assert!(diagnose_write(&input).is_ok());
    }

    #[test]
    fn policy_patch_included_when_extraction_supplied() {
        // Current policy: V1 only. Extraction found V2. Blocked Q2 (with
        // fact) gets a policy patch among its options.
        let mut v1_only = calendar_views().views()[0].clone();
        v1_only.name = Some("V1".into());
        let views = ViewSet::new(vec![v1_only]).unwrap();
        let extracted: Vec<Cq> = calendar_views().views().to_vec();
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let fact = Atom::new(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("w")],
        );
        let schema = schema();
        let report = diagnose(&DiagnosisInput {
            query: &q2,
            views: &views,
            trace_facts: std::slice::from_ref(&fact),
            schema: &schema,
            extracted: Some(&extracted),
        })
        .unwrap();
        assert!(report.patches.iter().any(|p| matches!(p, Patch::Policy(_))));
        assert_eq!(report.likely_culprit(), Culprit::Policy);
    }
}
