//! Query-narrowing patches (§5.2.2, form 1).
//!
//! "Narrowing down the offending query" reduces to finding a *contained
//! rewriting* of the blocked query using the policy views (Levy et al.),
//! then unfolding it back to base tables so the developer can paste it into
//! the application. The maximally-contained rewriting returns as much data
//! as possible without violating the policy.

use qlogic::{
    cq_to_sql, equivalent_rewriting, expand, maximally_contained, Cq, Instance, RelSchema, Term,
    ViewSet,
};

use crate::error::DiagnoseError;

/// One narrowing proposal.
#[derive(Debug, Clone)]
pub struct QueryPatch {
    /// The rewriting over view names.
    pub rewriting: Cq,
    /// Its unfolding over base tables (what the app would execute).
    pub expansion: Cq,
    /// The unfolding rendered as SQL.
    pub sql: String,
}

/// Proposes narrowing patches for a blocked query, most-retentive first.
///
/// Every returned patch is itself compliant: its expansion has an equivalent
/// rewriting over the views by construction.
pub fn narrow_query(
    q: &Cq,
    views: &ViewSet,
    schema: &RelSchema,
) -> Result<Vec<QueryPatch>, DiagnoseError> {
    let mcr = maximally_contained(q, views);
    let mut out = Vec::new();
    for rw in mcr.disjuncts {
        let expansion = expand(&rw, views)?;
        // Sanity: the patch must be allowed by the policy it was derived
        // from (the whole point of the patch).
        if equivalent_rewriting(&expansion, views, &[]).is_none() {
            continue;
        }
        let sql = cq_to_sql(schema, &expansion)
            .map(|s| s.to_string())
            .map_err(|e| DiagnoseError::Schema(e.to_string()))?;
        out.push(QueryPatch {
            rewriting: rw,
            expansion,
            sql,
        });
    }
    Ok(out)
}

/// The fraction of the original query's rows a patch retains on a concrete
/// database (the F4 metric). `1.0` when the original returns nothing.
pub fn retained_fraction(db: &Instance, original: &Cq, patch: &QueryPatch) -> f64 {
    const LIMIT: usize = 100_000;
    let orig: Vec<Vec<Term>> = db.eval(original, LIMIT);
    if orig.is_empty() {
        return 1.0;
    }
    let kept = db.eval(&patch.expansion, LIMIT);
    let retained = orig.iter().filter(|t| kept.contains(t)).count();
    retained as f64 / orig.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Atom;
    use sqlir::Value;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    fn calendar_views() -> ViewSet {
        let mut v2 = Cq::new(
            vec![
                Term::var("e"),
                Term::var("t"),
                Term::var("k"),
                Term::var("n"),
            ],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        v2.name = Some("V2".into());
        ViewSet::new(vec![v2]).unwrap()
    }

    #[test]
    fn narrows_all_events_to_attended_events() {
        // Blocked: SELECT EId, Title FROM Events (all events).
        let q = Cq::new(
            vec![Term::var("e"), Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let patches = narrow_query(&q, &calendar_views(), &schema()).unwrap();
        assert!(!patches.is_empty());
        let p = &patches[0];
        // The expansion joins through Attendance — the paper's "add a
        // conjunct to its WHERE clause" materialized.
        assert!(p.expansion.atoms.iter().any(|a| a.relation == "Attendance"));
        assert!(p.sql.contains("Attendance"), "sql: {}", p.sql);
    }

    #[test]
    fn retained_fraction_measures_narrowing() {
        let q = Cq::new(
            vec![Term::var("e"), Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let patches = narrow_query(&q, &calendar_views(), &schema()).unwrap();
        let p = &patches[0];
        // DB: three events, user 1 attends one.
        let db = Instance::from_rows([
            (
                "Events",
                [
                    vec![Value::Int(1), Value::str("a"), Value::str("x")],
                    vec![Value::Int(2), Value::str("b"), Value::str("x")],
                    vec![Value::Int(3), Value::str("c"), Value::str("x")],
                ]
                .as_slice(),
            ),
            (
                "Attendance",
                [vec![Value::Int(1), Value::Int(2), Value::Null]].as_slice(),
            ),
        ]);
        let f = retained_fraction(&db, &q, p);
        assert!((f - 1.0 / 3.0).abs() < 1e-9, "retained {f}");
    }

    #[test]
    fn no_views_no_patches() {
        let q = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let views = ViewSet::new(vec![]).unwrap();
        assert!(narrow_query(&q, &views, &schema()).unwrap().is_empty());
    }
}
