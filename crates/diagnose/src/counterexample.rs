//! Counterexample construction (§5.1).
//!
//! A counterexample to compliance is a pair of databases that agree on every
//! policy view (and contain the trace facts) but disagree on the blocked
//! query — the formal proof-of-violation the paper notes is hard for a human
//! to act on directly, which is why the patch generators exist. It is still
//! produced: the experiments use it to *validate* that blocked queries are
//! genuinely non-compliant, and the triage example renders it for
//! illustration.
//!
//! Construction: ground the blocked query's canonical database (satisfying
//! its comparisons), add the trace facts, then search for a sub-instance
//! that drops some of the query's witness rows without changing any view's
//! answer. The search is complete for the bounded sizes in play; `None`
//! means no counterexample was found at this scale (the query may in fact
//! be compliant, or the blocking was a completeness artifact).

use qlogic::{Atom, CmpOp, Cq, Instance, Subst, Term, ViewSet};

/// A pair of view-indistinguishable databases separating the query.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The database on which the query returns the distinguishing tuple.
    pub with_tuple: Instance,
    /// The database on which it does not.
    pub without_tuple: Instance,
    /// A tuple in `Q(with_tuple) \ Q(without_tuple)`.
    pub tuple: Vec<Term>,
}

/// Evaluation budget.
const EVAL_LIMIT: usize = 512;

/// Grounds a query body into a concrete instance satisfying its comparisons.
///
/// Variables become fresh constants; a bounded backtracking search adjusts
/// assignments until every comparison evaluates true. Returns the grounding
/// substitution as well.
pub fn ground_body(cq: &Cq) -> Option<(Instance, Subst)> {
    let vars = cq.variables();
    // Candidate values per variable: fresh large integers (distinct), plus
    // neighbourhoods of the constants the query compares against.
    let mut base_candidates: Vec<Term> = Vec::new();
    for c in &cq.comparisons {
        for t in [&c.lhs, &c.rhs] {
            if let Term::Const(v) = t {
                if let qlogic::CVal::Int(i) = v {
                    for delta in [-1i64, 0, 1] {
                        let cand = Term::int(i + delta);
                        if !base_candidates.contains(&cand) {
                            base_candidates.push(cand);
                        }
                    }
                } else {
                    let cand = Term::Const(*v);
                    if !base_candidates.contains(&cand) {
                        base_candidates.push(cand);
                    }
                }
            }
        }
    }

    fn assign(vars: &[qlogic::Sym], idx: usize, cq: &Cq, base: &[Term], subst: &mut Subst) -> bool {
        if idx == vars.len() {
            // All assigned: check comparisons concretely.
            return cq.comparisons.iter().all(|c| {
                let m = qlogic::cq::apply_comparison(c, subst);
                match (&m.lhs, &m.rhs) {
                    (Term::Const(a), Term::Const(b)) => m.op.eval(a, b).unwrap_or(false),
                    // Parameters or unassigned terms: treat identity only.
                    (a, b) => match m.op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        _ => false,
                    },
                }
            });
        }
        let fresh = Term::int(9_000 + idx as i64);
        let mut candidates = vec![fresh];
        candidates.extend(base.iter().cloned());
        for cand in candidates {
            subst.insert(vars[idx], cand);
            if assign(vars, idx + 1, cq, base, subst) {
                return true;
            }
        }
        subst.remove(&vars[idx]);
        false
    }

    let mut subst = Subst::new();
    if !assign(&vars, 0, cq, &base_candidates, &mut subst) {
        return None;
    }
    let grounded = cq.substitute(&subst);
    let mut inst = Instance::new();
    for a in grounded.atoms {
        inst.add(a);
    }
    Some((inst, subst))
}

/// Searches for a counterexample showing the query is not determined by the
/// views plus the trace facts.
pub fn find_counterexample(q: &Cq, views: &ViewSet, facts: &[Atom]) -> Option<Counterexample> {
    // D2: the grounded query witness plus (grounded) trace facts.
    let (witness, subst) = ground_body(q)?;
    let tuple: Vec<Term> = q
        .head
        .iter()
        .map(|t| qlogic::cq::apply_term(t, &subst))
        .collect();

    let mut d2 = witness.clone();
    let mut fact_atoms: Vec<Atom> = Vec::new();
    for (i, f) in facts.iter().enumerate() {
        // Ground fact nulls with fresh constants of their own.
        let mut fs = Subst::new();
        for t in &f.args {
            if let Term::Var(v) = t {
                if !fs.contains_key(v) {
                    fs.insert(*v, Term::int(8_000 + i as i64));
                }
            }
        }
        let ground = qlogic::cq::apply_atom(f, &fs);
        fact_atoms.push(ground.clone());
        d2.add(ground);
    }

    if !d2.returns_tuple(q, &tuple) {
        return None; // grounding failed to witness the query
    }

    // View image on D2.
    let image = |db: &Instance| -> Vec<Vec<Vec<Term>>> {
        views
            .views()
            .iter()
            .map(|v| {
                let mut a = db.eval(v, EVAL_LIMIT);
                a.sort();
                a
            })
            .collect()
    };
    let image2 = image(&d2);

    // D1 candidates: remove non-empty subsets of the witness atoms (trace
    // facts must stay — D1 must remain consistent with the session history),
    // or mutate a witness row's grounded cells to fresh values. Mutation
    // covers the case where a view makes row *existence* public but not its
    // contents: the two databases then hold the same row skeleton with a
    // different payload.
    let removable: Vec<Atom> = witness
        .atoms
        .iter()
        .filter(|a| !fact_atoms.contains(a))
        .cloned()
        .collect();
    let n = removable.len();
    if n == 0 || n > 12 {
        return None;
    }
    let try_d1 = |d1: &Instance| -> bool { !d1.returns_tuple(q, &tuple) && image(d1) == image2 };
    for mask in 1u32..(1 << n) {
        let mut d1 = Instance::new();
        for a in &d2.atoms {
            let removed = removable
                .iter()
                .enumerate()
                .any(|(i, r)| mask & (1 << i) != 0 && r == a);
            if !removed {
                d1.add(a.clone());
            }
        }
        if try_d1(&d1) {
            return Some(Counterexample {
                with_tuple: d2,
                without_tuple: d1,
                tuple,
            });
        }
    }
    // Mutation candidates: for each witness atom, replace the cells that
    // came from grounded variables (values ≥ the grounding base) with fresh
    // distinct constants, one subset at a time — plus single-cell mutations
    // to comparison-boundary neighbours (to flip an `age >= 60` without
    // leaving the policy's `age >= 18`).
    let neighbour_values: Vec<Term> = {
        let mut out = Vec::new();
        for c in &q.comparisons {
            for t in [&c.lhs, &c.rhs] {
                if let Term::Const(qlogic::CVal::Int(i)) = t {
                    for delta in [-1i64, 0, 1] {
                        let cand = Term::int(i + delta);
                        if !out.contains(&cand) {
                            out.push(cand);
                        }
                    }
                }
            }
        }
        out
    };
    for (ai, atom) in removable.iter().enumerate() {
        let mutable: Vec<usize> = atom
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t, Term::Const(qlogic::CVal::Int(i)) if *i >= 9_000))
            .map(|(i, _)| i)
            .collect();
        if mutable.is_empty() || mutable.len() > 8 {
            continue;
        }
        let substitute = |mutated: Atom| -> Option<Counterexample> {
            let mut d1 = Instance::new();
            for a in &d2.atoms {
                if a == atom {
                    d1.add(mutated.clone());
                } else {
                    d1.add(a.clone());
                }
            }
            try_d1(&d1).then(|| Counterexample {
                with_tuple: d2.clone(),
                without_tuple: d1,
                tuple: tuple.clone(),
            })
        };
        // Subset mutation to fresh values.
        for mmask in 1u32..(1 << mutable.len()) {
            let mut mutated = atom.clone();
            for (bit, &pos) in mutable.iter().enumerate() {
                if mmask & (1 << bit) != 0 {
                    mutated.args[pos] = Term::int(7_000 + (ai * 16 + pos) as i64);
                }
            }
            if let Some(ce) = substitute(mutated) {
                return Some(ce);
            }
        }
        // Single-cell mutation to comparison neighbours.
        for &pos in &mutable {
            for v in &neighbour_values {
                let mut mutated = atom.clone();
                mutated.args[pos] = *v;
                if let Some(ce) = substitute(mutated) {
                    return Some(ce);
                }
            }
        }
        // Payload swaps: two rows that exchange a payload cell between two
        // anchors leave every projection-pair view unchanged while flipping
        // which anchor the payload belongs to (the hospital narrowing).
        let anchors: Vec<usize> = atom
            .args
            .iter()
            .enumerate()
            .filter(|(i, _)| !mutable.contains(i))
            .map(|(i, _)| i)
            .collect();
        if anchors.is_empty() {
            continue;
        }
        for &swap_pos in &mutable {
            let fresh_payload = Term::int(7_100 + (ai * 16 + swap_pos) as i64);
            // A second anchor row.
            let mut other = atom.clone();
            for &a in &anchors {
                other.args[a] = Term::int(7_200 + (ai * 16 + a) as i64);
            }
            // D_a: original row + other row with fresh payload.
            let mut other_a = other.clone();
            other_a.args[swap_pos] = fresh_payload;
            let mut da = d2.clone();
            da.add(other_a);
            // D_b: payloads exchanged between the two anchor rows.
            let mut self_b = atom.clone();
            self_b.args[swap_pos] = fresh_payload;
            let mut other_b = other.clone();
            other_b.args[swap_pos] = atom.args[swap_pos];
            let mut db_ = Instance::new();
            for a in &d2.atoms {
                if a == atom {
                    db_.add(self_b.clone());
                } else {
                    db_.add(a.clone());
                }
            }
            db_.add(other_b);
            if da.returns_tuple(q, &tuple)
                && !db_.returns_tuple(q, &tuple)
                && image(&da) == image(&db_)
            {
                return Some(Counterexample {
                    with_tuple: da,
                    without_tuple: db_,
                    tuple,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Comparison;

    /// Calendar policy instantiated for user 1.
    fn calendar_views() -> ViewSet {
        let mut v1 = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        v1.name = Some("V1".into());
        let mut v2 = Cq::new(
            vec![
                Term::var("e"),
                Term::var("t"),
                Term::var("k"),
                Term::var("n"),
            ],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        v2.name = Some("V2".into());
        ViewSet::new(vec![v1, v2]).unwrap()
    }

    #[test]
    fn blocked_q2_has_counterexample() {
        // Q2 in isolation: SELECT * FROM Events WHERE EId = 2.
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let ce = find_counterexample(&q2, &calendar_views(), &[]).expect("counterexample");
        // The two databases agree on the views but differ on Q2.
        assert!(ce.with_tuple.returns_tuple(&q2, &ce.tuple));
        assert!(!ce.without_tuple.returns_tuple(&q2, &ce.tuple));
    }

    #[test]
    fn allowed_q2_with_fact_has_no_counterexample() {
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        // With the trace fact, every consistent database has the attendance
        // row — the Events row is then view-visible through V2, so removing
        // it changes the image.
        let fact = Atom::new(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("w")],
        );
        assert!(find_counterexample(&q2, &calendar_views(), std::slice::from_ref(&fact)).is_none());
    }

    #[test]
    fn grounding_satisfies_comparisons() {
        let q = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![
                Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60)),
                Comparison::new(Term::var("a"), CmpOp::Lt, Term::int(65)),
            ],
        );
        let (inst, subst) = ground_body(&q).expect("groundable");
        assert_eq!(inst.atoms.len(), 1);
        let age = qlogic::cq::apply_term(&Term::var("a"), &subst);
        match age {
            Term::Const(qlogic::CVal::Int(i)) => assert!((60..65).contains(&i)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unsatisfiable_query_cannot_ground() {
        let q = Cq::new(
            vec![],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![Comparison::new(Term::var("x"), CmpOp::Lt, Term::var("x"))],
        );
        assert!(ground_body(&q).is_none());
    }
}
