//! Patch ranking and the assembled diagnosis report (§5.2).
//!
//! A violation gets every applicable patch, ranked by how invasive applying
//! it would be. The paper's observation — "if all policy patches look
//! unreasonable, the application is the likely culprit" — becomes the
//! [`DiagnosisReport::likely_culprit`] heuristic: when the only policy
//! patches grant broad access (views with no session parameter and no
//! selective constant), the report points at the application.

use std::fmt;

use qlogic::{Cq, Term};

use crate::check_patch::AccessCheckPatch;
use crate::counterexample::Counterexample;
use crate::policy_patch::PolicyPatch;
use crate::query_patch::QueryPatch;

/// Any patch the diagnosis can propose.
#[derive(Debug, Clone)]
pub enum Patch {
    /// Add views to the policy.
    Policy(PolicyPatch),
    /// Narrow the query.
    Query(QueryPatch),
    /// Add an access check before the query.
    AccessCheck(AccessCheckPatch),
}

impl Patch {
    /// A coarse invasiveness cost: lower sorts first.
    pub fn cost(&self) -> usize {
        match self {
            // An access check is a one-line app change.
            Patch::AccessCheck(p) => 10 + p.fact.args.len() - p.existentials,
            // A query rewrite changes app behaviour (fewer rows).
            Patch::Query(p) => 20 + p.expansion.atoms.len(),
            // A policy change relaxes security; most invasive.
            Patch::Policy(p) => 30 + 5 * p.additions.len(),
        }
    }

    /// Short label for tables.
    pub fn kind(&self) -> &'static str {
        match self {
            Patch::Policy(_) => "policy",
            Patch::Query(_) => "query-rewrite",
            Patch::AccessCheck(_) => "access-check",
        }
    }
}

/// Who the diagnosis points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Culprit {
    /// The application requests more than intended.
    Application,
    /// The policy is stricter than intended.
    Policy,
    /// Not enough signal to say.
    Unclear,
}

/// The assembled diagnosis for one blocked query.
#[derive(Debug, Clone)]
pub struct DiagnosisReport {
    /// The blocked query.
    pub query: Cq,
    /// A separating pair of databases, if found.
    pub counterexample: Option<Counterexample>,
    /// Patches, least-invasive first.
    pub patches: Vec<Patch>,
}

impl DiagnosisReport {
    /// Sorts patches by cost (stable).
    pub fn sort(&mut self) {
        self.patches.sort_by_key(Patch::cost);
    }

    /// Applies the paper's heuristic: if every proposed policy patch is
    /// unreasonably broad, the application is the likely culprit.
    pub fn likely_culprit(&self) -> Culprit {
        let policy_patches: Vec<&PolicyPatch> = self
            .patches
            .iter()
            .filter_map(|p| match p {
                Patch::Policy(pp) => Some(pp),
                _ => None,
            })
            .collect();
        if policy_patches.is_empty() {
            // Only app-side fixes exist (or none at all).
            return if self.patches.is_empty() {
                Culprit::Unclear
            } else {
                Culprit::Application
            };
        }
        let all_unreasonable = policy_patches
            .iter()
            .all(|pp| pp.additions.iter().any(view_is_broad));
        if all_unreasonable {
            Culprit::Application
        } else {
            Culprit::Policy
        }
    }
}

/// A view is "unreasonably broad" when nothing scopes it to a session or a
/// selection: no parameter, no constant, single atom (whole-table grant).
fn view_is_broad(v: &Cq) -> bool {
    let has_param = v
        .atoms
        .iter()
        .any(|a| a.args.iter().any(|t| matches!(t, Term::Param(_))));
    let has_const = v
        .atoms
        .iter()
        .any(|a| a.args.iter().any(|t| matches!(t, Term::Const(_))));
    !has_param && !has_const && v.atoms.len() <= 1 && v.comparisons.is_empty()
}

impl fmt::Display for DiagnosisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "blocked query: {}", self.query)?;
        match &self.counterexample {
            Some(ce) => {
                writeln!(
                    f,
                    "counterexample (databases agree on views, differ on query):"
                )?;
                writeln!(f, "  tuple {:?} present in:", ce.tuple)?;
                for a in &ce.with_tuple.atoms {
                    writeln!(f, "    {a}")?;
                }
                writeln!(f, "  absent from:")?;
                for a in &ce.without_tuple.atoms {
                    writeln!(f, "    {a}")?;
                }
            }
            None => writeln!(f, "no counterexample found at bounded scale")?,
        }
        writeln!(f, "patches ({}):", self.patches.len())?;
        for p in &self.patches {
            match p {
                Patch::AccessCheck(ac) => {
                    writeln!(f, "  [access-check] guard with: {}", ac.check_sql)?;
                }
                Patch::Query(qp) => {
                    writeln!(f, "  [query-rewrite] narrow to: {}", qp.sql)?;
                }
                Patch::Policy(pp) => {
                    writeln!(f, "  [policy] add {} view(s):", pp.additions.len())?;
                    for v in &pp.additions {
                        writeln!(f, "      {v}")?;
                    }
                }
            }
        }
        writeln!(f, "likely culprit: {:?}", self.likely_culprit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Atom;

    fn broad_view() -> Cq {
        Cq::new(
            vec![Term::var("x"), Term::var("y")],
            vec![Atom::new("Events", vec![Term::var("x"), Term::var("y")])],
            vec![],
        )
    }

    fn scoped_view() -> Cq {
        Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::param("MyUId"), Term::var("e"), Term::var("n")],
            )],
            vec![],
        )
    }

    #[test]
    fn broadness_heuristic() {
        assert!(view_is_broad(&broad_view()));
        assert!(!view_is_broad(&scoped_view()));
    }

    #[test]
    fn culprit_application_when_only_broad_policy_patches() {
        let mut report = DiagnosisReport {
            query: broad_view(),
            counterexample: None,
            patches: vec![Patch::Policy(PolicyPatch {
                additions: vec![broad_view()],
            })],
        };
        report.sort();
        assert_eq!(report.likely_culprit(), Culprit::Application);
    }

    #[test]
    fn culprit_policy_when_scoped_patch_exists() {
        let report = DiagnosisReport {
            query: broad_view(),
            counterexample: None,
            patches: vec![Patch::Policy(PolicyPatch {
                additions: vec![scoped_view()],
            })],
        };
        assert_eq!(report.likely_culprit(), Culprit::Policy);
    }

    #[test]
    fn cost_orders_access_check_first() {
        let ac = Patch::AccessCheck(AccessCheckPatch {
            fact: Atom::new(
                "Attendance",
                vec![Term::int(1), Term::int(2), Term::var("w")],
            ),
            check_sql: "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2".into(),
            existentials: 1,
        });
        let pol = Patch::Policy(PolicyPatch {
            additions: vec![scoped_view()],
        });
        assert!(ac.cost() < pol.cost());
    }
}
