//! Access-check patches via abductive inference (§5.2.2, form 2).
//!
//! Goal: a statement about database content such that (1) once known to
//! hold, the blocked query becomes compliant given the existing trace, and
//! (2) the statement is consistent with the trace. The paper's example: if
//! `Q2` were issued alone, the statement "the Attendance table contains row
//! `(UId=1, EId=2)`" unblocks it — and the developer adds exactly Listing
//! 1's `if`-check.
//!
//! The search is enumerative abduction: candidate facts are atoms over the
//! policy-relevant relations with arguments drawn from the blocked query's
//! constants (plus existential placeholders); each candidate is tested by
//! re-running the compliance certificate with the fact assumed.

use qlogic::{equivalent_rewriting, Atom, Cq, RelSchema, Term, ViewSet};

/// One access-check proposal.
#[derive(Debug, Clone)]
pub struct AccessCheckPatch {
    /// The abduced fact (variables are existential: "some such row exists").
    pub fact: Atom,
    /// An executable check the developer can add before the query.
    pub check_sql: String,
    /// Number of existential positions (more = weaker assumption = better).
    pub existentials: usize,
}

/// Search bounds.
#[derive(Debug, Clone, Copy)]
pub struct AbductionOptions {
    /// Maximum candidate facts tested.
    pub max_candidates: usize,
    /// Maximum abduced facts per query (1 is the common case).
    pub max_facts: usize,
}

impl Default for AbductionOptions {
    fn default() -> AbductionOptions {
        AbductionOptions {
            max_candidates: 2_000,
            max_facts: 1,
        }
    }
}

/// Abduces access-check patches for a blocked query.
///
/// Every returned patch satisfies: `q` has an equivalent rewriting over the
/// views once `fact` is added to the trace facts. Patches are ordered
/// weakest-assumption-first (most existential positions).
pub fn abduce_checks(
    q: &Cq,
    views: &ViewSet,
    trace_facts: &[Atom],
    schema: &RelSchema,
    opts: AbductionOptions,
) -> Vec<AccessCheckPatch> {
    // Constants (and parameters) available for candidate arguments: those in
    // the query and in the views.
    let mut rigid_pool: Vec<Term> = Vec::new();
    let mut collect = |cq: &Cq| {
        for a in &cq.atoms {
            for t in &a.args {
                if t.is_rigid() && !rigid_pool.contains(t) {
                    rigid_pool.push(*t);
                }
            }
        }
        for t in &cq.head {
            if t.is_rigid() && !rigid_pool.contains(t) {
                rigid_pool.push(*t);
            }
        }
    };
    collect(q);
    for v in views.views() {
        collect(v);
    }

    // Relations worth abducing over: those appearing in view bodies (a fact
    // about an un-viewed relation cannot change any rewriting).
    let mut relations: Vec<(qlogic::Sym, usize)> = Vec::new();
    for v in views.views() {
        for a in &v.atoms {
            let entry = (a.relation, a.args.len());
            if !relations.contains(&entry) {
                relations.push(entry);
            }
        }
    }

    let mut out: Vec<AccessCheckPatch> = Vec::new();
    let mut tested = 0usize;
    for (relation, arity) in relations {
        // Argument choices per position: each rigid term, or a fresh
        // existential variable.
        let mut stack: Vec<Vec<Term>> = vec![Vec::new()];
        for pos in 0..arity {
            let mut next = Vec::new();
            for prefix in &stack {
                for t in &rigid_pool {
                    let mut p = prefix.clone();
                    p.push(*t);
                    next.push(p);
                }
                let mut p = prefix.clone();
                p.push(Term::var(format!("ex·{pos}")));
                next.push(p);
            }
            stack = next;
            if stack.len() > opts.max_candidates {
                stack.truncate(opts.max_candidates);
            }
        }
        for args in stack {
            if tested >= opts.max_candidates {
                break;
            }
            tested += 1;
            let fact = Atom::new(relation, args);
            // Skip facts already known.
            if trace_facts.contains(&fact) {
                continue;
            }
            let mut facts = trace_facts.to_vec();
            facts.push(fact.clone());
            if equivalent_rewriting(q, views, &facts).is_some() {
                let existentials = fact
                    .args
                    .iter()
                    .filter(|t| matches!(t, Term::Var(_)))
                    .count();
                if let Some(check_sql) = fact_check_sql(&fact, schema) {
                    out.push(AccessCheckPatch {
                        fact,
                        check_sql,
                        existentials,
                    });
                }
            }
        }
    }

    // Weakest assumptions first; drop facts subsumed by weaker ones.
    out.sort_by_key(|p| std::cmp::Reverse(p.existentials));
    let mut kept: Vec<AccessCheckPatch> = Vec::new();
    for p in out {
        let subsumed = kept.iter().any(|k| {
            k.fact.relation == p.fact.relation
                && k.fact
                    .args
                    .iter()
                    .zip(&p.fact.args)
                    .all(|(kt, pt)| matches!(kt, Term::Var(_)) || kt == pt)
        });
        if !subsumed {
            kept.push(p);
        }
        if kept.len() >= opts.max_facts.max(4) {
            break;
        }
    }
    kept.truncate(opts.max_facts.max(1));
    kept
}

/// Renders `EXISTS`-style check SQL for an abduced fact.
fn fact_check_sql(fact: &Atom, schema: &RelSchema) -> Option<String> {
    let columns = schema.columns(fact.relation.as_str()).ok()?;
    if columns.len() != fact.args.len() {
        return None;
    }
    let mut conds = Vec::new();
    for (col, t) in columns.iter().zip(&fact.args) {
        match t {
            Term::Const(v) => conds.push(format!("{col} = {}", v.to_sql_literal())),
            Term::Param(p) => conds.push(format!("{col} = ?{p}")),
            Term::Var(_) => {} // existential: no condition
        }
    }
    let where_clause = if conds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", conds.join(" AND "))
    };
    Some(format!("SELECT 1 FROM {}{}", fact.relation, where_clause))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s
    }

    fn calendar_views() -> ViewSet {
        let mut v1 = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        v1.name = Some("V1".into());
        let mut v2 = Cq::new(
            vec![
                Term::var("e"),
                Term::var("t"),
                Term::var("k"),
                Term::var("n"),
            ],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        v2.name = Some("V2".into());
        ViewSet::new(vec![v1, v2]).unwrap()
    }

    #[test]
    fn reproduces_the_papers_abduction_example() {
        // Q2 issued alone: the abduced fact must be "Attendance contains
        // (UId=1, EId=2, ·)" and the check SQL mirrors Listing 1's if.
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let patches = abduce_checks(
            &q2,
            &calendar_views(),
            &[],
            &schema(),
            AbductionOptions::default(),
        );
        assert!(
            !patches.is_empty(),
            "abduction must find the attendance fact"
        );
        let p = &patches[0];
        assert_eq!(p.fact.relation, "Attendance");
        assert_eq!(p.fact.args[0], Term::int(1));
        assert_eq!(p.fact.args[1], Term::int(2));
        assert!(
            matches!(p.fact.args[2], Term::Var(_)),
            "notes is existential"
        );
        assert_eq!(
            p.check_sql,
            "SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2"
        );
    }

    #[test]
    fn abduced_fact_actually_unblocks() {
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let views = calendar_views();
        assert!(
            equivalent_rewriting(&q2, &views, &[]).is_none(),
            "starts blocked"
        );
        let patches = abduce_checks(&q2, &views, &[], &schema(), AbductionOptions::default());
        let fact = patches[0].fact.clone();
        assert!(
            equivalent_rewriting(&q2, &views, &[fact]).is_some(),
            "unblocked"
        );
    }

    #[test]
    fn prefers_weakest_assumption() {
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let patches = abduce_checks(
            &q2,
            &calendar_views(),
            &[],
            &schema(),
            AbductionOptions {
                max_candidates: 2_000,
                max_facts: 3,
            },
        );
        // The top patch leaves Notes existential rather than pinning it.
        assert!(patches[0].existentials >= 1);
    }

    #[test]
    fn hopeless_queries_get_no_patch() {
        // No view mentions Secrets; no fact about viewed relations helps.
        let q = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("Secrets", vec![Term::var("x")])],
            vec![],
        );
        let mut s = schema();
        s.add_table("Secrets", ["x"]);
        let patches = abduce_checks(&q, &calendar_views(), &[], &s, AbductionOptions::default());
        assert!(patches.is_empty());
    }
}
