//! Policy patches via extraction deltas (§5.2.1).
//!
//! "Run the extraction algorithm on the up-to-date source code … and compare
//! the extracted policy with the current one." A policy patch is the set of
//! extracted views not already expressible from the current policy, filtered
//! to those that actually unblock the offending query.

use qlogic::{equivalent_rewriting, Cq, ViewSet};

use crate::error::DiagnoseError;

/// A proposed policy change.
#[derive(Debug, Clone)]
pub struct PolicyPatch {
    /// Views to add to the policy.
    pub additions: Vec<Cq>,
}

impl PolicyPatch {
    /// `true` if nothing needs to change.
    pub fn is_empty(&self) -> bool {
        self.additions.is_empty()
    }
}

/// Computes the extraction delta: extracted views not expressible from the
/// current policy.
pub fn extraction_delta(current: &[Cq], extracted: &[Cq]) -> Result<Vec<Cq>, DiagnoseError> {
    let named: Vec<Cq> = current
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let mut n = v.clone();
            n.name = Some(format!("C{i}").into());
            n
        })
        .collect();
    let viewset = ViewSet::new(named)?;
    Ok(extracted
        .iter()
        .filter(|v| equivalent_rewriting(v, &viewset, &[]).is_none())
        .cloned()
        .collect())
}

/// Proposes a policy patch unblocking `q`: the minimal subset of the
/// extraction delta whose addition makes `q` compliant (given the trace
/// facts). Returns `None` if even the full delta does not unblock.
pub fn propose(
    current: &[Cq],
    extracted: &[Cq],
    q: &Cq,
    trace_facts: &[qlogic::Atom],
) -> Result<Option<PolicyPatch>, DiagnoseError> {
    let delta = extraction_delta(current, extracted)?;
    if delta.is_empty() {
        return Ok(None);
    }

    let compliant_with = |additions: &[Cq]| -> Result<bool, DiagnoseError> {
        let mut all: Vec<Cq> = Vec::with_capacity(current.len() + additions.len());
        for (i, v) in current.iter().enumerate() {
            let mut n = v.clone();
            n.name = Some(format!("C{i}").into());
            all.push(n);
        }
        for (i, v) in additions.iter().enumerate() {
            let mut n = v.clone();
            n.name = Some(format!("N{i}").into());
            all.push(n);
        }
        let viewset = ViewSet::new(all)?;
        Ok(equivalent_rewriting(q, &viewset, trace_facts).is_some())
    };

    if !compliant_with(&delta)? {
        return Ok(None);
    }
    // Greedy minimization: drop additions that aren't needed.
    let mut kept = delta;
    let mut i = 0;
    while i < kept.len() {
        let mut candidate = kept.clone();
        candidate.remove(i);
        if compliant_with(&candidate)? {
            kept = candidate;
        } else {
            i += 1;
        }
    }
    Ok(Some(PolicyPatch { additions: kept }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::{Atom, Term};

    fn v1() -> Cq {
        Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::var("e"), Term::var("n")],
            )],
            vec![],
        )
    }

    fn v2() -> Cq {
        Cq::new(
            vec![Term::var("e"), Term::var("t"), Term::var("k")],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        )
    }

    #[test]
    fn delta_excludes_expressible_views() {
        // Extracted = {V1, V2}; current = {V1}: delta = {V2}.
        let delta = extraction_delta(&[v1()], &[v1(), v2()]).unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].atoms.len(), 2);
    }

    #[test]
    fn proposes_minimal_unblocking_addition() {
        // Policy = {V1} only; Q2 (with the trace fact) needs V2.
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let fact = Atom::new(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("w")],
        );
        // Extraction found V2 plus an unrelated view.
        let unrelated = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("Other", vec![Term::var("x")])],
            vec![],
        );
        let patch = propose(
            &[v1()],
            &[v1(), v2(), unrelated],
            &q2,
            std::slice::from_ref(&fact),
        )
        .unwrap()
        .expect("patch exists");
        assert_eq!(patch.additions.len(), 1, "minimal: only V2");
        assert_eq!(patch.additions[0].atoms.len(), 2);
    }

    #[test]
    fn no_patch_when_delta_does_not_help() {
        let q = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("Secrets", vec![Term::var("x")])],
            vec![],
        );
        let patch = propose(&[v1()], &[v1(), v2()], &q, &[]).unwrap();
        assert!(patch.is_none());
    }

    #[test]
    fn empty_delta_when_policies_match() {
        let delta = extraction_delta(&[v1(), v2()], &[v1(), v2()]).unwrap();
        assert!(delta.is_empty());
    }
}
