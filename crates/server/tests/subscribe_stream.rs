//! End-to-end tests of live journal streaming: a `subscribe`d connection
//! must see *exactly* what a cursor-polling client sees — same events,
//! same order, same drop accounting — with the only difference being who
//! initiates the transfer.
//!
//! The journal is deliberately tiny here (32 slots) so ring eviction is
//! the common case, not a corner: the interesting property is not "events
//! arrive" but that **losses are accounted exactly** — every published
//! event is either delivered once, in order, or counted in `dropped`,
//! and the split agrees with the stateless `journal` request's numbers.

use std::sync::Arc;
use std::time::Duration;

use bep_core::{schema_of_database, ComplianceChecker, Policy, ProxyConfig, SqlProxy, Verdict};
use bep_server::{Client, ClientError, Server, ServerConfig, ServerMode};
use minidb::Database;
use sqlir::Value;

const IO: Duration = Duration::from_secs(5);
const JOURNAL_CAP: usize = 32;

fn calendar_db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), (3, 'party', 'fun')",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')")
        .unwrap();
    db
}

fn start(mode: ServerMode) -> (Server, Arc<SqlProxy>) {
    let db = calendar_db();
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId")],
    )
    .unwrap();
    let proxy = Arc::new(SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig {
            journal_capacity: JOURNAL_CAP,
            spans: true,
            ..ProxyConfig::default()
        },
    ));
    let server = Server::start(
        Arc::clone(&proxy),
        ServerConfig {
            mode,
            ..ServerConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind");
    (server, proxy)
}

/// The alternating workload: even-indexed statements are allowed by V1,
/// odd ones blocked (Kind is not covered by the policy), so the verdict
/// of the decision at journal sequence `s` is decidable from `s` alone —
/// which lets the tests content-check even a partially evicted stream.
fn load_stmts(n: usize) -> Vec<(String, Vec<(String, Value)>)> {
    (0..n)
        .map(|i| {
            let sql = if i % 2 == 0 {
                "SELECT EId FROM Attendance WHERE UId = ?MyUId"
            } else {
                "SELECT Kind FROM Events WHERE EId = ?e"
            };
            (sql.to_string(), vec![("e".into(), Value::Int(2))])
        })
        .collect()
}

fn expected_verdict(seq: u64) -> Verdict {
    if seq.is_multiple_of(2) {
        Verdict::Allowed
    } else {
        Verdict::Blocked
    }
}

#[test]
fn subscribe_matches_cursor_polling_exactly_after_overflow() {
    let (server, proxy) = start(ServerMode::EventDriven);
    let addr = server.addr();

    // Phase 1: overflow the ring with pipelined load, nobody reading.
    let mut loader = Client::connect(addr, IO).unwrap();
    let session = loader.begin(vec![("MyUId".into(), Value::Int(1))]).unwrap();
    let total = 100usize;
    let results = loader
        .execute_pipelined(session, &load_stmts(total))
        .unwrap();
    assert_eq!(results.len(), total);

    // The quiescent journal: published = 100, retained = the newest 32.
    let mut poller = Client::connect(addr, IO).unwrap();
    let page = poller.journal(0, 512).unwrap();
    assert_eq!(page.published, total as u64);
    assert_eq!(page.evicted, (total - JOURNAL_CAP) as u64);
    assert_eq!(page.events.len(), JOURNAL_CAP);

    // A subscription from sequence 0 must open with exactly the same
    // view: the retained window as its first push, the evictions as its
    // drop count. Same events, same order, same loss accounting.
    let mut sub = Client::connect(addr, IO).unwrap();
    sub.subscribe(0).unwrap();
    let first = sub.next_events().unwrap();
    assert_eq!(first.dropped, page.evicted, "drop accounting disagrees");
    assert_eq!(
        first.events, page.events,
        "stream and poll saw different events"
    );
    for (i, e) in first.events.iter().enumerate() {
        assert_eq!(e.seq, (total - JOURNAL_CAP + i) as u64, "order");
        assert_eq!(
            e.verdict,
            expected_verdict(e.seq),
            "content at seq {}",
            e.seq
        );
        assert!(e.span.spans >= 1, "span summary missing at seq {}", e.seq);
    }

    // Phase 2: more pipelined load while the subscription is live. The
    // per-tick push cadence makes batch boundaries timing-dependent, but
    // the *accounting* must stay exact: every new sequence is delivered
    // exactly once and in order, or charged to `dropped`.
    let more = 150usize;
    let results = loader
        .execute_pipelined(session, &load_stmts(more))
        .unwrap();
    assert_eq!(results.len(), more);

    let grand_total = (total + more) as u64;
    let mut delivered: Vec<u64> = first.events.iter().map(|e| e.seq).collect();
    let mut dropped = first.dropped;
    while delivered.len() as u64 + dropped < grand_total {
        let batch = sub.next_events().expect("stream batch");
        assert!(batch.dropped >= dropped, "drop count went backwards");
        dropped = batch.dropped;
        for e in batch.events {
            if let Some(&last) = delivered.last() {
                assert!(
                    e.seq > last,
                    "duplicate or out-of-order: {} after {last}",
                    e.seq
                );
            }
            assert_eq!(
                e.verdict,
                expected_verdict(e.seq),
                "content at seq {}",
                e.seq
            );
            delivered.push(e.seq);
        }
    }
    assert_eq!(
        delivered.len() as u64 + dropped,
        grand_total,
        "every event delivered once or accounted as dropped"
    );
    // In-process cross-check: the server-side journal agrees on totals.
    assert_eq!(proxy.journal().published(), grand_total);

    server.shutdown();
}

#[test]
fn subscribe_from_a_later_sequence_skips_without_charging_drops() {
    let (server, _proxy) = start(ServerMode::EventDriven);
    let addr = server.addr();

    let mut loader = Client::connect(addr, IO).unwrap();
    let session = loader.begin(vec![("MyUId".into(), Value::Int(1))]).unwrap();
    loader.execute_pipelined(session, &load_stmts(20)).unwrap();

    // Start mid-stream: events before `after` are intentionally skipped,
    // not losses — dropped stays zero.
    let mut sub = Client::connect(addr, IO).unwrap();
    sub.subscribe(15).unwrap();
    let batch = sub.next_events().unwrap();
    assert_eq!(batch.dropped, 0);
    assert_eq!(
        batch.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
        (15u64..20).collect::<Vec<_>>()
    );

    // New decisions keep flowing to the same subscription.
    loader.execute_pipelined(session, &load_stmts(3)).unwrap();
    let batch = sub.next_events().unwrap();
    assert_eq!(batch.events.first().map(|e| e.seq), Some(20));

    server.shutdown();
}

#[test]
fn blocking_front_end_refuses_subscribe_with_a_typed_error() {
    let (server, _proxy) = start(ServerMode::Blocking);
    let mut c = Client::connect(server.addr(), IO).unwrap();
    match c.subscribe(0) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "unsupported"),
        other => panic!("expected typed unsupported error, got {other:?}"),
    }
    // The connection survives the refusal: normal requests still work.
    let session = c.begin(vec![("MyUId".into(), Value::Int(1))]).unwrap();
    assert!(c.end(session).unwrap());
    server.shutdown();
}
