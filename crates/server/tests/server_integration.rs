//! End-to-end tests of the networked enforcement front-end: a real
//! `Server` on an ephemeral port, driven through the real `Client` (and
//! raw frames where the point is protocol abuse).

use std::sync::Arc;
use std::time::Duration;

use bep_core::{
    schema_of_database, template_hash, CacheTier, ComplianceChecker, Phase, Policy, ProxyConfig,
    SqlProxy, Verdict,
};
use bep_server::framing::{frame_bytes, write_frame};
use bep_server::{Client, ClientError, ExecOutcome, Server, ServerConfig, ServerMode};
use minidb::Database;
use sqlir::Value;

const IO: Duration = Duration::from_secs(5);

fn calendar_db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), (3, 'party', 'fun')",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')")
        .unwrap();
    db
}

fn calendar_proxy() -> Arc<SqlProxy> {
    let db = calendar_db();
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    Arc::new(SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig::default(),
    ))
}

fn start(config: ServerConfig) -> (Server, Arc<SqlProxy>) {
    let proxy = calendar_proxy();
    let server = Server::start(Arc::clone(&proxy), config, "127.0.0.1:0").expect("bind");
    (server, proxy)
}

fn uid_bindings(uid: i64) -> Vec<(String, Value)> {
    vec![("MyUId".into(), Value::Int(uid))]
}

#[test]
fn full_round_trip_over_tcp() {
    let (server, _proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();

    let s = c.begin(uid_bindings(1)).unwrap();

    // Q1: the probe is allowed and returns a row.
    let r1 = c
        .execute(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();
    match &r1 {
        ExecOutcome::Rows(rows) => assert_eq!(rows.rows.len(), 1),
        other => panic!("expected rows, got {other:?}"),
    }

    // Q2: allowed thanks to the trace recorded by Q1.
    let r2 = c
        .execute(
            s,
            "SELECT * FROM Events WHERE EId = ?event",
            &[("event".into(), Value::Int(2))],
        )
        .unwrap();
    match &r2 {
        ExecOutcome::Rows(rows) => {
            assert_eq!(rows.rows[0][1], Value::str("standup"));
        }
        other => panic!("expected rows, got {other:?}"),
    }

    // The trace summary reflects both queries.
    let trace = c.trace_summary(s).unwrap();
    assert_eq!(trace.entries, 2);
    assert!(trace.facts >= 1);

    // Stats flow through, percentiles included.
    let stats = c.stats().unwrap();
    assert_eq!(stats.allowed, 2);
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.latency_count, 2);
    assert!(stats.p99_ns >= stats.p50_ns && stats.p50_ns > 0);

    // End is idempotent over the wire.
    assert!(c.end(s).unwrap());
    assert!(!c.end(s).unwrap());

    // A write passes through.
    let s2 = c.begin(uid_bindings(1)).unwrap();
    let w = c
        .execute(
            s2,
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 3, NULL)",
            &[],
        )
        .unwrap();
    assert_eq!(w, ExecOutcome::Affected(1));

    server.shutdown();
}

#[test]
fn blocked_queries_carry_typed_reasons() {
    let (server, _proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();

    let r = c
        .execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
        .unwrap();
    match r {
        ExecOutcome::Blocked { reason, .. } => assert_eq!(reason, "not-determined"),
        other => panic!("expected blocked, got {other:?}"),
    }

    let r = c.execute(s, "SELEC whoops", &[]).unwrap();
    match r {
        ExecOutcome::Blocked { reason, .. } => assert_eq!(reason, "parse-error"),
        other => panic!("expected blocked, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let (server, _proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();

    for bad in [
        &b"not json at all"[..],
        br#"{"t":"warp-core"}"#,
        br#"{"t":"execute","sql":"SELECT 1"}"#,
        br#"{"no":"tag"}"#,
        b"\xff\xfe\x00",
    ] {
        match c.raw_round_trip(bad).unwrap() {
            bep_server::Response::Error { kind, .. } => {
                assert_eq!(kind, bep_server::ErrorKind::Malformed);
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    // Five garbage frames later, the same connection still works.
    let r = c
        .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap();
    assert!(r.is_allowed());
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_then_closed() {
    let config = ServerConfig {
        max_frame: 1024,
        ..Default::default()
    };
    let (server, _proxy) = start(config);
    let mut c = Client::connect(server.addr(), IO).unwrap();

    let huge = vec![b'x'; 4096];
    match c.raw_round_trip(&huge) {
        Ok(bep_server::Response::Error { kind, msg }) => {
            assert_eq!(kind, bep_server::ErrorKind::Malformed);
            assert!(msg.contains("exceeds limit"), "{msg}");
        }
        other => panic!("expected oversized error, got {other:?}"),
    }
    // Framing is unrecoverable after an oversized announcement: the server
    // hangs up.
    match c.raw_round_trip(br#"{"t":"stats"}"#) {
        Err(ClientError::Closed) | Err(ClientError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn handshake_is_required_first() {
    let (server, _proxy) = start(ServerConfig::default());
    // Hand-roll a connection that skips hello.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(IO)).unwrap();
    write_frame(&mut stream, br#"{"t":"stats"}"#).unwrap();
    let mut reader = bep_server::framing::FrameReader::new(1 << 20);
    let payload = loop {
        match reader.read_frame(&mut stream).unwrap() {
            bep_server::framing::FrameEvent::Frame(p) => break p,
            bep_server::framing::FrameEvent::TimedOut => continue,
            bep_server::framing::FrameEvent::Eof => panic!("closed before answering"),
        }
    };
    let resp = bep_server::Response::from_wire(std::str::from_utf8(&payload).unwrap()).unwrap();
    match resp {
        bep_server::Response::Error { kind, .. } => {
            assert_eq!(kind, bep_server::ErrorKind::Unsupported);
        }
        other => panic!("expected unsupported error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn sessions_are_connection_scoped_capabilities() {
    let (server, _proxy) = start(ServerConfig::default());
    let mut alice = Client::connect(server.addr(), IO).unwrap();
    let mut mallory = Client::connect(server.addr(), IO).unwrap();

    let s = alice.begin(uid_bindings(1)).unwrap();
    // Mallory guesses Alice's session id: typed no-such-session, and
    // Alice's session is untouched.
    match mallory.execute(s, "SELECT * FROM Events WHERE EId = 2", &[]) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-session"),
        other => panic!("expected no-such-session, got {other:?}"),
    }
    match mallory.end(s) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-session"),
        other => panic!("expected no-such-session, got {other:?}"),
    }
    let r = alice
        .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap();
    assert!(r.is_allowed(), "alice's session survived the probing");
    server.shutdown();
}

#[test]
fn saturated_server_answers_busy_not_silence() {
    // Pool-saturation semantics are the blocking front-end's; the event
    // loop has its own admission cap (tested separately).
    let config = ServerConfig {
        mode: ServerMode::Blocking,
        workers: 1,
        queue_capacity: 0,
        ..Default::default()
    };
    let (server, _proxy) = start(config);

    // Occupy the single worker with a live connection...
    let mut holder = Client::connect(server.addr(), IO).unwrap();
    let s = holder.begin(uid_bindings(1)).unwrap();
    holder
        .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap();

    // ...then the next connection must be rejected with `busy`, quickly —
    // and the typed payload must carry the pool's load snapshot: one
    // worker, nothing waiting (the backlog has zero capacity).
    let t0 = std::time::Instant::now();
    match Client::connect(server.addr(), IO) {
        Err(ClientError::Busy {
            queue_depth,
            workers,
        }) => {
            assert_eq!(queue_depth, 0, "zero-capacity backlog was empty");
            assert_eq!(workers, 1, "the pool advertises its worker count");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "busy rejection must be fast, took {:?}",
        t0.elapsed()
    );
    assert_eq!(server.busy_rejections(), 1);

    // The admitted connection still works fine through the overload.
    let r = holder
        .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap();
    assert!(r.is_allowed());

    // Freeing the worker re-opens admission.
    holder.abandon();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(server.addr(), IO) {
            Ok(_) => break,
            Err(ClientError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected eventual admission, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn event_loop_connection_cap_answers_busy_with_load_snapshot() {
    let config = ServerConfig {
        max_connections: 1,
        ..Default::default()
    };
    let (server, _proxy) = start(config);

    let mut holder = Client::connect(server.addr(), IO).unwrap();
    let s = holder.begin(uid_bindings(1)).unwrap();

    match Client::connect(server.addr(), IO) {
        Err(ClientError::Busy {
            queue_depth,
            workers,
        }) => {
            assert_eq!(queue_depth, 1, "the live connection count is the depth");
            assert_eq!(workers, 1, "one reactor thread serves everything");
        }
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(server.busy_rejections() >= 1);

    // The admitted connection is unaffected by the rejection traffic.
    assert!(holder
        .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap()
        .is_allowed());

    // Closing it re-opens admission.
    holder.abandon();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match Client::connect(server.addr(), IO) {
            Ok(_) => break,
            Err(ClientError::Busy { .. }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected eventual admission, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn pipelined_frames_get_ordered_responses() {
    let (server, _proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();

    // A pipelined burst mixing an unlocking probe, the unlocked fetch, a
    // blocked statement, and a parse error — responses must come back in
    // request order with the same verdicts sequential execution gives.
    let burst: Vec<(String, Vec<(String, Value)>)> = vec![
        (
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2".into(),
            vec![],
        ),
        ("SELECT * FROM Events WHERE EId = 2".into(), vec![]),
        ("SELECT * FROM Events WHERE EId = 3".into(), vec![]),
        ("SELEC whoops".into(), vec![]),
    ];
    let outcomes = c.execute_pipelined(s, &burst).unwrap();
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes[0].is_allowed(), "{:?}", outcomes[0]);
    match &outcomes[1] {
        ExecOutcome::Rows(rows) => assert_eq!(rows.rows[0][1], Value::str("standup")),
        other => panic!("probe must have unlocked the fetch, got {other:?}"),
    }
    match &outcomes[2] {
        ExecOutcome::Blocked { reason, .. } => assert_eq!(reason, "not-determined"),
        other => panic!("expected blocked, got {other:?}"),
    }
    match &outcomes[3] {
        ExecOutcome::Blocked { reason, .. } => assert_eq!(reason, "parse-error"),
        other => panic!("expected parse error, got {other:?}"),
    }

    // The journal saw the decisions in pipeline order.
    let page = c.journal(0, 100).unwrap();
    assert_eq!(page.events.len(), 4);
    assert_eq!(page.events[0].verdict, Verdict::Allowed);
    assert_eq!(page.events[1].verdict, Verdict::Allowed);
    assert_eq!(page.events[2].verdict, Verdict::Blocked);
    assert_eq!(page.events[3].verdict, Verdict::Blocked);
    server.shutdown();
}

#[test]
fn front_ends_answer_identically_on_the_same_workload() {
    // Differential gate in miniature: the same scripted conversation
    // against both front-ends must produce byte-identical outcomes.
    let script: Vec<(String, Vec<(String, Value)>)> = vec![
        (
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event".into(),
            vec![("event".into(), Value::Int(2))],
        ),
        (
            "SELECT * FROM Events WHERE EId = ?event".into(),
            vec![("event".into(), Value::Int(2))],
        ),
        ("SELECT * FROM Events WHERE EId = 3".into(), vec![]),
        (
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 3, NULL)".into(),
            vec![],
        ),
    ];
    let run = |mode: ServerMode| {
        let (server, _proxy) = start(ServerConfig {
            mode,
            ..Default::default()
        });
        let mut c = Client::connect(server.addr(), IO).unwrap();
        let s = c.begin(uid_bindings(1)).unwrap();
        let mut outcomes = Vec::new();
        for (sql, bindings) in &script {
            outcomes.push(c.execute(s, sql, bindings).unwrap());
        }
        server.shutdown();
        outcomes
    };
    assert_eq!(run(ServerMode::EventDriven), run(ServerMode::Blocking));
}

#[test]
fn multi_client_stress_keeps_traces_isolated() {
    let config = ServerConfig {
        workers: 8,
        queue_capacity: 8,
        ..Default::default()
    };
    let (server, _proxy) = start(config);
    let addr = server.addr();

    // Even-indexed clients run as user 1 (attends event 2, may unlock it);
    // odd-indexed as user 2 (does NOT attend event 2, must stay blocked
    // even while user-1 sessions unlock it concurrently).
    std::thread::scope(|scope| {
        for i in 0..8 {
            scope.spawn(move || {
                let mut c = Client::connect(addr, IO).expect("connect");
                let uid = if i % 2 == 0 { 1 } else { 2 };
                let s = c.begin(uid_bindings(uid)).unwrap();
                for _ in 0..10 {
                    let probe = c
                        .execute(
                            s,
                            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
                            &[],
                        )
                        .unwrap();
                    assert!(probe.is_allowed());
                    let fetch = c
                        .execute(s, "SELECT * FROM Events WHERE EId = 2", &[])
                        .unwrap();
                    if uid == 1 {
                        assert!(fetch.is_allowed(), "user 1 probed successfully");
                    } else {
                        assert!(
                            !fetch.is_allowed(),
                            "user 2's empty probe must never unlock event 2, \
                             regardless of user 1's concurrent sessions"
                        );
                    }
                }
                assert!(c.end(s).unwrap());
            });
        }
    });

    let mut c = Client::connect(addr, IO).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.sessions, 0, "every stress session was ended");
    assert_eq!(stats.latency_count, stats.allowed + stats.blocked);
    server.shutdown();
}

#[test]
fn abandoned_connections_get_their_sessions_swept() {
    let (server, proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    c.begin(uid_bindings(1)).unwrap();
    c.begin(uid_bindings(2)).unwrap();
    assert_eq!(proxy.session_count(), 2);
    c.abandon(); // vanish without End

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while proxy.session_count() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "orphan sessions were never swept"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let config = ServerConfig {
        poll_interval: Duration::from_millis(10),
        idle_timeout: Duration::from_millis(100),
        ..Default::default()
    };
    let (server, proxy) = start(config);
    let mut c = Client::connect(server.addr(), IO).unwrap();
    c.begin(uid_bindings(1)).unwrap();
    assert_eq!(proxy.session_count(), 1);

    std::thread::sleep(Duration::from_millis(400));
    // The server reaped the connection and swept its session.
    assert_eq!(proxy.session_count(), 0);
    match c.stats() {
        Err(_) => {}
        Ok(r) => panic!("connection should be gone, got {r:?}"),
    }
    server.shutdown();
}

#[test]
fn client_initiated_shutdown_drains_cleanly() {
    let (server, proxy) = start(ServerConfig::default());
    let addr = server.addr();

    let mut c = Client::connect(addr, IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();
    c.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap();
    // Leave the session open deliberately; shutdown must sweep it.
    c.shutdown_server().unwrap();

    // wait() returns because a client asked for shutdown.
    server.wait();
    assert_eq!(proxy.session_count(), 0, "shutdown sweeps orphans");

    // And the port no longer serves.
    assert!(
        Client::connect(addr, Duration::from_millis(500)).is_err(),
        "server should be gone"
    );
}

#[test]
fn shutdown_while_clients_are_mid_conversation() {
    let config = ServerConfig {
        workers: 4,
        queue_capacity: 4,
        ..Default::default()
    };
    let (server, proxy) = start(config);
    let addr = server.addr();

    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr, IO).expect("connect");
                let s = c.begin(uid_bindings(1)).unwrap();
                // Run until the server says goodbye; every completed
                // round-trip must be a real answer.
                loop {
                    match c.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[]) {
                        Ok(r) => assert!(r.is_allowed()),
                        Err(_) => return, // bye / closed mid-drain
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    server.shutdown(); // must drain and join without hanging
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(proxy.session_count(), 0, "all in-flight sessions swept");
}

#[test]
fn provenance_round_trips_over_the_wire() {
    // The acceptance path: cache tier + phase timings recorded in-process
    // must come back intact through the `journal`, `trace`, and `metrics`
    // frames of a live server.
    let (server, _proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();

    let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
    assert!(c.execute(s, sql, &[]).unwrap().is_allowed()); // template proof
    assert!(c.execute(s, sql, &[]).unwrap().is_allowed()); // template cache
    let fetch = "SELECT * FROM Events WHERE EId = 3";
    assert!(!c.execute(s, fetch, &[]).unwrap().is_allowed()); // concrete deny

    // Journal frame: all three decisions, tiers and timings intact.
    let page = c.journal(0, 100).unwrap();
    assert_eq!(page.published, 3);
    assert_eq!(page.evicted, 0);
    assert_eq!(page.events.len(), 3);
    assert_eq!(page.events[0].tier, CacheTier::TemplateProof);
    assert_eq!(page.events[1].tier, CacheTier::TemplateCache);
    assert_eq!(page.events[2].tier, CacheTier::ConcreteProof);
    assert_eq!(page.events[2].verdict, Verdict::Blocked);
    assert_eq!(page.events[0].template_hash, template_hash(sql));
    assert_eq!(page.events[2].template_hash, template_hash(fetch));
    assert!(page.events[0].phase(Phase::Proof) > 0, "{page:?}");
    assert!(page.events[0].total_ns > 0);
    assert!(page.events.iter().all(|e| e.session == s));

    // Paging: `after` resumes exactly where the last page ended.
    let rest = c.journal(page.events[1].seq + 1, 100).unwrap();
    assert_eq!(rest.events.len(), 1);
    assert_eq!(rest.events[0].seq, page.events[2].seq);

    // Trace frame: the same provenance rides with the session summary.
    let trace = c.trace_summary(s).unwrap();
    assert_eq!(trace.events.len(), 3);
    assert_eq!(trace.events[0].tier, CacheTier::TemplateProof);
    assert_eq!(trace.events[2].verdict, Verdict::Blocked);

    // Metrics frame: the exposition reflects those decisions.
    let text = c.metrics().unwrap();
    assert!(text.contains("bep_decisions_total{decision=\"allowed\"} 2\n"));
    assert!(text.contains("bep_decisions_total{decision=\"blocked\"} 1\n"));
    assert!(text.contains("bep_cache_hits_total{tier=\"template\"} 1\n"));
    assert!(text.contains("bep_phase_latency_ns{phase=\"proof\",quantile=\"0.5\"}"));
    assert!(text.contains("bep_journal_published 3\n"));
    assert!(text.contains("bep_sessions 1\n"));
    server.shutdown();
}

#[test]
fn observe_off_server_serves_empty_provenance() {
    // A proxy with observability disabled still answers every frame —
    // with empty events and a quiet journal, never an error.
    let db = calendar_db();
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId")],
    )
    .unwrap();
    let proxy = Arc::new(SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig {
            observe: false,
            ..Default::default()
        },
    ));
    let server =
        Server::start(Arc::clone(&proxy), ServerConfig::default(), "127.0.0.1:0").expect("bind");
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();
    c.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap();
    let page = c.journal(0, 10).unwrap();
    assert_eq!(page.published, 0);
    assert!(page.events.is_empty());
    assert!(c.trace_summary(s).unwrap().events.is_empty());
    // Counters still flow: they predate the observability layer.
    assert!(c
        .metrics()
        .unwrap()
        .contains("bep_decisions_total{decision=\"allowed\"} 1\n"));
    server.shutdown();
}

#[test]
fn trace_after_end_is_typed_no_such_session_across_layers() {
    // Satellite regression: a just-ended session must yield the same
    // typed no-such-session from the in-process API and over the wire.
    let (server, proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();
    c.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap();
    assert!(c.end(s).unwrap());

    // In-process: typed CoreError.
    assert_eq!(
        proxy.session_trace(s).unwrap_err(),
        bep_core::CoreError::NoSuchSession(s)
    );
    // Wire: same failure, as the stable error kind — from the very
    // connection that owned the session (ownership outlives the session,
    // so this exercises the proxy's typed error, not the capability
    // check).
    match c.trace_summary(s) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-session"),
        other => panic!("expected no-such-session, got {other:?}"),
    }
    // And execute on the ended session agrees.
    match c.execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[]) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-session"),
        other => panic!("expected no-such-session, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn raw_split_writes_still_form_frames() {
    // Drip a valid frame across many tiny writes; the server must
    // reassemble it (split-read tolerance end to end).
    let (server, _proxy) = start(ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(IO)).unwrap();
    stream.set_nodelay(true).unwrap();

    let hello = frame_bytes(br#"{"t":"hello","v":1}"#);
    for chunk in hello.chunks(3) {
        use std::io::Write;
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut reader = bep_server::framing::FrameReader::new(1 << 20);
    let payload = loop {
        match reader.read_frame(&mut stream).unwrap() {
            bep_server::framing::FrameEvent::Frame(p) => break p,
            bep_server::framing::FrameEvent::TimedOut => continue,
            bep_server::framing::FrameEvent::Eof => panic!("closed before welcome"),
        }
    };
    let resp = bep_server::Response::from_wire(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(matches!(resp, bep_server::Response::Welcome { .. }));
    server.shutdown();
}

#[test]
fn prepared_plans_execute_over_the_wire() {
    let (server, proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();

    // Prepare both templates up front; ids are sequential from 1.
    let probe = c
        .prepare(
            s,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event",
        )
        .unwrap();
    let fetch = c
        .prepare(s, "SELECT * FROM Events WHERE EId = ?event")
        .unwrap();
    assert_eq!((probe, fetch), (1, 2));

    // The fetch is blocked before the probe unlocks it — exactly the
    // Example 2.1 flow, driven entirely through prepared plans.
    let event = [("event".to_string(), Value::Int(2))];
    let blocked = c.execute_prepared(s, fetch, &event).unwrap();
    assert!(!blocked.is_allowed(), "{blocked:?}");
    match c.execute_prepared(s, probe, &event).unwrap() {
        ExecOutcome::Rows(rows) => assert_eq!(rows.rows.len(), 1),
        other => panic!("expected rows, got {other:?}"),
    }
    match c.execute_prepared(s, fetch, &event).unwrap() {
        ExecOutcome::Rows(rows) => assert_eq!(rows.rows[0][1], Value::str("standup")),
        other => panic!("expected rows, got {other:?}"),
    }

    // The prepared templates live in the proxy's shared plan cache.
    assert!(proxy.plan_cache().len() >= 2);
    server.shutdown();
}

#[test]
fn prepare_on_unknown_session_is_typed_no_such_session() {
    let (server, _proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();

    // Never-issued session id.
    match c.prepare(999, "SELECT EId FROM Attendance WHERE UId = ?MyUId") {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-session"),
        other => panic!("expected no-such-session, got {other:?}"),
    }

    // A session owned by a *different* connection is just as unknown.
    let s = c.begin(uid_bindings(1)).unwrap();
    let mut intruder = Client::connect(server.addr(), IO).unwrap();
    match intruder.prepare(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId") {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-session"),
        other => panic!("expected no-such-session, got {other:?}"),
    }

    // The rejected connection is still usable.
    let s2 = intruder.begin(uid_bindings(2)).unwrap();
    assert!(intruder
        .prepare(s2, "SELECT EId FROM Attendance WHERE UId = ?MyUId")
        .is_ok());
    server.shutdown();
}

#[test]
fn unknown_plan_id_is_typed_no_such_plan() {
    let (server, _proxy) = start(ServerConfig::default());
    let mut c = Client::connect(server.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();

    match c.execute_prepared(s, 7, &[]) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-plan"),
        other => panic!("expected no-such-plan, got {other:?}"),
    }

    // Plan ids are connection-scoped: another connection's id 1 does not
    // resolve here even though that connection prepared it.
    let mut other = Client::connect(server.addr(), IO).unwrap();
    let so = other.begin(uid_bindings(1)).unwrap();
    let plan = other
        .prepare(so, "SELECT EId FROM Attendance WHERE UId = ?MyUId")
        .unwrap();
    match c.execute_prepared(s, plan, &[]) {
        Err(ClientError::Server { kind, .. }) => assert_eq!(kind, "no-such-plan"),
        other => panic!("expected no-such-plan, got {other:?}"),
    }

    // The connection survives a bad plan id.
    assert!(c
        .execute(s, "SELECT EId FROM Attendance WHERE UId = ?MyUId", &[])
        .unwrap()
        .is_allowed());
    server.shutdown();
}

#[test]
fn warm_start_snapshot_survives_server_generations() {
    let path = std::env::temp_dir().join(format!("bep-server-snap-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let template = "SELECT EId FROM Attendance WHERE UId = ?MyUId";

    // Generation 1: cold start (no file yet), serve one template-allowed
    // query, drain — the shutdown persists the compiled verdict.
    let proxy1 = calendar_proxy();
    let server1 = Server::start_with_snapshot(
        Arc::clone(&proxy1),
        ServerConfig::default(),
        "127.0.0.1:0",
        &path,
    )
    .expect("bind");
    let mut c = Client::connect(server1.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();
    assert!(matches!(
        c.execute(s, template, &[]).unwrap(),
        ExecOutcome::Rows(_)
    ));
    drop(c);
    server1.shutdown();
    assert!(path.exists(), "drain persisted a snapshot");

    // Generation 2: the plan cache is warm before the first request, and
    // the warm plan answers identically.
    let proxy2 = calendar_proxy();
    let server2 = Server::start_with_snapshot(
        Arc::clone(&proxy2),
        ServerConfig::default(),
        "127.0.0.1:0",
        &path,
    )
    .expect("bind");
    let warm = proxy2.plan_cache().get(template);
    assert!(warm.is_some(), "snapshot preloaded the template plan");
    let mut c = Client::connect(server2.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(1)).unwrap();
    assert!(matches!(
        c.execute(s, template, &[]).unwrap(),
        ExecOutcome::Rows(_)
    ));
    drop(c);
    server2.shutdown();

    // Generation 3: a corrupted snapshot degrades to a cold start — the
    // server still boots and enforces.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&path, &bytes).unwrap();
    let proxy3 = calendar_proxy();
    let server3 = Server::start_with_snapshot(
        Arc::clone(&proxy3),
        ServerConfig::default(),
        "127.0.0.1:0",
        &path,
    )
    .expect("bind");
    assert!(
        proxy3.plan_cache().get(template).is_none(),
        "corrupt snapshot must not install anything"
    );
    let mut c = Client::connect(server3.addr(), IO).unwrap();
    let s = c.begin(uid_bindings(2)).unwrap();
    assert!(matches!(
        c.execute(s, template, &[]).unwrap(),
        ExecOutcome::Rows(_)
    ));
    drop(c);
    server3.shutdown();
    std::fs::remove_file(&path).ok();
}
