//! Property tests for the decision-event wire encoding — the payload the
//! observability stack ships three ways (`trace`, `journal`, and pushed
//! `events` frames), so a lossy encode/decode here silently corrupts every
//! downstream consumer (`bep-top`, the benches, CI smoke greps).
//!
//! Invariants:
//! * **event round-trip** — an arbitrary [`DecisionEvent`] (template hash
//!   across the full `u64` range, including top-bit-set values that do not
//!   fit a signed JSON integer; arbitrary span summaries) survives
//!   `to_wire`/`from_wire` bit-exactly, and the hash rides as a 16-digit
//!   hex string;
//! * **label round-trips** — `CacheTier::from_label` and
//!   `Verdict::from_label` invert `label()` for every variant, through the
//!   wire, not just in memory;
//! * **stream frames** — `subscribe` requests and pushed `events`
//!   responses round-trip with their cumulative drop counts intact.

use bep_core::{CacheTier, DecisionEvent, SpanSummary, Verdict, PHASE_COUNT};
use bep_server::{Request, Response};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const TIERS: [CacheTier; 6] = [
    CacheTier::TemplateCache,
    CacheTier::SessionCache,
    CacheTier::DenyCache,
    CacheTier::TemplateProof,
    CacheTier::ConcreteProof,
    CacheTier::Uncached,
];

const VERDICTS: [Verdict; 2] = [Verdict::Allowed, Verdict::Blocked];

/// Strategy for an arbitrary event. Built from two tuple strategies (the
/// stub's tuples cap at eight slots) mapped into the struct.
fn arb_event() -> impl Strategy<Value = DecisionEvent> {
    // Every u64 but the hash rides as a signed JSON integer, so the
    // wire's domain is 0..2^63; the hash alone takes the hex path and
    // covers the full range.
    let wire_u64 = || 0u64..=i64::MAX as u64;
    let core = (
        wire_u64(),   // seq
        wire_u64(),   // session
        any::<u64>(), // template_hash, full range
        proptest::sample::select(VERDICTS.to_vec()),
        proptest::sample::select(TIERS.to_vec()),
        any::<bool>(), // negative_template_hit
        wire_u64(),    // total_ns
        proptest::collection::vec(wire_u64(), PHASE_COUNT..=PHASE_COUNT),
    );
    let span = (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
    );
    (core, span).prop_map(|(core, span)| {
        let (seq, session, template_hash, verdict, tier, neg, total_ns, phases) = core;
        let (rw, cc, hn, hb, cr, cf, spans, truncated) = span;
        let mut phase_ns = [0u64; PHASE_COUNT];
        phase_ns.copy_from_slice(&phases);
        DecisionEvent {
            seq,
            session,
            template_hash,
            verdict,
            tier,
            negative_template_hit: neg,
            total_ns,
            phase_ns,
            span: SpanSummary {
                rewrite_iterations: rw,
                containment_checks: cc,
                hom_nodes: hn,
                hom_backtracks: hb,
                cert_replays: cr,
                cert_fallbacks: cf,
                spans,
                truncated,
            },
        }
    })
}

proptest! {
    #[test]
    fn decision_events_survive_the_wire(ev in arb_event(), published in 0u64..=i64::MAX as u64, evicted in 0u64..=i64::MAX as u64) {
        let resp = Response::Journal {
            events: vec![ev],
            published,
            evicted,
        };
        let wire = resp.to_wire();
        // The hash must ride as exactly its 16-digit hex rendering — a
        // signed-integer encoding would corrupt top-bit-set hashes.
        prop_assert!(
            wire.contains(&format!("{:016x}", ev.template_hash)),
            "hash not hex-encoded in {wire}"
        );
        prop_assert_eq!(Response::from_wire(&wire).unwrap(), resp);
    }

    #[test]
    fn events_frames_round_trip_with_drop_counts(evs in proptest::collection::vec(arb_event(), 0..4), dropped in 0u64..=i64::MAX as u64) {
        let resp = Response::Events { events: evs, dropped };
        prop_assert_eq!(Response::from_wire(&resp.to_wire()).unwrap(), resp.clone());
    }

    #[test]
    fn subscribe_requests_round_trip(after in 0u64..=i64::MAX as u64) {
        let req = Request::Subscribe { after };
        prop_assert_eq!(Request::from_wire(&req.to_wire()).unwrap(), req);
    }

    #[test]
    fn tier_labels_invert_through_the_wire(tier in proptest::sample::select(TIERS.to_vec())) {
        prop_assert_eq!(CacheTier::from_label(tier.label()), Some(tier));
        let mut ev = arb_fixed();
        ev.tier = tier;
        let resp = Response::Events { events: vec![ev], dropped: 0 };
        let Response::Events { events, .. } = Response::from_wire(&resp.to_wire()).unwrap() else {
            return Err(TestCaseError::fail("wrong tag"));
        };
        prop_assert_eq!(events[0].tier, tier);
    }

    #[test]
    fn verdict_labels_invert_through_the_wire(verdict in proptest::sample::select(VERDICTS.to_vec())) {
        prop_assert_eq!(Verdict::from_label(verdict.label()), Some(verdict));
        let mut ev = arb_fixed();
        ev.verdict = verdict;
        let resp = Response::Events { events: vec![ev], dropped: 0 };
        let Response::Events { events, .. } = Response::from_wire(&resp.to_wire()).unwrap() else {
            return Err(TestCaseError::fail("wrong tag"));
        };
        prop_assert_eq!(events[0].verdict, verdict);
    }
}

/// A fixed valid event for the label tests to mutate.
fn arb_fixed() -> DecisionEvent {
    DecisionEvent {
        seq: 1,
        session: 2,
        template_hash: 0x8000_0000_dead_beef,
        verdict: Verdict::Allowed,
        tier: CacheTier::Uncached,
        negative_template_hit: false,
        total_ns: 3,
        phase_ns: [0; PHASE_COUNT],
        span: SpanSummary::default(),
    }
}

#[test]
fn unknown_labels_refuse_to_decode() {
    for bad in [
        r#"{"t":"events","events":[{"seq":1,"session":2,"hash":"ff","verdict":"maybe","tier":"uncached","neg":false,"total_ns":3,"phases":[]}],"dropped":0}"#,
        r#"{"t":"events","events":[{"seq":1,"session":2,"hash":"ff","verdict":"allowed","tier":"warp-cache","neg":false,"total_ns":3,"phases":[]}],"dropped":0}"#,
        r#"{"t":"events","events":[{"seq":1,"session":2,"hash":"xyzzy","verdict":"allowed","tier":"uncached","neg":false,"total_ns":3,"phases":[]}],"dropped":0}"#,
    ] {
        assert!(Response::from_wire(bad).is_err(), "{bad} should not decode");
    }
}
