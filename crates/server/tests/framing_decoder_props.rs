//! Property tests for the push-mode incremental frame decoder
//! ([`bep_server::framing::FrameDecoder`]) — the piece the event loop
//! trusts to turn arbitrary socket reads back into the exact pipelined
//! frame sequence the client wrote.
//!
//! Three invariants, exercised exhaustively and under proptest:
//! * **split tolerance** — decoding is invariant under where the
//!   transport splits the byte stream, down to one byte at a time;
//! * **pipelining** — a burst of frames fed in one readiness event drains
//!   in order, with [`has_frame`](bep_server::framing::FrameDecoder::has_frame)
//!   truthful at every step (the fairness-capped loop relies on it to
//!   revisit connections with buffered frames);
//! * **oversized rejection from the header alone** — a hostile length
//!   prefix is refused before any payload is buffered, however the four
//!   header bytes arrive.

use bep_server::framing::{frame_bytes, FrameDecoder, FrameError, MAX_FRAME};
use proptest::prelude::*;

/// Drains every complete frame currently buffered.
fn drain_all(dec: &mut FrameDecoder) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(frame) = dec.next_frame().expect("well-formed wire") {
        out.push(frame);
    }
    out
}

#[test]
fn every_split_point_of_a_pipelined_wire_decodes_identically() {
    // Three frames chosen to cross interesting shapes: a realistic JSON
    // payload, an empty payload (header-only frame), and a body long
    // enough that most splits land inside it.
    let frames: Vec<Vec<u8>> = vec![
        b"{\"t\":\"hello\",\"version\":1}".to_vec(),
        Vec::new(),
        vec![0xAB; 300],
    ];
    let wire: Vec<u8> = frames.iter().flat_map(|p| frame_bytes(p)).collect();

    for split in 0..=wire.len() {
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut got = Vec::new();
        dec.feed(&wire[..split]);
        got.extend(drain_all(&mut dec));
        dec.feed(&wire[split..]);
        got.extend(drain_all(&mut dec));
        assert_eq!(got, frames, "split at byte {split}");
        assert!(!dec.mid_frame(), "split at byte {split} left residue");
        assert_eq!(dec.buffered(), 0);
    }
}

#[test]
fn one_byte_at_a_time_with_truthful_bookkeeping() {
    let frames: Vec<Vec<u8>> = vec![b"abc".to_vec(), b"defgh".to_vec()];
    let wire: Vec<u8> = frames.iter().flat_map(|p| frame_bytes(p)).collect();

    let mut dec = FrameDecoder::new(MAX_FRAME);
    let mut got = Vec::new();
    for (i, byte) in wire.iter().enumerate() {
        dec.feed(std::slice::from_ref(byte));
        assert_eq!(dec.buffered() > 0, dec.mid_frame());
        got.extend(drain_all(&mut dec));
        if got.len() < frames.len() {
            assert!(
                dec.mid_frame() || dec.buffered() == 0,
                "byte {i}: inconsistent partial state"
            );
        }
    }
    assert_eq!(got, frames);
    assert!(!dec.mid_frame());
}

#[test]
fn oversized_announcement_is_rejected_from_the_header_alone() {
    let limit = 64;
    let header = ((limit + 1) as u32).to_be_bytes();

    // However the four header bytes arrive, the verdict is the same and
    // no body is ever required.
    for split in 0..=4 {
        let mut dec = FrameDecoder::new(limit);
        dec.feed(&header[..split]);
        if split < 4 {
            assert!(dec.next_frame().expect("incomplete header").is_none());
        }
        dec.feed(&header[split..]);
        assert!(
            dec.has_frame(),
            "an oversized header must summon the drain loop so the error surfaces"
        );
        match dec.next_frame() {
            Err(FrameError::Oversized {
                announced,
                limit: l,
            }) => {
                assert_eq!(announced, limit + 1);
                assert_eq!(l, limit);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}

#[test]
fn burst_drains_in_order_with_has_frame_truthful() {
    // One readiness event delivering many pipelined frames: the
    // fairness-capped loop extracts one frame per visit and relies on
    // `has_frame` to schedule revisits.
    let frames: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; i as usize * 7]).collect();
    let wire: Vec<u8> = frames.iter().flat_map(|p| frame_bytes(p)).collect();

    let mut dec = FrameDecoder::new(MAX_FRAME);
    dec.feed(&wire);
    let mut got = Vec::new();
    while dec.has_frame() {
        got.push(
            dec.next_frame()
                .expect("well-formed")
                .expect("has_frame said so"),
        );
    }
    assert_eq!(got, frames);
    assert!(dec.next_frame().expect("empty").is_none());
    assert_eq!(dec.buffered(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary pipelined payloads survive arbitrary chunking: whatever
    /// sizes the transport delivers, the decoded sequence is exactly the
    /// written one.
    #[test]
    fn arbitrary_frames_survive_arbitrary_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96),
            1..8,
        ),
        chunk_sizes in proptest::collection::vec(1usize..19, 1..12),
    ) {
        let wire: Vec<u8> = payloads.iter().flat_map(|p| frame_bytes(p)).collect();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut got = Vec::new();
        let mut off = 0;
        let mut turn = 0;
        while off < wire.len() {
            let n = chunk_sizes[turn % chunk_sizes.len()].min(wire.len() - off);
            turn += 1;
            dec.feed(&wire[off..off + n]);
            off += n;
            while let Some(frame) = dec.next_frame().expect("well-formed wire") {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert!(!dec.mid_frame());
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Interleaving partial drains with further feeds (the event-loop
    /// shape: read a little, extract at most one frame, repeat) never
    /// reorders, drops, or duplicates a frame.
    #[test]
    fn interleaved_feed_and_capped_drain_preserves_order(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            1..7,
        ),
        chunk_sizes in proptest::collection::vec(1usize..13, 1..10),
    ) {
        let wire: Vec<u8> = payloads.iter().flat_map(|p| frame_bytes(p)).collect();
        let mut dec = FrameDecoder::new(MAX_FRAME);
        let mut got = Vec::new();
        let mut off = 0;
        let mut turn = 0;
        while off < wire.len() || dec.has_frame() {
            if off < wire.len() {
                let n = chunk_sizes[turn % chunk_sizes.len()].min(wire.len() - off);
                turn += 1;
                dec.feed(&wire[off..off + n]);
                off += n;
            }
            // Fairness cap: at most one frame per visit.
            if dec.has_frame() {
                got.push(dec.next_frame().expect("well-formed").expect("has_frame said so"));
            }
        }
        prop_assert_eq!(got, payloads);
        prop_assert!(!dec.mid_frame());
    }
}
