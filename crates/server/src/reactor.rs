//! Minimal epoll readiness abstraction — the `mio` we are not allowed to
//! depend on.
//!
//! The workspace builds offline with no external crates, so readiness IO
//! is obtained straight from the kernel: the four epoll entry points are
//! declared here as `extern "C"` symbols of the libc that `std` already
//! links. Nothing else is wrapped — no edge-triggered mode, no timerfd,
//! no signalfd — because the event loop needs exactly three things:
//!
//! * [`Poller`] — a level-triggered epoll instance: register an fd under a
//!   `u64` token with read/write interest, re-arm it, and [`Poller::wait`]
//!   for readiness with a timeout (the loop's idle/shutdown tick);
//! * [`Waker`] — a nonblocking socketpair whose read end lives in the
//!   poller, so another thread (shutdown, a future completion source) can
//!   interrupt a blocked `wait` with one write;
//! * [`raise_nofile_limit`] — a best-effort `RLIMIT_NOFILE` bump so the
//!   10k-connection targets are reachable on hosts whose soft limit
//!   defaults to 1024 (CI runners); returns the achieved soft limit.
//!
//! Level-triggered is a deliberate simplification: a connection whose
//! socket still holds unread bytes shows up again on the next `wait`, so
//! the event loop may stop reading mid-burst (fairness caps) without any
//! re-arm bookkeeping. The price — one extra syscall per lingering
//! connection per tick — is irrelevant next to the decision path.

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

// The libc entry points `std` already links. Signatures follow the Linux
// x86_64 ABI; `epoll_event` is packed there (and on every architecture
// glibc packs it on), which `#[repr(C, packed)]` reproduces.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

const EPOLL_CLOEXEC: c_int = 0x8_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

/// One kernel-side readiness record. Packed to match glibc's
/// `struct epoll_event` layout on x86_64.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// What one registered fd is ready for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The token the fd was registered under.
    pub token: u64,
    /// Bytes (or an accepted connection, or EOF) can be read.
    pub readable: bool,
    /// The socket send buffer has room again.
    pub writable: bool,
    /// The peer closed or the socket errored; reading will surface it.
    pub hangup: bool,
}

/// A level-triggered epoll instance plus its reusable event buffer.
pub struct Poller {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

// The epoll fd is just an fd; the buffer is owned. Safe to move across
// threads (the event loop owns its poller for its whole life).
unsafe impl Send for Poller {}

impl Poller {
    /// Creates an epoll instance sized for `capacity` events per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.clamp(64, 4096)],
        })
    }

    fn ctl(
        &self,
        op: c_int,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut interest = EPOLLRDHUP;
        if readable {
            interest |= EPOLLIN;
        }
        if writable {
            interest |= EPOLLOUT;
        }
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn register(
        &self,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Changes an already registered fd's interest set.
    pub fn rearm(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Removes `fd` from the poller. Closing the fd does this implicitly;
    /// explicit removal keeps the kernel set tidy when fds are reused.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses, then appends the readiness records to `out`. Returns how
    /// many were delivered (0 = tick). EINTR counts as a tick.
    pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Readiness>) -> io::Result<usize> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
        let n = unsafe {
            epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in &self.buf[..n as usize] {
            let bits = ev.events;
            out.push(Readiness {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// The write end of a poller interrupt: one byte wakes a blocked
/// [`Poller::wait`]. Clone-free and cheap; writes to a full pipe are
/// dropped (the loop is already awake).
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Interrupts the poller this waker was paired with.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }
}

/// A (waker, pollable read end) pair. Register the read end in the poller
/// under a reserved token and [`drain_waker`] it on readiness.
pub fn waker_pair() -> io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Discards every pending wake byte so a level-triggered poller stops
/// reporting the waker readable.
pub fn drain_waker(rx: &UnixStream) {
    use std::io::Read;
    let mut sink = [0u8; 64];
    let mut rx = rx;
    while let Ok(n) = rx.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}

/// Best-effort bump of the open-file soft limit toward `target` (capped at
/// the hard limit). Returns the soft limit in effect afterwards. Hosts
/// with a 1024 default would otherwise cap the 10k-connection experiments
/// long before the reactor does.
pub fn raise_nofile_limit(target: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return 1024;
    }
    if lim.cur < target && lim.max > lim.cur {
        let raised = RLimit {
            cur: target.min(lim.max),
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return raised.cur;
        }
    }
    lim.cur
}

/// The raw fd of any socket-like type, for registration.
pub fn fd_of(s: &impl AsRawFd) -> RawFd {
    s.as_raw_fd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_sees_listener_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new(64).unwrap();
        poller.register(fd_of(&listener), 7, true, false).unwrap();

        // Nothing pending: a short wait times out with no events.
        let mut events = Vec::new();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "no readiness before a connect");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        // The connect may take a scheduler tick to surface.
        for _ in 0..100 {
            poller.wait(Duration::from_millis(20), &mut events).unwrap();
            if !events.is_empty() {
                break;
            }
        }
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn waker_interrupts_wait_and_drains() {
        let (waker, rx) = waker_pair().unwrap();
        let mut poller = Poller::new(64).unwrap();
        poller.register(fd_of(&rx), 1, true, false).unwrap();

        waker.wake();
        waker.wake();
        let mut events = Vec::new();
        poller
            .wait(Duration::from_millis(500), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        drain_waker(&rx);
        let mut events = Vec::new();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty(), "drained waker is quiet");
    }

    #[test]
    fn rearm_toggles_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let mut poller = Poller::new(64).unwrap();
        // Write-interest on an idle socket: immediately writable.
        poller
            .register(fd_of(&server_side), 3, false, true)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(Duration::from_millis(500), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Re-arm to read-only: no spurious writable ticks.
        poller.rearm(fd_of(&server_side), 3, true, false).unwrap();
        let mut events = Vec::new();
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty());

        // Readable once the peer writes.
        (&client).write_all(b"x").unwrap();
        let mut events = Vec::new();
        for _ in 0..100 {
            poller.wait(Duration::from_millis(20), &mut events).unwrap();
            if !events.is_empty() {
                break;
            }
        }
        assert!(events.iter().any(|e| e.token == 3 && e.readable));
        poller.deregister(fd_of(&server_side)).unwrap();
    }

    #[test]
    fn nofile_limit_is_at_least_reported() {
        let soft = raise_nofile_limit(4096);
        assert!(soft >= 256, "any sane host grants a few hundred fds");
    }
}
