//! Length-prefixed framing over a byte stream.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. [`FrameReader`] is an incremental decoder: it
//! tolerates arbitrarily split reads (one byte at a time is fine) and
//! surfaces read timeouts as a distinct [`FrameEvent::TimedOut`] so the
//! connection loop can run its idle clock without losing a half-received
//! frame. Oversized length prefixes are rejected *before* any payload is
//! buffered, so a hostile `0xFFFFFFFF` header costs four bytes, not 4 GiB.

use std::io::{self, Read, Write};

/// Largest frame either side will accept by default (1 MiB).
pub const MAX_FRAME: usize = 1 << 20;

/// A framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// The peer announced a frame larger than the reader's limit.
    Oversized {
        /// Announced payload length.
        announced: usize,
        /// The reader's limit.
        limit: usize,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// An I/O error other than a read timeout.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { announced, limit } => {
                write!(f, "frame of {announced} bytes exceeds limit {limit}")
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// What one call to [`FrameReader::read_frame`] produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end-of-stream at a frame boundary.
    Eof,
    /// The underlying read timed out; partial state is kept, call again.
    TimedOut,
}

/// Incremental frame decoder; owns the partially received frame between
/// calls so timeouts and split reads lose nothing.
#[derive(Debug)]
pub struct FrameReader {
    limit: usize,
    header: [u8; 4],
    header_filled: usize,
    body: Vec<u8>,
    body_filled: usize,
    in_body: bool,
}

impl FrameReader {
    /// A reader that rejects frames larger than `limit` bytes.
    pub fn new(limit: usize) -> FrameReader {
        FrameReader {
            limit,
            header: [0; 4],
            header_filled: 0,
            body: Vec::new(),
            body_filled: 0,
            in_body: false,
        }
    }

    /// `true` while a frame is partially received (EOF now would be
    /// truncation, and an idle clock should not tick).
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.in_body
    }

    /// Pulls bytes from `r` until a full frame, end-of-stream, or a read
    /// timeout. `WouldBlock`/`TimedOut`/`Interrupted` I/O errors surface as
    /// [`FrameEvent::TimedOut`]; everything else is a hard error.
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<FrameEvent, FrameError> {
        if !self.in_body {
            while self.header_filled < 4 {
                match r.read(&mut self.header[self.header_filled..]) {
                    Ok(0) => {
                        return if self.header_filled == 0 {
                            Ok(FrameEvent::Eof)
                        } else {
                            Err(FrameError::Truncated)
                        };
                    }
                    Ok(n) => self.header_filled += n,
                    Err(e) => return soft_or_hard(e),
                }
            }
            let announced = u32::from_be_bytes(self.header) as usize;
            if announced > self.limit {
                return Err(FrameError::Oversized {
                    announced,
                    limit: self.limit,
                });
            }
            self.in_body = true;
            self.body = vec![0; announced];
            self.body_filled = 0;
        }
        while self.body_filled < self.body.len() {
            match r.read(&mut self.body[self.body_filled..]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.body_filled += n,
                Err(e) => return soft_or_hard(e),
            }
        }
        let payload = std::mem::take(&mut self.body);
        self.header_filled = 0;
        self.body_filled = 0;
        self.in_body = false;
        Ok(FrameEvent::Frame(payload))
    }
}

/// Buffer-based incremental frame decoder for nonblocking transports.
///
/// Where [`FrameReader`] *pulls* from a blocking `Read`, `FrameDecoder` is
/// *fed*: the event loop reads whatever the socket has into a scratch
/// buffer, [`feed`](FrameDecoder::feed)s it, and then drains zero or more
/// complete frames with [`next_frame`](FrameDecoder::next_frame) — which
/// is exactly the shape pipelining needs, because one readiness event may
/// carry many frames (or a fraction of one). Splits at any byte boundary
/// are tolerated; an oversized length prefix is rejected from the header
/// alone, before any payload is buffered.
#[derive(Debug)]
pub struct FrameDecoder {
    limit: usize,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`, compacted after every extracted frame.
    pos: usize,
}

impl FrameDecoder {
    /// A decoder that rejects frames larger than `limit` bytes.
    pub fn new(limit: usize) -> FrameDecoder {
        FrameDecoder {
            limit,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Appends raw bytes read off the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` while a frame is partially buffered (EOF now would be
    /// truncation, and an idle clock should not tick).
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// The announced length of the next frame, once its header is
    /// complete.
    fn pending_len(&self) -> Option<usize> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return None;
        }
        Some(u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize)
    }

    /// `true` when at least one complete frame is buffered and a
    /// [`next_frame`](FrameDecoder::next_frame) call would yield it. Lets
    /// a fairness-capped loop know it must revisit this decoder even
    /// without new socket readiness.
    pub fn has_frame(&self) -> bool {
        match self.pending_len() {
            Some(len) => len > self.limit || self.buffered() >= 4 + len,
            None => false,
        }
    }

    /// Extracts the next complete frame, if one is fully buffered.
    /// `Ok(None)` means "feed me more"; an oversized announcement is an
    /// unrecoverable [`FrameError::Oversized`] (framing cannot resync).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let Some(len) = self.pending_len() else {
            return Ok(None);
        };
        if len > self.limit {
            return Err(FrameError::Oversized {
                announced: len,
                limit: self.limit,
            });
        }
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let payload = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        // Compact: drop the consumed prefix so the buffer tracks only
        // in-flight bytes (pipelined bursts stay bounded by what the
        // socket delivered, not by connection lifetime).
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(payload))
    }
}

fn soft_or_hard(e: io::Error) -> Result<FrameEvent, FrameError> {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Ok(FrameEvent::TimedOut),
        io::ErrorKind::Interrupted => Ok(FrameEvent::TimedOut),
        _ => Err(FrameError::Io(e)),
    }
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// The on-wire bytes of one frame (for tests and hand-rolled probes).
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that yields its script one fragment at a time, with a
    /// timeout event between fragments.
    struct Fragmented {
        fragments: Vec<Vec<u8>>,
        next: usize,
        timeout_between: bool,
        pending_timeout: bool,
    }

    impl Read for Fragmented {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending_timeout {
                self.pending_timeout = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            if self.next >= self.fragments.len() {
                return Ok(0);
            }
            let frag = &mut self.fragments[self.next];
            let n = frag.len().min(buf.len());
            buf[..n].copy_from_slice(&frag[..n]);
            if n == frag.len() {
                self.next += 1;
                self.pending_timeout = self.timeout_between;
            } else {
                frag.drain(..n);
            }
            Ok(n)
        }
    }

    #[test]
    fn round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"t\":\"hello\"}").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = FrameReader::new(MAX_FRAME);
        let mut cur = Cursor::new(wire);
        match r.read_frame(&mut cur).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, b"{\"t\":\"hello\"}"),
            other => panic!("{other:?}"),
        }
        match r.read_frame(&mut cur).unwrap() {
            FrameEvent::Frame(p) => assert!(p.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(matches!(r.read_frame(&mut cur).unwrap(), FrameEvent::Eof));
    }

    #[test]
    fn split_reads_one_byte_at_a_time() {
        let wire = frame_bytes(b"abcdef");
        let mut src = Fragmented {
            fragments: wire.iter().map(|b| vec![*b]).collect(),
            next: 0,
            timeout_between: true,
            pending_timeout: false,
        };
        let mut r = FrameReader::new(MAX_FRAME);
        let mut timeouts = 0;
        loop {
            match r.read_frame(&mut src).unwrap() {
                FrameEvent::Frame(p) => {
                    assert_eq!(p, b"abcdef");
                    break;
                }
                FrameEvent::TimedOut => timeouts += 1,
                FrameEvent::Eof => panic!("eof before frame completed"),
            }
        }
        assert!(timeouts > 0, "the fragmented source injected timeouts");
        assert!(!r.mid_frame());
    }

    #[test]
    fn oversized_frame_is_rejected_from_the_header_alone() {
        let mut wire = 0xFFFF_FFFFu32.to_be_bytes().to_vec();
        wire.extend_from_slice(b"whatever");
        let mut r = FrameReader::new(1024);
        let err = r.read_frame(&mut Cursor::new(wire)).unwrap_err();
        match err {
            FrameError::Oversized { announced, limit } => {
                assert_eq!(announced, 0xFFFF_FFFF);
                assert_eq!(limit, 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_truncation() {
        let wire = frame_bytes(b"abcdef");
        // Header promises 6 bytes; deliver 3.
        let mut r = FrameReader::new(MAX_FRAME);
        let mut cur = Cursor::new(wire[..7].to_vec());
        assert!(matches!(
            r.read_frame(&mut cur).unwrap_err(),
            FrameError::Truncated
        ));

        // EOF inside the header is truncation too.
        let mut r = FrameReader::new(MAX_FRAME);
        let mut cur = Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            r.read_frame(&mut cur).unwrap_err(),
            FrameError::Truncated
        ));
    }

    #[test]
    fn mid_frame_flag_tracks_partial_state() {
        let wire = frame_bytes(b"xy");
        let mut src = Fragmented {
            fragments: vec![wire[..2].to_vec(), wire[2..].to_vec()],
            next: 0,
            timeout_between: true,
            pending_timeout: false,
        };
        let mut r = FrameReader::new(MAX_FRAME);
        assert!(!r.mid_frame());
        assert!(matches!(
            r.read_frame(&mut src).unwrap(),
            FrameEvent::TimedOut
        ));
        assert!(r.mid_frame(), "half a header counts as mid-frame");
        assert!(matches!(
            r.read_frame(&mut src).unwrap(),
            FrameEvent::Frame(_)
        ));
        assert!(!r.mid_frame());
    }
}
