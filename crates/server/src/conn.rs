//! Per-connection protocol loop.
//!
//! One worker thread runs [`handle_connection`] for the lifetime of a TCP
//! connection. The loop enforces the handshake, decodes one frame at a
//! time, dispatches to the shared [`SqlProxy`], and writes one response
//! frame per request. Error containment is graded:
//!
//! * a *malformed message* (bad JSON, unknown tag, missing field) gets a
//!   typed `error` response and the connection stays open — one bad frame
//!   must not cost a client its session state;
//! * an *oversized or truncated frame* closes the connection — framing is
//!   lost and there is no safe way to resynchronize;
//! * a *write failure or hard read error* closes the connection.
//!
//! Whatever the exit path (clean `End`s, client vanishing, idle reaping,
//! server shutdown, even a panic in a handler), a drop guard ends every
//! session the connection ever began that is still live — the server never
//! leaks orphaned sessions.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bep_core::{CoreError, ProxyResponse, SqlProxy, TemplatePlan};

use crate::framing::{write_frame, FrameError, FrameEvent, FrameReader};
use crate::protocol::{ErrorKind, Request, Response, WireStats, PROTOCOL_VERSION};
use crate::server::ServerConfig;

/// State shared by every connection of one server.
pub(crate) struct ConnShared {
    /// The enforcement proxy.
    pub proxy: Arc<SqlProxy>,
    /// Timeouts and limits.
    pub config: ServerConfig,
    /// Server-wide shutdown flag.
    pub shutdown: Arc<AtomicBool>,
    /// The server's own address (used to poke the accept loop awake when a
    /// client-initiated shutdown arrives).
    pub addr: SocketAddr,
}

/// Ends every still-live session this connection began, on any exit path
/// (including unwinding out of a handler panic).
struct SessionSweep<'a> {
    proxy: &'a SqlProxy,
    owned: HashSet<u64>,
}

impl Drop for SessionSweep<'_> {
    fn drop(&mut self) {
        self.proxy.end_sessions(self.owned.iter().copied());
    }
}

/// Plans compiled by `prepare` on this connection. Like sessions, plan ids
/// are connection-scoped capabilities: the map (and the `Arc`s pinning the
/// compiled plans) dies with the connection.
#[derive(Default)]
struct PreparedPlans {
    plans: HashMap<u64, Arc<TemplatePlan>>,
    next: u64,
}

impl PreparedPlans {
    fn insert(&mut self, plan: Arc<TemplatePlan>) -> u64 {
        self.next += 1;
        self.plans.insert(self.next, plan);
        self.next
    }
}

/// Snapshot the proxy counters into their wire form.
pub(crate) fn wire_stats(proxy: &SqlProxy) -> WireStats {
    let s = proxy.stats();
    WireStats {
        allowed: s.allowed,
        blocked: s.blocked,
        template_cache_hits: s.template_cache_hits,
        template_proofs: s.template_proofs,
        session_cache_hits: s.session_cache_hits,
        concrete_proofs: s.concrete_proofs,
        writes: s.writes,
        sessions: proxy.session_count() as u64,
        latency_count: s.latency.count,
        p50_ns: s.latency.p50_ns,
        p95_ns: s.latency.p95_ns,
        p99_ns: s.latency.p99_ns,
        max_ns: s.latency.max_ns,
    }
}

/// Most recent per-session decision events shipped in a `trace` response.
const TRACE_EVENTS_MAX: usize = 32;

/// Upper bound on events per `journal` response, whatever the client asks
/// for — keeps one frame well under the frame-size limit; clients page
/// with `after`.
const JOURNAL_BATCH_MAX: usize = 512;

fn send(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    write_frame(stream, response.to_wire().as_bytes())
}

/// Runs the protocol loop until the connection closes.
pub(crate) fn handle_connection(shared: &ConnShared, mut stream: TcpStream) {
    // The read timeout doubles as the poll tick for the shutdown flag and
    // the idle clock; the write timeout bounds a stuck peer's backpressure.
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut reader = FrameReader::new(shared.config.max_frame);
    let mut sweep = SessionSweep {
        proxy: &shared.proxy,
        owned: HashSet::new(),
    };
    let mut prepared = PreparedPlans::default();
    let mut greeted = false;
    let mut last_activity = Instant::now();

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            // Drain point: any in-flight request already got its response
            // (the loop is synchronous), so say goodbye and close.
            let _ = send(&mut stream, &Response::Bye);
            return;
        }
        let payload = match reader.read_frame(&mut stream) {
            Ok(FrameEvent::Frame(p)) => p,
            Ok(FrameEvent::Eof) => return,
            Ok(FrameEvent::TimedOut) => {
                if last_activity.elapsed() >= shared.config.idle_timeout {
                    // Idle reap. Mid-frame idleness (a stalled half-sent
                    // frame) is closed without a goodbye — framing is
                    // not re-synchronizable.
                    if !reader.mid_frame() {
                        let _ = send(&mut stream, &Response::Bye);
                    }
                    return;
                }
                continue;
            }
            Err(FrameError::Oversized { announced, limit }) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::Malformed,
                        msg: format!("frame of {announced} bytes exceeds limit {limit}"),
                    },
                );
                return; // cannot resync past an unread oversized payload
            }
            Err(_) => return, // truncated or hard I/O error
        };
        last_activity = Instant::now();

        let text = match std::str::from_utf8(&payload) {
            Ok(t) => t,
            Err(_) => {
                if send(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::Malformed,
                        msg: "frame is not valid UTF-8".into(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let request = match Request::from_wire(text) {
            Ok(r) => r,
            Err(e) => {
                // Malformed message: typed error, connection survives.
                if send(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::Malformed,
                        msg: e.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };

        let (response, close) = dispatch(shared, &mut sweep, &mut prepared, &mut greeted, request);
        if send(&mut stream, &response).is_err() || close {
            return;
        }
    }
}

/// Handles one decoded request. Returns the response and whether the
/// connection should close after sending it.
fn dispatch(
    shared: &ConnShared,
    sweep: &mut SessionSweep<'_>,
    prepared: &mut PreparedPlans,
    greeted: &mut bool,
    request: Request,
) -> (Response, bool) {
    if !*greeted {
        return match request {
            Request::Hello { version } if version == PROTOCOL_VERSION => {
                *greeted = true;
                (
                    Response::Welcome {
                        version: PROTOCOL_VERSION,
                    },
                    false,
                )
            }
            Request::Hello { version } => (
                Response::Error {
                    kind: ErrorKind::Unsupported,
                    msg: format!(
                        "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                    ),
                },
                true,
            ),
            _ => (
                Response::Error {
                    kind: ErrorKind::Unsupported,
                    msg: "handshake required: send hello first".into(),
                },
                true,
            ),
        };
    }

    match request {
        Request::Hello { .. } => (
            Response::Error {
                kind: ErrorKind::Unsupported,
                msg: "already greeted".into(),
            },
            false,
        ),
        Request::Begin { bindings } => {
            let session = shared.proxy.begin_session(bindings);
            sweep.owned.insert(session);
            (Response::Began { session }, false)
        }
        Request::Execute {
            session,
            sql,
            bindings,
        } => {
            // Sessions are connection-scoped capabilities: a connection may
            // only touch sessions it began, so one client can never read
            // another's trace-unlocked state by guessing ids.
            if !sweep.owned.contains(&session) {
                return (no_such_session(session), false);
            }
            (
                exec_response(shared.proxy.execute(session, &sql, &bindings)),
                false,
            )
        }
        Request::Prepare { session, sql } => {
            // Plans are compiled against the (session-independent) policy,
            // but the ownership gate still applies: a connection may only
            // prepare work for sessions it began.
            if !sweep.owned.contains(&session) {
                return (no_such_session(session), false);
            }
            let plan = shared.proxy.prepare(&sql);
            (
                Response::Prepared {
                    plan: prepared.insert(plan),
                },
                false,
            )
        }
        Request::ExecutePrepared {
            session,
            plan,
            bindings,
        } => {
            if !sweep.owned.contains(&session) {
                return (no_such_session(session), false);
            }
            let Some(plan) = prepared.plans.get(&plan).cloned() else {
                return (
                    Response::Error {
                        kind: ErrorKind::NoSuchPlan,
                        msg: format!("no such prepared plan: {plan}"),
                    },
                    false,
                );
            };
            (
                exec_response(shared.proxy.execute_planned(session, &plan, &bindings)),
                false,
            )
        }
        Request::Trace { session } => {
            if !sweep.owned.contains(&session) {
                return (no_such_session(session), false);
            }
            match shared.proxy.session_trace(session) {
                Ok(trace) => (
                    Response::TraceSummary {
                        entries: trace.len() as u64,
                        facts: trace.facts().len() as u64,
                        events: shared
                            .proxy
                            .journal()
                            .recent(TRACE_EVENTS_MAX, Some(session)),
                    },
                    false,
                ),
                Err(e) => (core_error(e), false),
            }
        }
        Request::Stats => (Response::Stats(wire_stats(&shared.proxy)), false),
        Request::Metrics => (
            Response::Metrics {
                text: shared.proxy.metrics_text(),
            },
            false,
        ),
        Request::Journal { after, max } => {
            let journal = shared.proxy.journal();
            let max = (max as usize).min(JOURNAL_BATCH_MAX);
            (
                Response::Journal {
                    events: journal.events_since(after, max),
                    published: journal.published(),
                    evicted: journal.evicted(),
                },
                false,
            )
        }
        Request::End { session } => {
            if !sweep.owned.contains(&session) {
                return (no_such_session(session), false);
            }
            // `owned` deliberately keeps the id: a repeated End must stay
            // idempotent (`was_live: false`), not become no-such-session.
            let was_live = shared.proxy.end_session(session);
            (Response::Ended { was_live }, false)
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            // The accept loop is blocked in accept(); poke it awake so it
            // observes the flag. Any error just means it is already awake.
            let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
            (Response::Bye, true)
        }
    }
}

/// Maps one proxy execution result (plain or prepared) to its wire form.
fn exec_response(result: Result<ProxyResponse, CoreError>) -> Response {
    match result {
        Ok(ProxyResponse::Rows(rows)) => Response::Rows {
            columns: rows.columns,
            rows: rows.rows,
        },
        Ok(ProxyResponse::Affected(n)) => Response::Affected { n: n as u64 },
        Ok(ProxyResponse::Blocked(reason)) => Response::Blocked {
            reason: reason.label().to_string(),
            detail: match &reason {
                bep_core::DenyReason::NotDetermined { query } => format!("{query:?}"),
                bep_core::DenyReason::OutOfFragment(m) => m.clone(),
                bep_core::DenyReason::ParseError(m) => m.clone(),
                bep_core::DenyReason::WriteBlocked => String::new(),
            },
        },
        Err(e) => core_error(e),
    }
}

fn no_such_session(session: u64) -> Response {
    Response::Error {
        kind: ErrorKind::NoSuchSession,
        msg: format!("no such session: {session}"),
    }
}

fn core_error(e: CoreError) -> Response {
    let kind = match e {
        CoreError::NoSuchSession(_) => ErrorKind::NoSuchSession,
        _ => ErrorKind::Internal,
    };
    Response::Error {
        kind,
        msg: e.to_string(),
    }
}
