//! Per-connection protocol state, shared by both server front-ends.
//!
//! [`ConnCore`] owns everything one connection's protocol needs — the
//! handshake flag, the sessions it began, its prepared plans — and
//! classifies each decoded request into either an *immediate* response
//! (control-plane messages, answered inline) or an *execute* item
//! ([`BatchItem`]) that the caller decides how to run: the blocking loop
//! runs it at once, the event loop defers it into a cross-connection
//! batch. Keeping classification in one place is what makes the two
//! front-ends decision-identical by construction.
//!
//! [`handle_connection`] is the blocking front-end: one worker thread runs
//! it for the lifetime of a TCP connection. Error containment is graded:
//!
//! * a *malformed message* (bad JSON, unknown tag, missing field) gets a
//!   typed `error` response and the connection stays open — one bad frame
//!   must not cost a client its session state;
//! * an *oversized or truncated frame* closes the connection — framing is
//!   lost and there is no safe way to resynchronize;
//! * a *write failure or hard read error* closes the connection.
//!
//! Whatever the exit path (clean `End`s, client vanishing, idle reaping,
//! server shutdown, even a panic in a handler), a drop guard ends every
//! session the connection ever began that is still live — the server never
//! leaks orphaned sessions.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bep_core::{
    BatchItem, BatchStmt, CoreError, JournalCursor, ProxyResponse, SqlProxy, TemplatePlan,
};

use crate::framing::{write_frame, FrameError, FrameEvent, FrameReader};
use crate::protocol::{ErrorKind, Request, Response, WireStats, PROTOCOL_VERSION};
use crate::server::ServerConfig;

/// State shared by every connection of one server.
pub(crate) struct ConnShared {
    /// The enforcement proxy.
    pub proxy: Arc<SqlProxy>,
    /// Timeouts and limits.
    pub config: ServerConfig,
    /// Server-wide shutdown flag.
    pub shutdown: Arc<AtomicBool>,
    /// The server's own address (used to poke the accept/event loop awake
    /// when a client-initiated shutdown arrives).
    pub addr: SocketAddr,
}

/// Ends every still-live session this connection began, on any exit path
/// (including unwinding out of a handler panic). Owns its proxy handle so
/// connection state can outlive any particular stack frame — the event
/// loop keeps thousands of these alive at once.
struct SessionSweep {
    proxy: Arc<SqlProxy>,
    owned: HashSet<u64>,
}

impl Drop for SessionSweep {
    fn drop(&mut self) {
        self.proxy.end_sessions(self.owned.iter().copied());
    }
}

/// Plans compiled by `prepare` on this connection. Like sessions, plan ids
/// are connection-scoped capabilities: the map (and the `Arc`s pinning the
/// compiled plans) dies with the connection.
#[derive(Default)]
struct PreparedPlans {
    plans: HashMap<u64, Arc<TemplatePlan>>,
    next: u64,
}

impl PreparedPlans {
    fn insert(&mut self, plan: Arc<TemplatePlan>) -> u64 {
        self.next += 1;
        self.plans.insert(self.next, plan);
        self.next
    }
}

/// Snapshot the proxy counters into their wire form.
pub(crate) fn wire_stats(proxy: &SqlProxy) -> WireStats {
    let s = proxy.stats();
    WireStats {
        allowed: s.allowed,
        blocked: s.blocked,
        template_cache_hits: s.template_cache_hits,
        template_proofs: s.template_proofs,
        session_cache_hits: s.session_cache_hits,
        concrete_proofs: s.concrete_proofs,
        writes: s.writes,
        write_allowed: s.write_allowed,
        write_blocked: s.write_blocked,
        write_passthrough: s.write_passthrough,
        unchecked_statements: s.unchecked_statements,
        sessions: proxy.session_count() as u64,
        latency_count: s.latency.count,
        p50_ns: s.latency.p50_ns,
        p95_ns: s.latency.p95_ns,
        p99_ns: s.latency.p99_ns,
        max_ns: s.latency.max_ns,
    }
}

/// Most recent per-session decision events shipped in a `trace` response.
const TRACE_EVENTS_MAX: usize = 32;

/// Upper bound on events per `journal` response, whatever the client asks
/// for — keeps one frame well under the frame-size limit; clients page
/// with `after`.
const JOURNAL_BATCH_MAX: usize = 512;

/// What [`ConnCore::classify`] decided about one request.
pub(crate) enum Dispatched {
    /// Control-plane request, answered inline.
    Immediate {
        /// The response to write.
        response: Response,
        /// Whether the connection should close after sending it.
        close: bool,
    },
    /// An enforcement decision (`execute` / `execute_prepared`), already
    /// ownership-checked and plan-resolved. The caller chooses the
    /// execution strategy: immediately (blocking front-end) or pooled into
    /// a cross-connection batch (event front-end). Either way the answer
    /// is [`exec_response`] of the proxy result.
    Execute(BatchItem),
}

/// One connection's protocol state, front-end agnostic.
pub(crate) struct ConnCore {
    shared: Arc<ConnShared>,
    sweep: SessionSweep,
    prepared: PreparedPlans,
    greeted: bool,
    /// Whether this front-end can push unsolicited frames (the event loop
    /// can; the blocking loop's strict request/response cadence cannot).
    streaming: bool,
    /// Live journal subscription, if this connection sent `subscribe`.
    /// The event loop polls it every tick; the cursor's drop counter is
    /// the stream's exact loss accounting.
    pub(crate) subscription: Option<JournalCursor>,
}

impl ConnCore {
    /// `streaming` declares whether the owning front-end can push
    /// unsolicited `events` frames; without it, `subscribe` is refused as
    /// unsupported rather than silently never delivering.
    pub(crate) fn new(shared: Arc<ConnShared>, streaming: bool) -> ConnCore {
        let proxy = Arc::clone(&shared.proxy);
        ConnCore {
            shared,
            sweep: SessionSweep {
                proxy,
                owned: HashSet::new(),
            },
            prepared: PreparedPlans::default(),
            greeted: false,
            streaming,
            subscription: None,
        }
    }

    /// Decodes one frame payload into a request, mapping UTF-8 and
    /// protocol failures to the typed error response the peer should see
    /// (the connection survives either; boxed to keep the `Err` slim).
    pub(crate) fn parse(payload: &[u8]) -> Result<Request, Box<Response>> {
        let text = std::str::from_utf8(payload).map_err(|_| {
            Box::new(Response::Error {
                kind: ErrorKind::Malformed,
                msg: "frame is not valid UTF-8".into(),
            })
        })?;
        Request::from_wire(text).map_err(|e| {
            Box::new(Response::Error {
                kind: ErrorKind::Malformed,
                msg: e.to_string(),
            })
        })
    }

    /// Handles one decoded request up to — but not including — decision
    /// execution.
    pub(crate) fn classify(&mut self, request: Request) -> Dispatched {
        if !self.greeted {
            return match request {
                Request::Hello { version } if version == PROTOCOL_VERSION => {
                    self.greeted = true;
                    immediate(
                        Response::Welcome {
                            version: PROTOCOL_VERSION,
                        },
                        false,
                    )
                }
                Request::Hello { version } => immediate(
                    Response::Error {
                        kind: ErrorKind::Unsupported,
                        msg: format!(
                            "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                        ),
                    },
                    true,
                ),
                _ => immediate(
                    Response::Error {
                        kind: ErrorKind::Unsupported,
                        msg: "handshake required: send hello first".into(),
                    },
                    true,
                ),
            };
        }

        let shared = &self.shared;
        match request {
            Request::Hello { .. } => immediate(
                Response::Error {
                    kind: ErrorKind::Unsupported,
                    msg: "already greeted".into(),
                },
                false,
            ),
            Request::Begin { bindings } => {
                let session = shared.proxy.begin_session(bindings);
                self.sweep.owned.insert(session);
                immediate(Response::Began { session }, false)
            }
            Request::Execute {
                session,
                sql,
                bindings,
            } => {
                // Sessions are connection-scoped capabilities: a connection
                // may only touch sessions it began, so one client can never
                // read another's trace-unlocked state by guessing ids.
                if !self.sweep.owned.contains(&session) {
                    return immediate(no_such_session(session), false);
                }
                Dispatched::Execute(BatchItem {
                    session,
                    stmt: BatchStmt::Sql(sql),
                    bindings,
                })
            }
            Request::Prepare { session, sql } => {
                // Plans are compiled against the (session-independent)
                // policy, but the ownership gate still applies: a
                // connection may only prepare work for sessions it began.
                if !self.sweep.owned.contains(&session) {
                    return immediate(no_such_session(session), false);
                }
                let plan = shared.proxy.prepare(&sql);
                immediate(
                    Response::Prepared {
                        plan: self.prepared.insert(plan),
                    },
                    false,
                )
            }
            Request::ExecutePrepared {
                session,
                plan,
                bindings,
            } => {
                if !self.sweep.owned.contains(&session) {
                    return immediate(no_such_session(session), false);
                }
                let Some(plan) = self.prepared.plans.get(&plan).cloned() else {
                    return immediate(
                        Response::Error {
                            kind: ErrorKind::NoSuchPlan,
                            msg: format!("no such prepared plan: {plan}"),
                        },
                        false,
                    );
                };
                Dispatched::Execute(BatchItem {
                    session,
                    stmt: BatchStmt::Plan(plan),
                    bindings,
                })
            }
            Request::Trace { session } => {
                if !self.sweep.owned.contains(&session) {
                    return immediate(no_such_session(session), false);
                }
                match shared.proxy.session_trace(session) {
                    Ok(trace) => immediate(
                        Response::TraceSummary {
                            entries: trace.len() as u64,
                            facts: trace.facts().len() as u64,
                            events: shared
                                .proxy
                                .journal()
                                .recent(TRACE_EVENTS_MAX, Some(session)),
                        },
                        false,
                    ),
                    Err(e) => immediate(core_error(e), false),
                }
            }
            Request::Stats => immediate(Response::Stats(wire_stats(&shared.proxy)), false),
            Request::Metrics => immediate(
                Response::Metrics {
                    text: shared.proxy.metrics_text(),
                },
                false,
            ),
            Request::Journal { after, max } => {
                let journal = shared.proxy.journal();
                let max = (max as usize).min(JOURNAL_BATCH_MAX);
                immediate(
                    Response::Journal {
                        events: journal.events_since(after, max),
                        published: journal.published(),
                        evicted: journal.evicted(),
                    },
                    false,
                )
            }
            Request::Subscribe { after } => {
                if !self.streaming {
                    return immediate(
                        Response::Error {
                            kind: ErrorKind::Unsupported,
                            msg: "subscribe requires the event-driven front-end \
                                  (this front-end cannot push frames)"
                                .into(),
                        },
                        false,
                    );
                }
                // Re-subscribing repositions the stream; events before
                // `after` are skipped, not charged as dropped.
                self.subscription = Some(JournalCursor::starting_at(after));
                immediate(Response::Subscribed, false)
            }
            Request::End { session } => {
                if !self.sweep.owned.contains(&session) {
                    return immediate(no_such_session(session), false);
                }
                // `owned` deliberately keeps the id: a repeated End must
                // stay idempotent (`was_live: false`), not become
                // no-such-session.
                let was_live = shared.proxy.end_session(session);
                immediate(Response::Ended { was_live }, false)
            }
            Request::Shutdown => {
                shared.shutdown.store(true, Ordering::Release);
                // Whichever front-end is blocked waiting for traffic, a
                // loopback connection wakes it so it observes the flag.
                // Any error just means it is already awake.
                let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
                immediate(Response::Bye, true)
            }
        }
    }

    /// Runs one already-classified decision immediately through the proxy
    /// — the blocking front-end's execution strategy (and the event
    /// front-end's for a batch of one).
    pub(crate) fn execute_now(&self, item: &BatchItem) -> Response {
        exec_response(match &item.stmt {
            BatchStmt::Sql(sql) => self.shared.proxy.execute(item.session, sql, &item.bindings),
            BatchStmt::Plan(plan) => {
                self.shared
                    .proxy
                    .execute_planned(item.session, plan, &item.bindings)
            }
        })
    }
}

fn immediate(response: Response, close: bool) -> Dispatched {
    Dispatched::Immediate { response, close }
}

fn send(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    write_frame(stream, response.to_wire().as_bytes())
}

/// Runs the blocking protocol loop until the connection closes.
pub(crate) fn handle_connection(shared: &Arc<ConnShared>, mut stream: TcpStream) {
    // The read timeout doubles as the poll tick for the shutdown flag and
    // the idle clock; the write timeout bounds a stuck peer's backpressure.
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_nodelay(true);

    let mut reader = FrameReader::new(shared.config.max_frame);
    let mut core = ConnCore::new(Arc::clone(shared), false);
    let mut last_activity = Instant::now();

    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            // Drain point: any in-flight request already got its response
            // (the loop is synchronous), so say goodbye and close.
            let _ = send(&mut stream, &Response::Bye);
            return;
        }
        let payload = match reader.read_frame(&mut stream) {
            Ok(FrameEvent::Frame(p)) => p,
            Ok(FrameEvent::Eof) => return,
            Ok(FrameEvent::TimedOut) => {
                if last_activity.elapsed() >= shared.config.idle_timeout {
                    // Idle reap. Mid-frame idleness (a stalled half-sent
                    // frame) is closed without a goodbye — framing is
                    // not re-synchronizable.
                    if !reader.mid_frame() {
                        let _ = send(&mut stream, &Response::Bye);
                    }
                    return;
                }
                continue;
            }
            Err(FrameError::Oversized { announced, limit }) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::Malformed,
                        msg: format!("frame of {announced} bytes exceeds limit {limit}"),
                    },
                );
                return; // cannot resync past an unread oversized payload
            }
            Err(_) => return, // truncated or hard I/O error
        };
        last_activity = Instant::now();

        let request = match ConnCore::parse(&payload) {
            Ok(r) => r,
            Err(error_response) => {
                // Malformed message: typed error, connection survives.
                if send(&mut stream, &error_response).is_err() {
                    return;
                }
                continue;
            }
        };

        let (response, close) = match core.classify(request) {
            Dispatched::Immediate { response, close } => (response, close),
            Dispatched::Execute(item) => (core.execute_now(&item), false),
        };
        if send(&mut stream, &response).is_err() || close {
            return;
        }
    }
}

/// Maps one proxy execution result (plain or prepared) to its wire form.
pub(crate) fn exec_response(result: Result<ProxyResponse, CoreError>) -> Response {
    match result {
        Ok(ProxyResponse::Rows(rows)) => Response::Rows {
            columns: rows.columns,
            rows: rows.rows,
        },
        Ok(ProxyResponse::Affected(n)) => Response::Affected { n: n as u64 },
        Ok(ProxyResponse::Blocked(reason)) => Response::Blocked {
            reason: reason.label().to_string(),
            detail: match &reason {
                bep_core::DenyReason::NotDetermined { query } => format!("{query:?}"),
                bep_core::DenyReason::WriteNotCovered { query } => format!("{query:?}"),
                bep_core::DenyReason::OutOfFragment(m) => m.clone(),
                bep_core::DenyReason::ParseError(m) => m.clone(),
                bep_core::DenyReason::WriteBlocked => String::new(),
                bep_core::DenyReason::ReadOnlySession => String::new(),
            },
        },
        Err(e) => core_error(e),
    }
}

fn no_such_session(session: u64) -> Response {
    Response::Error {
        kind: ErrorKind::NoSuchSession,
        msg: format!("no such session: {session}"),
    }
}

fn core_error(e: CoreError) -> Response {
    let kind = match e {
        CoreError::NoSuchSession(_) => ErrorKind::NoSuchSession,
        _ => ErrorKind::Internal,
    };
    Response::Error {
        kind,
        msg: e.to_string(),
    }
}
